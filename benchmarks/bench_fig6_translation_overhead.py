"""Figure 6 — Efficiency of query translation.

Paper (Section 6): "Figure 6 shows the total time consumed by query
translation for the Analytical Workload.  On average, the time consumed is
around 0.5% of the total query execution time.  The maximum query
translation time is 4% of the query execution time.  Queries # 10, 18, 19,
and 20 involve more tables to join compared to other queries.  Hence, it
takes longer time to algebrize these queries, lookup the required
metadata, and serialize them into final SQL queries."

This bench reproduces the figure: for each of the 25 workload queries it
reports translation time as a percentage of total time, then asserts the
paper's shape (sub-5% overhead on average, join-heavy queries translating
slowest).  The pytest-benchmark entry times the translation pipeline over
the whole workload.
"""

from __future__ import annotations

import statistics

from conftest import SMOKE, bench_rounds, save_results

JOIN_HEAVY = {10, 18, 19, 20}


def test_fig6_translation_overhead(benchmark, workload_env, figure_measurements):
    hq, workload = workload_env

    def translate_workload():
        for query in workload.queries:
            session = hq.create_session()
            try:
                session.translate(query.text)
            finally:
                session.close()

    benchmark.pedantic(translate_workload, rounds=bench_rounds(3), iterations=1)

    overheads = [m["overhead_pct"] for m in figure_measurements]
    average = statistics.mean(overheads)
    maximum = max(overheads)

    lines = [
        "",
        "Figure 6: Efficiency of query translation "
        "(translation time as % of total)",
        f"{'query':>6} {'tables':>6} {'translate':>12} {'execute':>12} "
        f"{'overhead':>9}",
    ]
    for m in figure_measurements:
        lines.append(
            f"Q{m['query']:>5} {m['tables']:>6} "
            f"{m['translate_ms']:>10.2f}ms {m['execute_ms']:>10.1f}ms "
            f"{m['overhead_pct']:>8.2f}%"
        )
    lines.append(f"average overhead: {average:.2f}%   (paper: ~0.5%)")
    lines.append(f"maximum overhead: {maximum:.2f}%   (paper: <=4%)")
    slowest = sorted(
        figure_measurements, key=lambda m: -m["translate_ms"]
    )[:4]
    slowest_ids = sorted(m["query"] for m in slowest)
    lines.append(
        f"slowest translations: queries {slowest_ids} "
        f"(paper: 10, 18, 19, 20 — the multi-join queries)"
    )
    print("\n".join(lines))

    save_results(
        "fig6_translation_overhead",
        {
            "per_query": figure_measurements,
            "average_pct": average,
            "max_pct": maximum,
            "slowest_translations": slowest_ids,
        },
    )

    # --- shape assertions (not absolute numbers) ---
    assert average < 5.0, "translation should be a small fraction on average"
    if SMOKE:
        # single-shot timings: per-query outliers (GC, scheduler) are
        # expected, so only the aggregate shape is enforced
        return
    assert maximum < 10.0, "translation overhead should stay single-digit"
    assert set(slowest_ids) == JOIN_HEAVY, (
        "the three-table queries must be the most expensive to translate"
    )
