"""Macro-benchmark — the result data plane, end to end (this PR's gate).

Measures the full gateway-side result path — read PG frames off a
socket-like source, accumulate cells, pivot to columns, encode the QIPC
response — against a faithful reimplementation of the pre-change path
(per-message ``recv_exact(1)``/``recv_exact(4)`` reads, per-cell
``cast_value`` dispatch, row-tuple buffering with a transpose pivot, and
one ``struct.pack`` per vector element).

Two invariants are asserted, not just reported:

* both pipelines produce byte-identical QIPC output;
* the streaming/vectorized path is at least 2x faster than the legacy
  path at the 100k-row size.
"""

from __future__ import annotations

import struct
import time

from conftest import bench_repeats, save_results

from repro.core.crosscompiler import _SQL_TO_QTYPE, pivot_result
from repro.pgwire import messages as m
from repro.pgwire.codec import PgFrameStream, encode_backend, encode_data_rows
from repro.qipc.encode import encode_value
from repro.qipc.kernels import reference_encode_vector
from repro.qipc.messages import MessageType, QipcMessage, frame
from repro.qlang.qtypes import QType
from repro.qlang.values import QVector
from repro.server.gateway import _OID_TYPES, collect_result
from repro.sqlengine.catalog import Column
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import SqlType, cast_value

SIZES = (1_000, 10_000, 100_000)

#: the result schema: the Figure 5 trade example, one column per family
FIELDS = [
    m.FieldDescription("sym", 1043),  # varchar
    m.FieldDescription("price", 701),  # double
    m.FieldDescription("size", 20),  # bigint
]


def _wire_for(rows: int) -> bytes:
    """One statement's backend traffic: T, N x D, C, Z."""
    cells = [
        [
            f"S{i % 50:03d}".encode(),
            f"{100.0 + (i % 997) / 100.0:.2f}".encode(),
            str((i % 89) * 100).encode(),
        ]
        for i in range(rows)
    ]
    return b"".join(
        (
            encode_backend(m.RowDescription(FIELDS)),
            encode_data_rows(cells),
            encode_backend(m.CommandComplete(f"SELECT {rows}")),
            encode_backend(m.ReadyForQuery("I")),
        )
    )


class FakeSock:
    """A socket stand-in serving a canned byte stream via ``recv``."""

    RECV_CAP = 65536  # what a real kernel hands back per recv, roughly

    def __init__(self, wire: bytes):
        self._wire = wire
        self._pos = 0

    def recv(self, n: int) -> bytes:
        chunk = self._wire[self._pos : self._pos + min(n, self.RECV_CAP)]
        self._pos += len(chunk)
        return chunk


# -- the pre-change pipeline, kept verbatim as the baseline --------------------


def _legacy_recv_exact(sock: FakeSock, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _legacy_parse_data_row(body: bytes) -> list:
    (count,) = struct.unpack_from(">H", body, 0)
    pos = 2
    cells = []
    for __ in range(count):
        (length,) = struct.unpack_from(">i", body, pos)
        pos += 4
        if length == -1:
            cells.append(None)
        else:
            cells.append(body[pos : pos + length])
            pos += length
    return cells


def _legacy_collect(sock: FakeSock) -> ResultSet:
    """Per-message reads, per-cell cast_value, row-tuple buffering."""
    columns: list[Column] = []
    rows: list[tuple] = []
    command = ""
    while True:
        type_byte = _legacy_recv_exact(sock, 1)
        (length,) = struct.unpack(">I", _legacy_recv_exact(sock, 4))
        body = _legacy_recv_exact(sock, length - 4)
        if type_byte == b"D":
            values = []
            for cell, column in zip(_legacy_parse_data_row(body), columns):
                if cell is None:
                    values.append(None)
                else:
                    values.append(
                        cast_value(cell.decode("utf-8"), column.sql_type)
                    )
            rows.append(tuple(values))
        elif type_byte == b"T":
            (count,) = struct.unpack_from(">H", body, 0)
            pos = 2
            columns = []
            for __ in range(count):
                end = body.index(b"\x00", pos)
                name = body[pos:end].decode("utf-8")
                # field tail: table_oid(4) attr(2) type_oid(4) size(2)
                # mod(4) fmt(2)
                (type_oid,) = struct.unpack_from(">I", body, end + 7)
                pos = end + 19
                columns.append(
                    Column(name, _OID_TYPES.get(type_oid, SqlType.TEXT))
                )
        elif type_byte == b"C":
            command = body[:-1].decode("utf-8")
        elif type_byte == b"Z":
            break
    return ResultSet(columns, rows, command=command or "SELECT")


def _legacy_pivot_vectors(result: ResultSet) -> tuple[list[str], list[QVector]]:
    """The old transpose + per-element if/elif column conversion."""
    names = [column.name for column in result.columns]
    vectors = []
    for i, column in enumerate(result.columns):
        qtype = _SQL_TO_QTYPE.get(column.sql_type, QType.FLOAT)
        null = qtype.null_value()
        raws = []
        for value in [row[i] for row in result.rows]:
            if value is None:
                raws.append(null)
            elif qtype == QType.BOOLEAN:
                raws.append(bool(value))
            elif qtype in (QType.FLOAT, QType.REAL):
                raws.append(float(value))
            elif qtype in (QType.SYMBOL, QType.CHAR):
                raws.append(str(value))
            else:
                raws.append(int(value))
        vectors.append(QVector(qtype, raws))
    return names, vectors


def _legacy_encode_table(names: list[str], vectors: list[QVector]) -> bytes:
    """Table framing around the scalar per-element vector encoder."""
    out = [
        struct.pack("<bB", 98, 0),
        struct.pack("<b", 99),
        reference_encode_vector(QVector(QType.SYMBOL, names)),
        struct.pack("<bBI", 0, 0, len(vectors)),
    ]
    for vector in vectors:
        out.append(reference_encode_vector(vector))
    return b"".join(out)


def legacy_pipeline(wire: bytes) -> bytes:
    result = _legacy_collect(FakeSock(wire))
    names, vectors = _legacy_pivot_vectors(result)
    payload = _legacy_encode_table(names, vectors)
    # compression is an orthogonal leg this PR leaves untouched; framing
    # uncompressed keeps the bench on the data-plane legs under test
    return frame(QipcMessage(MessageType.RESPONSE, payload), allow_compression=False)


# -- the streaming/vectorized pipeline (the production code) -------------------


def new_pipeline(wire: bytes) -> bytes:
    stream = PgFrameStream.over(FakeSock(wire))
    columns, data, command, error, __ = collect_result(stream)
    assert error is None
    result = ResultSet.from_columns(columns, data, command=command)
    value = pivot_result(result, "table", [])
    return frame(
        QipcMessage(MessageType.RESPONSE, encode_value(value)),
        allow_compression=False,
    )


def _best_of(fn, wire: bytes, repeats: int) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn(wire)
        best = min(best, time.perf_counter() - start)
    return best


def test_data_plane(benchmark):
    repeats = bench_repeats(3)
    report = []
    for size in SIZES:
        wire = _wire_for(size)
        legacy_out = legacy_pipeline(wire)
        new_out = new_pipeline(wire)
        assert new_out == legacy_out, "wire output diverged from baseline"

        legacy_seconds = _best_of(legacy_pipeline, wire, repeats)
        new_seconds = _best_of(new_pipeline, wire, repeats)
        report.append(
            {
                "rows": size,
                "wire_bytes": len(wire),
                "qipc_bytes": len(new_out),
                "legacy_ms": legacy_seconds * 1e3,
                "streaming_ms": new_seconds * 1e3,
                "speedup": legacy_seconds / new_seconds,
            }
        )

    benchmark.pedantic(
        lambda: new_pipeline(_wire_for(1_000)),
        rounds=bench_repeats(3),
        iterations=1,
    )

    lines = ["", "Result data plane: legacy vs streaming/vectorized"]
    lines.append(
        f"{'rows':>8} {'wire KiB':>9} {'legacy':>10} {'streaming':>10} "
        f"{'speedup':>8}"
    )
    for r in report:
        lines.append(
            f"{r['rows']:>8} {r['wire_bytes'] / 1024:>9.0f} "
            f"{r['legacy_ms']:>8.1f}ms {r['streaming_ms']:>8.1f}ms "
            f"{r['speedup']:>7.1f}x"
        )
    print("\n".join(lines))

    save_results("data_plane", report)

    # the PR's perf gate: >= 2x end-to-end at the 100k-row size
    big = report[-1]
    assert big["rows"] == 100_000
    assert big["speedup"] >= 2.0, (
        f"streaming data plane is only {big['speedup']:.2f}x the legacy "
        f"path at {big['rows']} rows (gate: 2x)"
    )
