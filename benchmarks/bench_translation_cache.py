"""Translation cache — repeated-statement speedup.

The tentpole claim for the cache: a workload that repeats statements (the
common case for parameter-free dashboards and monitoring queries) skips
parse/bind/xform/serialize entirely on repeats.  This bench runs the
Analytical Workload's query texts twice through one platform — the first
sweep populates the cache, the second is answered from it — and asserts

* the warm sweep translates at least 2x faster than the cold sweep, and
* the registry counted one hit per query in the warm sweep.

The ``workload_env`` fixture used by the figure benches disables the
cache; this module builds its own cache-enabled platform.
"""

from __future__ import annotations

import time

from conftest import bench_repeats, save_results

from repro.config import HyperQConfig, TranslationCacheConfig
from repro.core.pipeline import (
    TRANSLATION_CACHE_HITS,
    TRANSLATION_CACHE_MISSES,
)
from repro.core.platform import HyperQ
from repro.workload.analytical import load_workload

#: acceptance floor: repeats must be at least this much faster
MIN_SPEEDUP = 2.0


def _sweep(session, queries) -> float:
    start = time.perf_counter()
    for query in queries:
        session.translate(query.text)
    return time.perf_counter() - start


def test_translation_cache_speedup(benchmark):
    hq = HyperQ(
        config=HyperQConfig(
            translation_cache=TranslationCacheConfig(enabled=True)
        )
    )
    workload = load_workload(hq.engine, mdi=hq.mdi)
    queries = workload.queries
    session = hq.create_session()

    hits_before = TRANSLATION_CACHE_HITS.value()
    misses_before = TRANSLATION_CACHE_MISSES.value()

    # one throwaway sweep warms the metadata cache so the cold sweep
    # measures translation, not catalog lookups; the translation cache is
    # cleared again so the measured cold sweep really runs the pipeline
    _sweep(session, queries)
    hq.translation_cache.clear()

    cold_seconds = min(
        _clear_and_sweep(hq, session, queries)
        for __ in range(bench_repeats(3))
    )
    # cache is now populated: measure the warm sweep
    warm_seconds = min(
        _sweep(session, queries) for __ in range(bench_repeats(3))
    )

    hits = TRANSLATION_CACHE_HITS.value() - hits_before
    misses = TRANSLATION_CACHE_MISSES.value() - misses_before
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")

    def warm_sweep():
        _sweep(session, queries)

    benchmark(warm_sweep)

    print(
        f"\ntranslation cache: cold {cold_seconds * 1e3:.2f}ms, "
        f"warm {warm_seconds * 1e3:.2f}ms, speedup {speedup:.1f}x "
        f"({len(queries)} queries; hits {hits:.0f}, misses {misses:.0f})"
    )

    save_results(
        "translation_cache",
        {
            "queries": len(queries),
            "cold_ms": cold_seconds * 1e3,
            "warm_ms": warm_seconds * 1e3,
            "speedup": speedup,
            "cache_hits": hits,
            "cache_misses": misses,
        },
    )
    session.close()

    # every warm translation was answered from the cache
    assert hits >= len(queries)
    assert misses >= len(queries)
    assert speedup >= MIN_SPEEDUP, (
        f"repeated statements should translate >= {MIN_SPEEDUP}x faster "
        f"from the cache (measured {speedup:.1f}x)"
    )


def _clear_and_sweep(hq, session, queries) -> float:
    """Cold sweep: empty the cache first so every query runs the pipeline
    (the final repetition leaves the cache populated for the warm sweep)."""
    hq.translation_cache.clear()
    return _sweep(session, queries)
