"""Figure 7 — Time consumed by translation stages.

Paper (Section 6): "Figure 7 shows the split of translation time across
different stages.  The optimization and serialization stages consume most
of the time in the shown results.  This is because the processing done in
these stages for analytical queries typically involves multi-table joins
and aggregate functions that generate XTRA expressions resulting in
multi-level subqueries."

The bench reports, per workload query and in aggregate, the fraction of
translation time spent in parsing, algebrization (binding + metadata
lookup), optimization (the Xformer), and serialization — and asserts the
paper's shape: optimize + serialize dominate.
"""

from __future__ import annotations

from conftest import bench_rounds, save_results

STAGES = ("parse", "algebrize", "optimize", "serialize")


def test_fig7_stage_split(benchmark, workload_env, figure_measurements):
    hq, workload = workload_env

    # benchmark one representative multi-join translation end to end
    join_heavy = workload.queries[17]  # query 18

    def translate():
        session = hq.create_session()
        try:
            session.translate(join_heavy.text)
        finally:
            session.close()

    benchmark.pedantic(translate, rounds=bench_rounds(5), iterations=1)

    totals = {stage: 0.0 for stage in STAGES}
    for m in figure_measurements:
        for stage in STAGES:
            totals[stage] += m[f"stage_{stage}_ms"]
    grand_total = sum(totals.values())
    shares = {
        stage: 100 * value / grand_total for stage, value in totals.items()
    }

    lines = [
        "",
        "Figure 7: Time consumed by translation stages "
        "(share of total translation time)",
    ]
    for stage in STAGES:
        bar = "#" * int(shares[stage] / 2)
        lines.append(f"{stage:>10}: {shares[stage]:5.1f}%  {bar}")
    lines.append(
        "paper shape: the post-parse stages consume almost all translation "
        "time, with optimization a dominant component"
    )
    lines.append(
        "reproduction note: serialization is cheaper here than in the paper "
        "because column pruning shrinks the XTRA tree before the serializer "
        "runs; binding absorbs the multi-table column bookkeeping instead"
    )
    per_query = []
    for m in figure_measurements:
        stage_total = sum(m[f"stage_{s}_ms"] for s in STAGES) or 1e-12
        per_query.append(
            {
                "query": m["query"],
                **{
                    s: 100 * m[f"stage_{s}_ms"] / stage_total for s in STAGES
                },
            }
        )
    print("\n".join(lines))

    save_results(
        "fig7_stage_split",
        {"aggregate_pct": shares, "per_query_pct": per_query},
    )

    # --- shape assertions ---
    assert shares["parse"] < 5.0, (
        "the parser is deliberately lightweight (paper Section 3.2.1)"
    )
    assert shares["optimize"] > 3.0, (
        "optimization must be a substantial stage (paper Figure 7); its "
        "exact share varies run to run because the copy-on-write rewrites "
        "make clean-tree rule passes nearly free"
    )
    assert shares["optimize"] + shares["serialize"] + shares["algebrize"] > 90, (
        "the algebra stages must consume almost all translation time"
    )
