"""Ablation D — the filter-merge rule.

Q's sequential where-conjuncts bind as a chain of filters; merging the
chain into one AND-ed predicate reduces subquery nesting in the emitted
SQL and the per-level interpretation overhead in the backend.
"""

from __future__ import annotations

import time

from conftest import save_results

from repro.config import HyperQConfig, XformerConfig
from repro.core.session import HyperQSession

#: many-conjunct filters over the wide fact table
QUERIES = [
    "select inst, price from positions where p0001 > 0.1, p0002 > 0.1, "
    "p0003 > 0.1, p0004 > 0.1, p0005 > 0.1",
    "select from positions where qty > 10, price > 20.0, notional > 500.0, "
    "p0010 < 0.9",
    "select sum notional by desk from positions where p0001 > 0.2, "
    "p0002 > 0.2, p0003 > 0.2",
]


def _measure(hq, merge: bool):
    config = HyperQConfig(xformer=XformerConfig(filter_merge=merge))
    out = []
    for text in QUERIES:
        session = HyperQSession(hq.backend, config=config)
        try:
            outcome = session.translate(text)
            sql = outcome.sql_statements[-1]
            start = time.perf_counter()
            hq.engine.execute(sql)
            execute_seconds = time.perf_counter() - start
            out.append(
                {
                    "sql_bytes": len(sql),
                    "nesting": sql.count("SELECT"),
                    "execute_ms": execute_seconds * 1e3,
                }
            )
        finally:
            session.close()
    return out


def test_ablation_filter_merge(benchmark, workload_env):
    hq, __ = workload_env

    benchmark.pedantic(lambda: _measure(hq, True), rounds=1, iterations=1)
    merged = _measure(hq, True)
    chained = _measure(hq, False)

    merged_nesting = sum(m["nesting"] for m in merged)
    chained_nesting = sum(c["nesting"] for c in chained)
    merged_ms = sum(m["execute_ms"] for m in merged)
    chained_ms = sum(c["execute_ms"] for c in chained)

    print(
        f"\nAblation D: filter merge"
        f"\n  merge ON : {merged_nesting} SELECT levels, "
        f"{merged_ms:.0f} ms execution"
        f"\n  merge OFF: {chained_nesting} SELECT levels, "
        f"{chained_ms:.0f} ms execution"
    )
    save_results(
        "ablation_filter_merge", {"merged": merged, "chained": chained}
    )

    assert merged_nesting < chained_nesting, (
        "merging must reduce subquery nesting"
    )
    for m, c in zip(merged, chained):
        assert m["sql_bytes"] < c["sql_bytes"]
