"""Semantic result cache + interactive temp-data tier (docs/CACHING.md).

Two claims, two measurements:

* **Repeat-analytical speedup** — a dashboard-style repeated analytical
  query is answered from the result cache (key: translated SQL +
  catalog version + per-table version vector), skipping the backend
  entirely.  The bench times the same query on a cache-disabled and a
  cache-enabled platform and gates the ratio at >= 50x.

* **Temp-tier interactive speedup** — a Q variable assignment plus a
  filtered scan runs lazily (in-memory snapshot + positional-map zone
  pruning) vs. eagerly (CTAS backend write + SQL scan), gated at >= 2x.

Both speedups are dimensionless, so ``check_bench_regression.py``
compares them against the committed baseline bands.
"""

from __future__ import annotations

import time

from conftest import bench_repeats, save_results

from repro.config import HyperQConfig, ResultCacheConfig, TempTierConfig
from repro.core.platform import HyperQ
from repro.qlang.values import QTable, QType, QVector
from repro.workload.analytical import load_workload
from repro.workload.loader import load_table

#: acceptance floors (ISSUE 9)
MIN_REPEAT_SPEEDUP = 50.0
MIN_TIER_SPEEDUP = 2.0

#: the repeated dashboard query: full group-by over the fact table
REPEAT_QUERY = "select sum notional by desk from positions"
REPEAT_SWEEPS = 20

#: rows in the synthetic tick table driving the temp-tier measurement
TICK_ROWS = 20_000
TIER_ASSIGN = "dt: select from ticks"
#: an interactive session over the variable: count, point lookups and
#: filtered range scans — monotone ``ts`` makes the zone metadata prune
#: almost every block
TIER_SCANS = [
    "count select from dt",
    f"select from dt where ts = {TICK_ROWS // 2}",
    f"select from dt where ts > {TICK_ROWS - 500}",
    f"select from dt where ts > {TICK_ROWS - 2000}, ts < {TICK_ROWS - 1000}",
    "select from dt where ts < 250",
    f"select px from dt where ts > {TICK_ROWS - 250}",
]


def _cache_platform(enabled: bool) -> HyperQ:
    hq = HyperQ(config=HyperQConfig(
        result_cache=ResultCacheConfig(enabled=enabled),
    ))
    load_workload(hq.engine, mdi=hq.mdi)
    return hq


def _repeat_sweep(hq: HyperQ) -> float:
    session = hq.create_session()
    try:
        start = time.perf_counter()
        for __ in range(REPEAT_SWEEPS):
            session.execute(REPEAT_QUERY)
        return time.perf_counter() - start
    finally:
        session.close()


def _tick_platform(tier_enabled: bool) -> HyperQ:
    hq = HyperQ(config=HyperQConfig(
        result_cache=ResultCacheConfig(enabled=False),
        temp_tier=TempTierConfig(enabled=tier_enabled),
    ))
    n = TICK_ROWS
    ticks = QTable(
        ["sym", "ts", "px", "sz"],
        [
            QVector(QType.SYMBOL, [f"S{i % 97:03d}" for i in range(n)]),
            QVector(QType.LONG, list(range(n))),
            QVector(QType.FLOAT, [100.0 + (i % 997) / 100.0 for i in range(n)]),
            QVector(QType.LONG, [(i % 89) * 10 for i in range(n)]),
        ],
    )
    load_table(hq.engine, "ticks", ticks, mdi=hq.mdi)
    return hq


def _tier_round(hq: HyperQ) -> float:
    """Assign a temp variable and run an interactive scan sequence."""
    session = hq.create_session()
    try:
        start = time.perf_counter()
        session.execute(TIER_ASSIGN)
        for scan in TIER_SCANS:
            session.execute(scan)
        elapsed = time.perf_counter() - start
    finally:
        # drop dt before close: promotion would materialize the lazy
        # handle, charging the eager path's write to the lazy round's
        # teardown (outside the timed window, but noisy)
        session.session_scope.delete("dt")
        session.close()
    return elapsed


def test_result_cache_and_temp_tier_speedups(benchmark):
    repeats = bench_repeats(3)

    # -- repeat-analytical: cache off vs cache on -------------------------
    cold_hq = _cache_platform(enabled=False)
    cold_seconds = min(_repeat_sweep(cold_hq) for __ in range(repeats))

    warm_hq = _cache_platform(enabled=True)
    _repeat_sweep(warm_hq)  # populate the cache
    warm_seconds = min(_repeat_sweep(warm_hq) for __ in range(repeats))
    repeat_speedup = (
        cold_seconds / warm_seconds if warm_seconds else float("inf")
    )
    # snapshot() returns the live stats object: pin the hit count now,
    # before the pytest-benchmark loop below inflates it
    cache_hits = warm_hq.result_cache.snapshot().hits

    # -- temp tier: eager CTAS+scan vs lazy snapshot+pruned scan ----------
    eager_hq = _tick_platform(tier_enabled=False)
    eager_seconds = min(_tier_round(eager_hq) for __ in range(repeats))

    lazy_hq = _tick_platform(tier_enabled=True)
    lazy_seconds = min(_tier_round(lazy_hq) for __ in range(repeats))
    tier_speedup = (
        eager_seconds / lazy_seconds if lazy_seconds else float("inf")
    )

    benchmark(lambda: _repeat_sweep(warm_hq))

    print(
        f"\nresult cache: cold {cold_seconds * 1e3:.2f}ms, "
        f"warm {warm_seconds * 1e3:.2f}ms, {repeat_speedup:.0f}x "
        f"({REPEAT_SWEEPS} repeats; hits {cache_hits})\n"
        f"temp tier: eager {eager_seconds * 1e3:.2f}ms, "
        f"lazy {lazy_seconds * 1e3:.2f}ms, {tier_speedup:.1f}x "
        f"({TICK_ROWS} rows)"
    )

    save_results(
        "result_cache",
        {
            "repeat_analytical": {
                "sweeps": REPEAT_SWEEPS,
                "cold_ms": cold_seconds * 1e3,
                "warm_ms": warm_seconds * 1e3,
                "speedup": repeat_speedup,
                "cache_hits": cache_hits,
            },
            "temp_tier": {
                "rows": TICK_ROWS,
                "eager_ms": eager_seconds * 1e3,
                "lazy_ms": lazy_seconds * 1e3,
                "speedup": tier_speedup,
            },
        },
    )

    assert cache_hits >= REPEAT_SWEEPS
    assert repeat_speedup >= MIN_REPEAT_SPEEDUP, (
        f"repeated analytical queries should be >= {MIN_REPEAT_SPEEDUP}x "
        f"faster from the result cache (measured {repeat_speedup:.1f}x)"
    )
    assert tier_speedup >= MIN_TIER_SPEEDUP, (
        f"lazy temp-tier scans should be >= {MIN_TIER_SPEEDUP}x faster "
        f"than eager CTAS materialization (measured {tier_speedup:.1f}x)"
    )
