"""Observability overhead — instrumentation must stay under 5%.

The whole point of threading :mod:`repro.obs` through the Figure-1
pipeline is that it is cheap enough to leave on: the acceptance bar for
this repo is <5% added translation latency on the Figure-6 Analytical
Workload.  This bench sweeps the 25-query translation workload twice —
observability enabled (metrics + tracing) and disabled (the seed
behaviour: bare ``perf_counter`` stage timing, no registry updates, no
span retention) — and records the delta as a machine-readable artifact.
"""

from __future__ import annotations

import statistics
import time

from conftest import bench_repeats, bench_rounds, save_results

from repro.config import HyperQConfig, ObservabilityConfig
from repro.obs import configure

OVERHEAD_BUDGET_PCT = 5.0


def _sweep_seconds(hq, workload) -> float:
    """One full translation sweep over the workload (cache pre-warmed)."""
    start = time.perf_counter()
    for query in workload.queries:
        session = hq.create_session()
        try:
            session.translate(query.text)
        finally:
            session.close()
    return time.perf_counter() - start


def _best_sweep(hq, workload, obs_on: bool, repeats: int) -> float:
    configure(
        ObservabilityConfig(metrics_enabled=obs_on, tracing_enabled=obs_on)
    )
    try:
        _sweep_seconds(hq, workload)  # warm caches/allocator for this mode
        return min(_sweep_seconds(hq, workload) for __ in range(repeats))
    finally:
        configure(HyperQConfig().observability)  # restore defaults


def test_obs_overhead(benchmark, workload_env):
    hq, workload = workload_env
    repeats = max(3, bench_repeats(5))

    benchmark.pedantic(
        lambda: _sweep_seconds(hq, workload),
        rounds=bench_rounds(3),
        iterations=1,
    )

    # interleave pairs so drift (thermal, GC pressure) hits both modes
    enabled, disabled = [], []
    for __ in range(repeats):
        enabled.append(_best_sweep(hq, workload, obs_on=True, repeats=1))
        disabled.append(_best_sweep(hq, workload, obs_on=False, repeats=1))
    enabled_s = min(enabled)
    disabled_s = min(disabled)
    overhead_pct = 100.0 * (enabled_s - disabled_s) / disabled_s

    print(
        f"\nObservability overhead on the Figure-6 translation sweep"
        f"\n  obs enabled : {enabled_s * 1e3:8.1f} ms"
        f"\n  obs disabled: {disabled_s * 1e3:8.1f} ms"
        f"\n  overhead    : {overhead_pct:+.2f}%  (budget {OVERHEAD_BUDGET_PCT}%)"
    )
    save_results(
        "obs_overhead",
        {
            "enabled_ms": [t * 1e3 for t in enabled],
            "disabled_ms": [t * 1e3 for t in disabled],
            "best_enabled_ms": enabled_s * 1e3,
            "best_disabled_ms": disabled_s * 1e3,
            "median_enabled_ms": statistics.median(enabled) * 1e3,
            "median_disabled_ms": statistics.median(disabled) * 1e3,
            "overhead_pct": overhead_pct,
            "budget_pct": OVERHEAD_BUDGET_PCT,
        },
    )

    assert overhead_pct < OVERHEAD_BUDGET_PCT, (
        f"instrumentation costs {overhead_pct:.2f}% on the translation "
        f"sweep — over the {OVERHEAD_BUDGET_PCT}% budget"
    )
