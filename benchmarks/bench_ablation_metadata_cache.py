"""Ablation A — metadata caching on vs off.

Paper (Section 6): "Hyper-Q needs to lookup metadata (e.g., table
definitions) in the PG database catalog ... Hyper-Q provides a
configurable metadata caching mechanism ... Our experiments are conducted
with metadata caching enabled."

This ablation quantifies why: the same 25-query translation sweep with the
cache disabled re-runs catalog queries on every lookup, inflating the
algebrization stage.
"""

from __future__ import annotations

import time

from conftest import bench_repeats, save_results

from repro.config import HyperQConfig, MetadataCacheConfig
from repro.core.metadata import MetadataInterface
from repro.core.session import HyperQSession


def _sweep(hq, workload, cache_enabled: bool) -> list[float]:
    config = HyperQConfig(
        metadata_cache=MetadataCacheConfig(enabled=cache_enabled)
    )
    mdi = MetadataInterface(
        hq.backend, config.metadata_cache,
        key_annotations=hq.mdi.key_annotations,
    )
    times = []
    for query in workload.queries:
        session = HyperQSession(hq.backend, config=config, mdi=mdi)
        try:
            session.translate(query.text)  # warm (no-op when cache off)
            best = float("inf")
            for __ in range(bench_repeats(3)):
                start = time.perf_counter()
                session.translate(query.text)
                best = min(best, time.perf_counter() - start)
            times.append(best)
        finally:
            session.close()
    return times


def test_ablation_metadata_cache(benchmark, workload_env):
    hq, workload = workload_env

    benchmark.pedantic(
        lambda: _sweep(hq, workload, cache_enabled=True), rounds=1, iterations=1
    )

    cached_times = _sweep(hq, workload, cache_enabled=True)
    uncached_times = _sweep(hq, workload, cache_enabled=False)

    cached_total = sum(cached_times) * 1e3
    uncached_total = sum(uncached_times) * 1e3
    slowdown = uncached_total / cached_total

    print(
        f"\nAblation A: metadata cache"
        f"\n  cache ON : total translation {cached_total:8.1f} ms"
        f"\n  cache OFF: total translation {uncached_total:8.1f} ms"
        f"\n  disabling the cache slows translation {slowdown:.2f}x"
    )
    save_results(
        "ablation_metadata_cache",
        {
            "cached_ms": [t * 1e3 for t in cached_times],
            "uncached_ms": [t * 1e3 for t in uncached_times],
            "slowdown": slowdown,
        },
    )

    # shape: every query's translation is at least as fast with the cache,
    # and the sweep as a whole is measurably faster
    assert slowdown > 1.2, "the metadata cache must pay for itself"
    faster = sum(1 for c, u in zip(cached_times, uncached_times) if c <= u)
    assert faster >= len(cached_times) * 0.8
