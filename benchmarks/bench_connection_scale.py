"""Connection scale (C10k): 1k idle + 100 active clients, one process.

The event-loop connection core exists so one gateway process holds
thousands of concurrent client connections the way the paper's Erlang
actor FSMs do.  This bench proves the two properties that make that
true, and gates on them:

* **near-flat per-connection memory** — an idle connection is one
  selector registration plus one reusable read buffer, not a thread; the
  bench opens ``N_IDLE`` authenticated QIPC sessions and measures the
  per-connection Python heap growth with ``tracemalloc``;
* **no p99 collapse under connection load** — active-query p99 latency
  with ``N_ACTIVE`` concurrent clients (while all the idle connections
  stay open) must stay within ``P99_RATIO_BUDGET``x of the 10-client
  baseline at the *same total offered rate*.

Load is open-loop: every client sends on a fixed schedule and latency is
measured from the scheduled send time, so a stalled server shows up as
growing latency instead of a silently reduced request rate (the
coordinated-omission trap of closed-loop benching).  The total offered
rate is identical in both phases — only the connection count changes —
so the comparison isolates what the bench is gating: the cost of *open
connections*, not queueing at different throughputs.

Results land in ``benchmarks/results/connection_scale.json``; the
``conn-scale`` CI job runs this in smoke mode (``REPRO_BENCH_SMOKE=1``,
~200 idle clients) and fails on a gate breach.
"""

from __future__ import annotations

import gc
import threading
import time
import tracemalloc

from conftest import SMOKE, save_results

from repro.obs import get_registry
from repro.qlang.qtypes import QType
from repro.qlang.values import QAtom
from repro.server.client import QConnection
from repro.server.hyperq_server import KdbServer

#: idle authenticated QIPC connections held open through the scale phase
N_IDLE = 200 if SMOKE else 1000
#: concurrent active clients in the scale phase
N_ACTIVE = 25 if SMOKE else 100
#: active clients in the low-concurrency baseline phase
N_BASELINE = 10
#: total offered queries/second, identical in both phases
TOTAL_QPS = 200.0
#: how long each active phase offers load
PHASE_SECONDS = 1.5 if SMOKE else 3.0

#: gates: p99 at scale within this factor of baseline (with an absolute
#: floor — 3x of a sub-millisecond baseline is still noise), and idle
#: connections near-flat in memory
P99_RATIO_BUDGET = 3.0
P99_FLOOR_SECONDS = 0.050
PER_CONNECTION_KIB_BUDGET = 64.0


def _percentile(values: list, q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(q * len(ordered)) - 1))
    return ordered[index]


def _run_active_phase(address, n_clients: int) -> dict:
    """Open-loop phase: ``n_clients`` paced to ``TOTAL_QPS`` combined.

    Each latency sample is measured from the query's *scheduled* send
    time; each response is checked for correctness.
    """
    interval = n_clients / TOTAL_QPS
    per_client = max(3, int(PHASE_SECONDS / interval))
    latencies: list = []
    errors: list = []
    barrier = threading.Barrier(n_clients + 1)

    def client(idx: int) -> None:
        try:
            with QConnection(*address) as q:
                barrier.wait(timeout=60)
                start = time.perf_counter() + 0.1
                for k in range(per_client):
                    scheduled = start + k * interval
                    delay = scheduled - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    got = q.query(f"{idx}+{k}")
                    elapsed = time.perf_counter() - scheduled
                    if got != QAtom(QType.LONG, idx + k):
                        raise AssertionError(f"wrong result: {got!r}")
                    latencies.append(elapsed)
        except Exception as exc:  # collected, asserted on by the gate
            errors.append(f"client {idx}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    for thread in threads:
        thread.join(timeout=120)
    return {
        "clients": n_clients,
        "queries_per_client": per_client,
        "offered_qps": TOTAL_QPS,
        "samples": len(latencies),
        "errors": errors,
        "p50_ms": _percentile(latencies, 0.50) * 1e3 if latencies else None,
        "p99_ms": _percentile(latencies, 0.99) * 1e3 if latencies else None,
        "max_ms": max(latencies) * 1e3 if latencies else None,
    }


def _open_idle_connections(address, count: int) -> tuple:
    """Open ``count`` authenticated QIPC sessions, measuring the Python
    heap growth per connection (client + server side share the process;
    the server share alone is smaller still)."""
    gc.collect()
    tracemalloc.start()
    before, __ = tracemalloc.get_traced_memory()
    idle = []
    for __ in range(count):
        idle.append(QConnection(*address).connect())
    gc.collect()
    after, __ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    per_connection_kib = (after - before) / count / 1024.0
    return idle, per_connection_kib


def test_connection_scale():
    server = KdbServer()
    with server:
        address = server.address

        # -- phase 1: low-concurrency latency baseline ---------------------
        _run_active_phase(address, n_clients=N_BASELINE)  # warm-up
        baseline = _run_active_phase(address, n_clients=N_BASELINE)

        # -- phase 2: open the idle fleet ----------------------------------
        idle, per_connection_kib = _open_idle_connections(address, N_IDLE)
        try:
            connections_open = server.reactor.connections_open

            # -- phase 3: same offered rate, 10x the active clients,
            # idle fleet still open ----------------------------------------
            scale = _run_active_phase(address, n_clients=N_ACTIVE)
        finally:
            for conn in idle:
                conn.close()

    p99_ratio = scale["p99_ms"] / baseline["p99_ms"]
    loop_lag = {
        name: value
        for name, value in get_registry().flat().items()
        if name.startswith("server_loop_lag_ms")
    }
    payload = {
        "smoke": SMOKE,
        "idle_connections": N_IDLE,
        "connections_open_at_scale": connections_open,
        "per_connection_kib": per_connection_kib,
        "per_connection_kib_budget": PER_CONNECTION_KIB_BUDGET,
        "baseline": baseline,
        "scale": scale,
        "p99_ratio": p99_ratio,
        "p99_ratio_budget": P99_RATIO_BUDGET,
        "p99_floor_ms": P99_FLOOR_SECONDS * 1e3,
        "server_loop_lag_ms": loop_lag,
    }
    save_results("connection_scale", payload)

    print(
        f"\nconnection scale ({N_IDLE} idle + {N_ACTIVE} active, "
        f"{TOTAL_QPS:.0f} qps offered)"
        f"\n  baseline p99 : {baseline['p99_ms']:8.2f} ms "
        f"({N_BASELINE} clients)"
        f"\n  scale p99    : {scale['p99_ms']:8.2f} ms "
        f"({N_ACTIVE} clients, ratio {p99_ratio:.2f}x, "
        f"budget {P99_RATIO_BUDGET:.1f}x)"
        f"\n  idle memory  : {per_connection_kib:8.2f} KiB/connection "
        f"(budget {PER_CONNECTION_KIB_BUDGET:.0f})"
    )

    assert not baseline["errors"], baseline["errors"][:3]
    assert not scale["errors"], scale["errors"][:3]
    assert connections_open >= N_IDLE, (
        f"only {connections_open} connections registered with the loop"
    )
    # the C10k gate: p99 must not collapse under 100x the connections
    assert scale["p99_ms"] / 1e3 <= max(
        P99_RATIO_BUDGET * baseline["p99_ms"] / 1e3, P99_FLOOR_SECONDS
    ), f"p99 collapsed: {baseline['p99_ms']:.2f}ms -> {scale['p99_ms']:.2f}ms"
    # the memory gate: idle connections are near-flat (no thread stacks)
    assert per_connection_kib <= PER_CONNECTION_KIB_BUDGET, (
        f"{per_connection_kib:.1f} KiB per idle connection"
    )
