"""Ablation C — logical vs physical materialization (paper Section 4.3).

"In some cases, only logical materialization (e.g., using PG views ...) is
sufficient.  In other cases, physical materialization (e.g., using
temporary PG tables) is necessary for correctness."

The bench runs an Example-3-style function workload — assign a filtered
table to a variable, then aggregate it repeatedly — under both strategies.
Views win when the variable is consumed once (no copy); temp tables win
when it is consumed many times (no recomputation).
"""

from __future__ import annotations

import time

from conftest import bench_repeats, bench_rounds, save_results

from repro.config import HyperQConfig, MaterializationMode
from repro.core.session import HyperQSession

ASSIGN = "dt: select inst, price, notional from positions where price > 50.0"
CONSUME = "exec max notional from dt"


def _run(hq, mode: MaterializationMode, consumers: int) -> float:
    config = HyperQConfig(materialization=mode)
    session = HyperQSession(hq.backend, config=config)
    try:
        start = time.perf_counter()
        session.execute(ASSIGN)
        for __ in range(consumers):
            session.execute(CONSUME)
        return time.perf_counter() - start
    finally:
        session.close()


def test_ablation_materialization(benchmark, workload_env):
    hq, __ = workload_env

    results = {}
    for consumers in (1, 10):
        physical = min(
            _run(hq, MaterializationMode.PHYSICAL, consumers)
            for __ in range(bench_repeats(3))
        )
        logical = min(
            _run(hq, MaterializationMode.LOGICAL, consumers)
            for __ in range(bench_repeats(3))
        )
        results[consumers] = {
            "physical_ms": physical * 1e3,
            "logical_ms": logical * 1e3,
        }

    benchmark.pedantic(
        lambda: _run(hq, MaterializationMode.PHYSICAL, 1),
        rounds=bench_rounds(3),
        iterations=1,
    )

    lines = ["", "Ablation C: materialization of Q variable assignments"]
    for consumers, r in results.items():
        winner = (
            "physical" if r["physical_ms"] < r["logical_ms"] else "logical"
        )
        lines.append(
            f"  {consumers:>2} consumer(s): temp table {r['physical_ms']:8.1f} ms"
            f"  vs  view {r['logical_ms']:8.1f} ms   -> {winner} wins"
        )
    lines.append(
        "shape: views avoid the up-front copy; temp tables amortize it "
        "across repeated consumers"
    )
    print("\n".join(lines))

    save_results("ablation_materialization", results)

    many = results[10]
    # with many consumers the snapshot must beat re-running the view query
    assert many["physical_ms"] < many["logical_ms"]
