"""Sharded scatter-gather: partition pruning on the analytical slice.

The ``ShardedBackend`` hash-partitions the workload's fact tables
(``positions``, ``marks``) on the instrument symbol.  The distribute
pass then routes any query whose predicate pins the partition key to the
single shard that can hold matching rows — so at *N* shards the backend
scans ~1/N of the fact rows the single-backend run must scan.  This
bench measures that effect on the per-instrument analytical slice of the
25-query workload (the scalar/grouped aggregates and filter scans of
Q1/Q4/Q5/Q9, specialized to one instrument the way the production
drill-down traffic pins them) and gates on ``SPEEDUP_GATE``.

Three honesty guards keep the figures meaningful:

* every slice query must carry a distribute-pass plan (a query that fell
  back to the coordinator mirror would *copy the whole table per run*
  and measure the wrong thing), and at 4 shards must prune to at most
  one target shard;
* every platform is built with the result cache *disabled*: the timing
  loop re-issues identical statements, which is exactly the traffic the
  cache absorbs — with it on, every pass after the warm-up measures a
  cache probe, not sharded execution;
* the thread-mode pruning figure is measured with single-threaded
  arithmetic — its scatter slice is reported but never gated, because a
  thread-mode fanout cannot beat the GIL.

``test_process_scatter_speedup`` is the multi-core claim: the same
scatter group-bys at 4 *process* shards (``ShardingConfig.mode =
"process"``, one engine per worker process) vs 1, gated at
``PROC_SPEEDUP_GATE`` on runners with >= ``PROC_GATE_MIN_CORES`` cores.
On smaller machines the measured ratio is recorded for telemetry but
the banded ``process_scatter_speedup`` key is withheld (parallel
speedup on a one-core box is noise, and committing it would band
future multi-core runs against noise).

Results land in ``benchmarks/results/sharded_scatter.json`` with the
banded ``speedup``/``process_scatter_speedup`` keys; the bench-smoke CI
job runs this in smoke mode and fails on a gate breach or a band
violation vs the committed baseline.
"""

from __future__ import annotations

import gc
import os
import time

from conftest import SMOKE, save_results

from repro.config import HyperQConfig, ResultCacheConfig, ShardingConfig
from repro.core.xformer.distributed import extract_plan
from repro.workload.analytical import AnalyticalConfig, generate
from repro.workload.sharding import build_sharded_platform

#: shard counts compared by the headline figure
BASELINE_SHARDS = 1
SCALE_SHARDS = 4

#: the CI gate: pruned-slice speedup at 4 shards vs 1
SPEEDUP_GATE = 3.0

#: the multi-core gate: scatter group-by speedup at 4 process shards
#: vs 1, enforced only on runners with enough cores to parallelize
PROC_SPEEDUP_GATE = 2.0
PROC_GATE_MIN_CORES = 4

#: best-of-N timing repeats per platform
REPEATS = 2 if SMOKE else 4


def _bench_config(mode: str = "thread") -> HyperQConfig:
    """Result cache off (the loop re-issues identical statements; a hit
    would measure the cache, not sharded execution)."""
    return HyperQConfig(
        result_cache=ResultCacheConfig(enabled=False),
        sharding=ShardingConfig(mode=mode),
    )

#: the per-instrument analytical slice.  Instruments are chosen so the
#: routed shards cover all four (crc32 hash: I0005->0, I0001->1,
#: I0004->2, I0002->3, ...) — the figure measures pruning, not one
#: lucky/unlucky shard.
PRUNED_SLICE = (
    "select from positions where inst=`I0005",
    "select from marks where inst=`I0002",
    "select sum notional, avg price, mx: max qty from positions "
    "where inst=`I0001",
    "select avg mark, mx: max mark, mn: min mark from marks "
    "where inst=`I0004",
    "select sum qty by desk from positions where inst=`I0003",
    "select vw: qty wavg price by trader from positions where inst=`I0009",
)

#: group-bys with no partition predicate: fan out to every shard and
#: merge partial aggregates on the coordinator (reported, not gated)
SCATTER_SLICE = (
    "select sum notional by desk from positions",
    "select mx: max mark, mn: min mark by inst from marks",
)


def _audit_plans(platform, shard_count: int, queries) -> list[dict]:
    """Translate each query and record its distribute-pass plan."""
    audits = []
    session = platform.create_session()
    try:
        for text in queries:
            outcome = session.translate(text)
            plan, __ = extract_plan(outcome.sql_statements[-1])
            audits.append(
                {
                    "query": text,
                    "shards": shard_count,
                    "mode": plan["mode"] if plan else None,
                    "targets": (
                        [plan["shard"]]
                        if plan and plan["mode"] == "single"
                        else plan.get("targets") if plan else None
                    ),
                }
            )
    finally:
        session.close()
    return audits


def _time_slice(platform, queries) -> float:
    """Best-of-``REPEATS`` wall time for one pass over ``queries``.

    The cyclic collector is paused during each timed pass: the loaded
    workload keeps multi-GB object graphs alive, and a gen-2 collection
    landing inside one pass but not another would swamp the figure.
    """
    for text in queries:  # warm: prime translation cache + backend paths
        platform.q(text)
    best = float("inf")
    for __ in range(REPEATS):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for text in queries:
                platform.q(text)
            best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
    return best


def test_sharded_scatter_speedup():
    workload_config = (
        AnalyticalConfig(n_instruments=800, n_positions=2500, n_marks=2000)
        if SMOKE
        else AnalyticalConfig()
    )
    workload = generate(workload_config)

    # platforms are built, measured and torn down one at a time: two
    # copies of the wide workload alive at once is pure memory pressure
    audits, pruned, scatter = [], {}, {}
    for shard_count in (BASELINE_SHARDS, SCALE_SHARDS):
        platform, backend, __ = build_sharded_platform(
            shard_count, config=_bench_config(), workload=workload
        )
        try:
            # -- honesty guard: everything planned, pruned queries pruned --
            plans = _audit_plans(
                platform, shard_count, PRUNED_SLICE + SCATTER_SLICE
            )
            audits.extend(plans)
            unplanned = [a for a in plans if a["mode"] is None]
            assert not unplanned, (
                f"mirror fallback would distort the figure: {unplanned}"
            )
            unpruned = [
                a
                for a in plans
                if shard_count == SCALE_SHARDS
                and a["query"] in PRUNED_SLICE
                and len(a["targets"] or [0]) > 1
            ]
            assert not unpruned, f"partition predicate not pruned: {unpruned}"

            # -- measure ---------------------------------------------------
            pruned[shard_count] = _time_slice(platform, PRUNED_SLICE)
            scatter[shard_count] = _time_slice(platform, SCATTER_SLICE)
            # honesty guard: nothing was served from the result cache
            assert platform.result_cache.snapshot().hits == 0, (
                "result cache served timed passes; figures are bogus"
            )
        finally:
            backend.close()
        del platform, backend
        gc.collect()

    speedup = pruned[BASELINE_SHARDS] / pruned[SCALE_SHARDS]
    scatter_speedup = scatter[BASELINE_SHARDS] / scatter[SCALE_SHARDS]
    payload = {
        "smoke": SMOKE,
        "rows": {
            "positions": workload_config.n_positions,
            "marks": workload_config.n_marks,
        },
        "shards": SCALE_SHARDS,
        "pruned_slice_queries": len(PRUNED_SLICE),
        "pruned_ms": {n: t * 1e3 for n, t in pruned.items()},
        "scatter_ms": {n: t * 1e3 for n, t in scatter.items()},
        "speedup": speedup,
        "speedup_gate": SPEEDUP_GATE,
        "scatter_groupby_speedup": scatter_speedup,
        "plans": audits,
    }
    save_results("sharded_scatter", payload)

    print(
        f"\nsharded scatter-gather ({SCALE_SHARDS} shards vs "
        f"{BASELINE_SHARDS}, positions={workload_config.n_positions} rows)"
        f"\n  pruned slice : {pruned[BASELINE_SHARDS] * 1e3:8.1f} ms -> "
        f"{pruned[SCALE_SHARDS] * 1e3:8.1f} ms "
        f"({speedup:.2f}x, gate {SPEEDUP_GATE:.1f}x)"
        f"\n  scatter slice: {scatter[BASELINE_SHARDS] * 1e3:8.1f} ms -> "
        f"{scatter[SCALE_SHARDS] * 1e3:8.1f} ms "
        f"({scatter_speedup:.2f}x, informational)"
    )

    assert speedup >= SPEEDUP_GATE, (
        f"partition pruning gave only {speedup:.2f}x at {SCALE_SHARDS} "
        f"shards (gate {SPEEDUP_GATE:.1f}x)"
    )


def test_process_scatter_speedup():
    """The multi-core claim: scatter group-bys at 4 process shards vs 1.

    Each scattered subquery runs in its own worker process, so the
    group-by arithmetic — the dominant cost on this slice — runs on 4
    cores at once while the coordinator only merges partials.  The
    workload is sized up vs the pruning bench so engine time dominates
    the QIPC hop; the gate fires only on runners with enough cores.
    """
    cores = os.cpu_count() or 1
    workload_config = (
        AnalyticalConfig(n_instruments=800, n_positions=12000, n_marks=8000)
        if SMOKE
        else AnalyticalConfig(
            n_instruments=800, n_positions=30000, n_marks=20000
        )
    )
    workload = generate(workload_config)

    timings, audits = {}, []
    for shard_count in (BASELINE_SHARDS, SCALE_SHARDS):
        platform, backend, __ = build_sharded_platform(
            shard_count, config=_bench_config("process"), workload=workload
        )
        try:
            plans = _audit_plans(platform, shard_count, SCATTER_SLICE)
            audits.extend(plans)
            # honesty guards: full fanout through the distribute pass, on
            # process-backed shards, with the result cache out of the loop
            assert all(a["mode"] is not None for a in plans), (
                f"mirror fallback would serialize the fanout: {plans}"
            )
            if shard_count == SCALE_SHARDS:
                assert all(
                    len(a["targets"] or []) == SCALE_SHARDS for a in plans
                ), f"scatter did not fan out to every shard: {plans}"
            snapshot = backend.shard_snapshot()
            assert all(r["mode"] == "process" for r in snapshot), snapshot
            timings[shard_count] = _time_slice(platform, SCATTER_SLICE)
            assert platform.result_cache.snapshot().hits == 0, (
                "result cache served timed passes; figures are bogus"
            )
            assert all(r["restarts"] == 0 for r in backend.shard_snapshot()), (
                "a worker crashed mid-bench; timings include respawns"
            )
        finally:
            backend.close()
        del platform, backend
        gc.collect()

    measured = timings[BASELINE_SHARDS] / timings[SCALE_SHARDS]
    gate_enforced = cores >= PROC_GATE_MIN_CORES
    payload = {
        "smoke": SMOKE,
        "rows": {
            "positions": workload_config.n_positions,
            "marks": workload_config.n_marks,
        },
        "shards": SCALE_SHARDS,
        "cores": cores,
        "mode": "process",
        "scatter_ms": {n: t * 1e3 for n, t in timings.items()},
        "process_scatter_speedup_measured": measured,
        "process_speedup_gate": PROC_SPEEDUP_GATE,
        "gate_enforced": gate_enforced,
        "plans": audits,
    }
    if gate_enforced:
        # the banded key is only committed from multi-core runs: banding
        # a one-core ratio would compare future parallel runs to noise
        payload["process_scatter_speedup"] = measured
    save_results("process_scatter", payload)

    print(
        f"\nprocess-shard scatter ({SCALE_SHARDS} process shards vs "
        f"{BASELINE_SHARDS}, positions={workload_config.n_positions} rows, "
        f"{cores} core(s))"
        f"\n  scatter slice: {timings[BASELINE_SHARDS] * 1e3:8.1f} ms -> "
        f"{timings[SCALE_SHARDS] * 1e3:8.1f} ms ({measured:.2f}x, "
        f"gate {PROC_SPEEDUP_GATE:.1f}x "
        f"{'enforced' if gate_enforced else 'waived: needs >= 4 cores'})"
    )

    if gate_enforced:
        assert measured >= PROC_SPEEDUP_GATE, (
            f"process scatter gave only {measured:.2f}x at "
            f"{SCALE_SHARDS} process shards (gate {PROC_SPEEDUP_GATE:.1f}x "
            f"on {cores} cores)"
        )
