"""Sharded scatter-gather: partition pruning on the analytical slice.

The ``ShardedBackend`` hash-partitions the workload's fact tables
(``positions``, ``marks``) on the instrument symbol.  The distribute
pass then routes any query whose predicate pins the partition key to the
single shard that can hold matching rows — so at *N* shards the backend
scans ~1/N of the fact rows the single-backend run must scan.  This
bench measures that effect on the per-instrument analytical slice of the
25-query workload (the scalar/grouped aggregates and filter scans of
Q1/Q4/Q5/Q9, specialized to one instrument the way the production
drill-down traffic pins them) and gates on ``SPEEDUP_GATE``.

Two honesty guards keep the figure meaningful:

* every slice query must carry a distribute-pass plan (a query that fell
  back to the coordinator mirror would *copy the whole table per run*
  and measure the wrong thing), and at 4 shards must prune to at most
  one target shard;
* the pruning figure is measured with single-threaded arithmetic — the
  scatter slice (group-bys with no partition predicate, which fan out to
  every shard and merge partials) is also timed and reported, but never
  gated: its win is parallelism, which depends on runner core count,
  while the pruning win is algorithmic and holds even on one core.

Results land in ``benchmarks/results/sharded_scatter.json`` with the
banded ``speedup`` key; the bench-smoke CI job runs this in smoke mode
and fails on a gate breach or a band violation vs the committed
baseline.
"""

from __future__ import annotations

import gc
import time

from conftest import SMOKE, save_results

from repro.core.xformer.distributed import extract_plan
from repro.workload.analytical import AnalyticalConfig, generate
from repro.workload.sharding import build_sharded_platform

#: shard counts compared by the headline figure
BASELINE_SHARDS = 1
SCALE_SHARDS = 4

#: the CI gate: pruned-slice speedup at 4 shards vs 1
SPEEDUP_GATE = 3.0

#: best-of-N timing repeats per platform
REPEATS = 2 if SMOKE else 4

#: the per-instrument analytical slice.  Instruments are chosen so the
#: routed shards cover all four (crc32 hash: I0005->0, I0001->1,
#: I0004->2, I0002->3, ...) — the figure measures pruning, not one
#: lucky/unlucky shard.
PRUNED_SLICE = (
    "select from positions where inst=`I0005",
    "select from marks where inst=`I0002",
    "select sum notional, avg price, mx: max qty from positions "
    "where inst=`I0001",
    "select avg mark, mx: max mark, mn: min mark from marks "
    "where inst=`I0004",
    "select sum qty by desk from positions where inst=`I0003",
    "select vw: qty wavg price by trader from positions where inst=`I0009",
)

#: group-bys with no partition predicate: fan out to every shard and
#: merge partial aggregates on the coordinator (reported, not gated)
SCATTER_SLICE = (
    "select sum notional by desk from positions",
    "select mx: max mark, mn: min mark by inst from marks",
)


def _audit_plans(platform, shard_count: int, queries) -> list[dict]:
    """Translate each query and record its distribute-pass plan."""
    audits = []
    session = platform.create_session()
    try:
        for text in queries:
            outcome = session.translate(text)
            plan, __ = extract_plan(outcome.sql_statements[-1])
            audits.append(
                {
                    "query": text,
                    "shards": shard_count,
                    "mode": plan["mode"] if plan else None,
                    "targets": (
                        [plan["shard"]]
                        if plan and plan["mode"] == "single"
                        else plan.get("targets") if plan else None
                    ),
                }
            )
    finally:
        session.close()
    return audits


def _time_slice(platform, queries) -> float:
    """Best-of-``REPEATS`` wall time for one pass over ``queries``.

    The cyclic collector is paused during each timed pass: the loaded
    workload keeps multi-GB object graphs alive, and a gen-2 collection
    landing inside one pass but not another would swamp the figure.
    """
    for text in queries:  # warm: prime translation cache + backend paths
        platform.q(text)
    best = float("inf")
    for __ in range(REPEATS):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for text in queries:
                platform.q(text)
            best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
    return best


def test_sharded_scatter_speedup():
    workload_config = (
        AnalyticalConfig(n_instruments=800, n_positions=2500, n_marks=2000)
        if SMOKE
        else AnalyticalConfig()
    )
    workload = generate(workload_config)

    # platforms are built, measured and torn down one at a time: two
    # copies of the wide workload alive at once is pure memory pressure
    audits, pruned, scatter = [], {}, {}
    for shard_count in (BASELINE_SHARDS, SCALE_SHARDS):
        platform, backend, __ = build_sharded_platform(
            shard_count, workload=workload
        )
        try:
            # -- honesty guard: everything planned, pruned queries pruned --
            plans = _audit_plans(
                platform, shard_count, PRUNED_SLICE + SCATTER_SLICE
            )
            audits.extend(plans)
            unplanned = [a for a in plans if a["mode"] is None]
            assert not unplanned, (
                f"mirror fallback would distort the figure: {unplanned}"
            )
            unpruned = [
                a
                for a in plans
                if shard_count == SCALE_SHARDS
                and a["query"] in PRUNED_SLICE
                and len(a["targets"] or [0]) > 1
            ]
            assert not unpruned, f"partition predicate not pruned: {unpruned}"

            # -- measure ---------------------------------------------------
            pruned[shard_count] = _time_slice(platform, PRUNED_SLICE)
            scatter[shard_count] = _time_slice(platform, SCATTER_SLICE)
        finally:
            backend.close()
        del platform, backend
        gc.collect()

    speedup = pruned[BASELINE_SHARDS] / pruned[SCALE_SHARDS]
    scatter_speedup = scatter[BASELINE_SHARDS] / scatter[SCALE_SHARDS]
    payload = {
        "smoke": SMOKE,
        "rows": {
            "positions": workload_config.n_positions,
            "marks": workload_config.n_marks,
        },
        "shards": SCALE_SHARDS,
        "pruned_slice_queries": len(PRUNED_SLICE),
        "pruned_ms": {n: t * 1e3 for n, t in pruned.items()},
        "scatter_ms": {n: t * 1e3 for n, t in scatter.items()},
        "speedup": speedup,
        "speedup_gate": SPEEDUP_GATE,
        "scatter_groupby_speedup": scatter_speedup,
        "plans": audits,
    }
    save_results("sharded_scatter", payload)

    print(
        f"\nsharded scatter-gather ({SCALE_SHARDS} shards vs "
        f"{BASELINE_SHARDS}, positions={workload_config.n_positions} rows)"
        f"\n  pruned slice : {pruned[BASELINE_SHARDS] * 1e3:8.1f} ms -> "
        f"{pruned[SCALE_SHARDS] * 1e3:8.1f} ms "
        f"({speedup:.2f}x, gate {SPEEDUP_GATE:.1f}x)"
        f"\n  scatter slice: {scatter[BASELINE_SHARDS] * 1e3:8.1f} ms -> "
        f"{scatter[SCALE_SHARDS] * 1e3:8.1f} ms "
        f"({scatter_speedup:.2f}x, informational)"
    )

    assert speedup >= SPEEDUP_GATE, (
        f"partition pruning gave only {speedup:.2f}x at {SCALE_SHARDS} "
        f"shards (gate {SPEEDUP_GATE:.1f}x)"
    )
