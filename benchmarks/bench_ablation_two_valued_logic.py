"""Ablation E — the two-valued-logic rule is *correctness*, not speed.

Paper (Section 3.3): "a transformation is used to replace strict
equalities in XTRA expressions with Is Not Distinct From predicate, which
provides the needed 2-valued logic for null values."

Rather than timing anything, this ablation counts side-by-side mismatches
against the reference interpreter on null-heavy data with the rule on and
off.  With the rule on, every query matches kdb+ behaviour; with it off,
equality predicates silently drop the null rows q would keep.
"""

from __future__ import annotations

from conftest import save_results

from repro.config import HyperQConfig, XformerConfig
from repro.testing.sidebyside import SideBySideHarness

#: nulls in both the symbol and numeric columns
SOURCE = """
orders: ([] Sym:`A``B``A`B;
            Qty:10 0N 30 0N 50 60;
            Px:1.0 2.0 0n 4.0 5.0 0n)
"""

#: queries whose results depend on null-equality semantics
QUERIES = [
    "select from orders where Sym=`",
    "select from orders where Sym=`A",
    "select from orders where Qty=0N",
    "select from orders where Px=0n",
    "select from orders where Sym<>`A",
    "count select from orders where Qty=0N",
]


def _mismatches(rule_on: bool) -> int:
    config = HyperQConfig(
        xformer=XformerConfig(two_valued_logic=rule_on)
    )
    harness = SideBySideHarness(SOURCE, ["orders"], config=config)
    report = harness.run_suite(QUERIES)
    return report.failed


def test_ablation_two_valued_logic(benchmark, workload_env):
    benchmark.pedantic(lambda: _mismatches(True), rounds=1, iterations=1)

    with_rule = _mismatches(True)
    without_rule = _mismatches(False)

    print(
        f"\nAblation E: two-valued-logic rule (correctness)"
        f"\n  rule ON : {with_rule}/{len(QUERIES)} side-by-side mismatches"
        f"\n  rule OFF: {without_rule}/{len(QUERIES)} side-by-side mismatches"
        f"\n  the rule is load-bearing: without it, strict '=' drops the "
        f"null rows q keeps"
    )
    save_results(
        "ablation_two_valued_logic",
        {"queries": QUERIES, "mismatches_on": with_rule,
         "mismatches_off": without_rule},
    )

    assert with_rule == 0, "with the rule, Hyper-Q must match kdb+ exactly"
    assert without_rule >= 3, "without it, null-equality queries must break"
