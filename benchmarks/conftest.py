"""Shared fixtures for the benchmark suite.

The expensive pieces — generating/loading the Analytical Workload and the
per-query translation/execution sweep — run once per pytest session and
are shared by the Figure 6 and Figure 7 benches.

Two observability hooks for CI:

* ``REPRO_BENCH_SMOKE=1`` cuts per-measurement iteration counts so the
  whole suite finishes fast enough for a per-PR smoke job (the figures
  get noisier; the artifacts still have the right shape);
* after every benchmark session a ``BENCH_obs.json`` snapshot of the
  process-wide metrics registry is written next to the figure JSONs, so
  the perf trajectory of the pipeline (stage timings, cache hit rates,
  wire bytes) is machine-readable run over run.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.config import HyperQConfig, TranslationCacheConfig
from repro.core.platform import HyperQ
from repro.obs import get_registry
from repro.workload.analytical import load_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: CI smoke mode: fewest iterations that still produce every artifact
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def bench_rounds(default: int) -> int:
    """Rounds for ``benchmark.pedantic`` — collapsed to 1 in smoke mode."""
    return 1 if SMOKE else default


def bench_repeats(default: int) -> int:
    """Best-of-N repeats for hand-rolled timing loops."""
    return 1 if SMOKE else default


def save_results(name: str, payload) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2))
    return path


def pytest_sessionfinish(session, exitstatus):
    """Dump the metrics registry after each bench run (CI artifact)."""
    registry = get_registry()
    snapshot = registry.snapshot()
    if not snapshot:
        return
    save_results(
        "BENCH_obs",
        {
            "smoke": SMOKE,
            "exitstatus": int(exitstatus),
            "metrics": snapshot,
            "flat": registry.flat(),
        },
    )


@pytest.fixture(scope="session")
def workload_env():
    """A Hyper-Q platform with the full-scale Analytical Workload loaded.

    The translation cache is disabled here so the figure benches keep
    measuring the raw pipeline (repeat statements would otherwise be
    answered from cache); ``bench_translation_cache.py`` builds its own
    cache-enabled platforms.
    """
    hq = HyperQ(
        config=HyperQConfig(
            translation_cache=TranslationCacheConfig(enabled=False)
        )
    )
    workload = load_workload(hq.engine, mdi=hq.mdi)
    return hq, workload


@pytest.fixture(scope="session")
def figure_measurements(workload_env):
    """Per-query translation stage timings and execution times (one sweep).

    Metadata caching is enabled, matching the paper's experimental setup;
    a warm-up translation per query primes the cache.
    """
    hq, workload = workload_env
    measurements = []
    for query in workload.queries:
        session = hq.create_session()
        try:
            session.translate(query.text)  # warm the metadata cache
            # best-of-3 to shield the figure from GC / scheduler noise
            # (kept in smoke mode too: translation is cheap, and single
            # shots make the overhead percentages meaninglessly noisy)
            translate_seconds = float("inf")
            outcome = None
            for __ in range(3):
                start = time.perf_counter()
                outcome = session.translate(query.text)
                translate_seconds = min(
                    translate_seconds, time.perf_counter() - start
                )
            start = time.perf_counter()
            for sql in outcome.sql_statements:
                hq.engine.execute(sql)
            execute_seconds = time.perf_counter() - start
            timings = outcome.timings
            measurements.append(
                {
                    "query": query.number,
                    "description": query.description,
                    "tables": len(query.tables),
                    "translate_ms": translate_seconds * 1e3,
                    "execute_ms": execute_seconds * 1e3,
                    "overhead_pct": 100
                    * translate_seconds
                    / (translate_seconds + execute_seconds),
                    "stage_parse_ms": timings.parse * 1e3,
                    "stage_algebrize_ms": timings.algebrize * 1e3,
                    "stage_optimize_ms": timings.optimize * 1e3,
                    "stage_serialize_ms": timings.serialize * 1e3,
                }
            )
        finally:
            session.close()
    return measurements
