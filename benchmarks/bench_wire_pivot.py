"""Micro-benchmark — wire formats and the row->column pivot (Figure 5).

Paper (Section 4.2): QIPC sends a result set as a single column-oriented
message, while PG v3 streams one row-oriented DataRow message per row;
"Hyper-Q buffers the query result messages received from the PG database
until an end-of-content message is received.  The results are then
extracted from the messages, and a corresponding QIPC message is formed."

The bench measures each leg — PG-side row encoding, the buffered pivot,
and QIPC column encoding — across result-set sizes, and verifies the
structural claims: message count scales with rows on the PG side and is
constant (one) on the QIPC side.
"""

from __future__ import annotations

import time

from conftest import bench_rounds, save_results

from repro.core.crosscompiler import pivot_result
from repro.pgwire import messages as m
from repro.pgwire.codec import encode_backend
from repro.qipc.encode import encode_value
from repro.qipc.messages import MessageType, QipcMessage, frame
from repro.sqlengine.catalog import Column
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import SqlType, render_value

SIZES = (100, 1000, 10_000)


def _make_result(rows: int) -> ResultSet:
    columns = [
        Column("sym", SqlType.VARCHAR),
        Column("price", SqlType.DOUBLE),
        Column("size", SqlType.BIGINT),
    ]
    data = [
        (f"S{i % 50:03d}", 100.0 + (i % 997) / 100.0, (i % 89) * 100)
        for i in range(rows)
    ]
    return ResultSet(columns, data)


def _pg_stream(result: ResultSet) -> tuple[bytes, int]:
    """Encode the PG-side traffic; returns (bytes, message count)."""
    out = [
        encode_backend(
            m.RowDescription(
                [m.FieldDescription(c.name, 25) for c in result.columns]
            )
        )
    ]
    for row in result.rows:
        cells = [
            render_value(v, c.sql_type).encode() if v is not None else None
            for v, c in zip(row, result.columns)
        ]
        out.append(encode_backend(m.DataRow(cells)))
    out.append(encode_backend(m.CommandComplete(f"SELECT {len(result.rows)}")))
    return b"".join(out), len(out)


def _qipc_message(result: ResultSet) -> tuple[bytes, int]:
    value = pivot_result(result, "table", [])
    payload = encode_value(value)
    return frame(QipcMessage(MessageType.RESPONSE, payload)), 1


def test_wire_pivot(benchmark, workload_env):
    rows_report = []
    for size in SIZES:
        result = _make_result(size)

        start = time.perf_counter()
        pg_bytes, pg_messages = _pg_stream(result)
        pg_seconds = time.perf_counter() - start

        start = time.perf_counter()
        pivoted = pivot_result(result, "table", [])
        pivot_seconds = time.perf_counter() - start

        start = time.perf_counter()
        qipc_bytes, qipc_messages = _qipc_message(result)
        qipc_seconds = time.perf_counter() - start

        rows_report.append(
            {
                "rows": size,
                "pg_messages": pg_messages,
                "pg_bytes": len(pg_bytes),
                "pg_encode_ms": pg_seconds * 1e3,
                "pivot_ms": pivot_seconds * 1e3,
                "qipc_messages": qipc_messages,
                "qipc_bytes": len(qipc_bytes),
                "qipc_encode_ms": qipc_seconds * 1e3,
            }
        )

    benchmark.pedantic(
        lambda: _qipc_message(_make_result(1000)),
        rounds=bench_rounds(3),
        iterations=1,
    )

    lines = ["", "Wire pivot micro-benchmark (Figure 5 structure)"]
    lines.append(
        f"{'rows':>7} {'PG msgs':>8} {'PG bytes':>9} {'pivot':>9} "
        f"{'QIPC msgs':>10} {'QIPC bytes':>11}"
    )
    for r in rows_report:
        lines.append(
            f"{r['rows']:>7} {r['pg_messages']:>8} {r['pg_bytes']:>9} "
            f"{r['pivot_ms']:>7.1f}ms {r['qipc_messages']:>10} "
            f"{r['qipc_bytes']:>11}"
        )
    lines.append(
        "shape: PG traffic is one message per row; the QIPC response is a "
        "single buffered column-oriented message"
    )
    print("\n".join(lines))

    save_results("wire_pivot", rows_report)

    for r in rows_report:
        assert r["pg_messages"] == r["rows"] + 2
        assert r["qipc_messages"] == 1
    # the column-oriented single message is more compact than the row stream
    big = rows_report[-1]
    assert big["qipc_bytes"] < big["pg_bytes"]
