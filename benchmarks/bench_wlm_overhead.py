"""Workload-management overhead — the happy path must stay under 5%.

The WLM subsystem sits on *every* request, in two places: the session
path (classification, admission, the deadline/request scope) and the
backend path (the ResilientBackend breaker/retry wrapper).  Its
no-contention cost is the price of admission for the whole feature, so
this bench measures both — WLM enabled with faults off (the shipping
default) against WLM disabled (the seed behaviour):

* the Figure-6 Analytical Workload translation sweep, WLM on vs off —
  the session-path overhead (same substrate as ``bench_obs_overhead``);
* a tight ``run_sql`` loop on the in-process engine, wrapped vs bare —
  the per-statement cost of the breaker/retry/fault-hook wrapper;
* the same wrapped loop with ``REPRO_LOCKCHECK`` instrumentation on vs
  off — the :class:`OrderedLock` harness's per-statement cost on the
  lock-heaviest path (breaker + retry-budget locks per request), which
  has its own 5% budget so the runtime checker stays cheap enough to
  leave on in soak jobs.

All medians must stay under the 5% budget; the artifact lands in
``benchmarks/results/wlm_overhead.json`` for the bench-smoke CI job.
"""

from __future__ import annotations

import os
import statistics
import time

from conftest import bench_repeats, bench_rounds, save_results

from repro.config import HyperQConfig, TranslationCacheConfig, WlmConfig
from repro.core.platform import DirectGateway, HyperQ
from repro.sqlengine.engine import Engine
from repro.wlm import WorkloadManager
from repro.workload.analytical import load_workload

OVERHEAD_BUDGET_PCT = 5.0

#: statements per backend micro-sweep
BACKEND_SWEEP_STATEMENTS = 100

#: the micro-sweep statement: a grouped aggregate over a small table,
#: the shape of a typical translated analytic (an empty ``SELECT 1``
#: would overstate the wrapper's relative cost ~200x)
BACKEND_SWEEP_ROWS = 500
BACKEND_SWEEP_SQL = (
    "SELECT sym, COUNT(*) AS n, SUM(px * qty) AS notional "
    "FROM bench_t GROUP BY sym"
)


def _backend_engine() -> Engine:
    engine = Engine()
    engine.execute(
        "CREATE TABLE bench_t (sym text, px double precision, qty bigint)"
    )
    rows = ", ".join(
        f"('S{i % 50}', {100 + (i % 97) * 0.25}, {1 + i % 400})"
        for i in range(BACKEND_SWEEP_ROWS)
    )
    engine.execute(f"INSERT INTO bench_t VALUES {rows}")
    return engine


def _make_platform(wlm_enabled: bool, engine=None) -> HyperQ:
    return HyperQ(
        engine=engine,
        config=HyperQConfig(
            # raw pipeline cost, as in the figure benches: no repeat
            # statements answered from the translation cache
            translation_cache=TranslationCacheConfig(enabled=False),
            wlm=WlmConfig(enabled=wlm_enabled),
        ),
    )


def _sweep_seconds(hq: HyperQ, workload) -> float:
    """One full translation sweep over the workload."""
    start = time.perf_counter()
    for query in workload.queries:
        session = hq.create_session()
        try:
            session.translate(query.text)
        finally:
            session.close()
    return time.perf_counter() - start


def _backend_paired_samples(
    wrapped, bare, statements: int
) -> tuple[list, list]:
    """Per-statement timings, paired and order-alternated.

    Sweep-vs-sweep comparison is hostage to drift (GC, scheduler) that
    easily dwarfs the wrapper's few-microsecond cost; timing each
    statement back-to-back and flipping who goes first cancels it.
    """
    wrapped_s, bare_s = [], []
    for i in range(statements):
        order = (wrapped, bare) if i % 2 == 0 else (bare, wrapped)
        for backend in order:
            start = time.perf_counter()
            backend.run_sql(BACKEND_SWEEP_SQL)
            elapsed = time.perf_counter() - start
            (wrapped_s if backend is wrapped else bare_s).append(elapsed)
    return wrapped_s, bare_s


def _wrapped_backend(engine, lockcheck: bool):
    """A WLM-wrapped backend whose locks are (or are not) instrumented.

    The ``make_lock`` factories read ``REPRO_LOCKCHECK`` at construction
    time, so the env var only needs to be set while the wrapper (and its
    breaker/retry-budget locks) is built.
    """
    saved = os.environ.pop("REPRO_LOCKCHECK", None)
    if lockcheck:
        os.environ["REPRO_LOCKCHECK"] = "1"
    try:
        return WorkloadManager(WlmConfig()).wrap_backend(
            DirectGateway(engine)
        )
    finally:
        if saved is None:
            os.environ.pop("REPRO_LOCKCHECK", None)
        else:
            os.environ["REPRO_LOCKCHECK"] = saved


def _median_overhead(enabled: list, disabled: list) -> tuple:
    median_on = statistics.median(enabled)
    median_off = statistics.median(disabled)
    return median_on, median_off, 100.0 * (median_on - median_off) / median_off


def test_wlm_overhead(benchmark):
    hq_on = _make_platform(wlm_enabled=True)
    workload = load_workload(hq_on.engine, mdi=hq_on.mdi)
    hq_off = _make_platform(wlm_enabled=False, engine=hq_on.engine)
    # the workload loader annotated keyed tables on hq_on's MDI only;
    # the off-platform shares the engine, so mirror the annotations
    for table, keys in hq_on.mdi.key_annotations.items():
        hq_off.mdi.annotate_keys(table, keys)
    assert hq_on.wlm is not None and hq_off.wlm is None

    # enough interleaved pairs for the median to shrug off scheduler
    # noise even in smoke mode — each sweep is only ~0.3s
    repeats = max(5, bench_repeats(7))

    benchmark.pedantic(
        lambda: _sweep_seconds(hq_on, workload),
        rounds=bench_rounds(3),
        iterations=1,
    )

    # -- session path: classify + admit + scope per request ----------------
    # warm both platforms (metadata caches, allocator), then interleave
    # pairs so drift (thermal, GC pressure) hits both modes equally
    _sweep_seconds(hq_on, workload)
    _sweep_seconds(hq_off, workload)
    enabled, disabled = [], []
    for __ in range(repeats):
        enabled.append(_sweep_seconds(hq_on, workload))
        disabled.append(_sweep_seconds(hq_off, workload))
    median_on, median_off, session_pct = _median_overhead(enabled, disabled)

    # -- backend path: the ResilientBackend wrapper ------------------------
    engine = _backend_engine()
    bare = DirectGateway(engine)
    wrapped = WorkloadManager(WlmConfig()).wrap_backend(
        DirectGateway(engine)
    )
    _backend_paired_samples(wrapped, bare, statements=10)  # warm-up
    wrapped_runs, bare_runs = _backend_paired_samples(
        wrapped, bare, statements=BACKEND_SWEEP_STATEMENTS
    )
    wrapped_med, bare_med, backend_pct = _median_overhead(
        wrapped_runs, bare_runs
    )

    # -- lockcheck harness: OrderedLock vs plain threading.Lock ------------
    instrumented = _wrapped_backend(engine, lockcheck=True)
    plain = _wrapped_backend(engine, lockcheck=False)
    _backend_paired_samples(instrumented, plain, statements=10)  # warm-up
    lc_runs, plain_runs = _backend_paired_samples(
        instrumented, plain, statements=BACKEND_SWEEP_STATEMENTS
    )
    lc_med, plain_med, lockcheck_pct = _median_overhead(lc_runs, plain_runs)

    print(
        f"\nWLM overhead, faults off (medians, budget "
        f"{OVERHEAD_BUDGET_PCT}%)"
        f"\n  translation sweep : {median_on * 1e3:8.1f} ms on / "
        f"{median_off * 1e3:8.1f} ms off  ({session_pct:+.2f}%)"
        f"\n  backend run_sql   : {wrapped_med * 1e3:8.3f} ms/stmt wrapped "
        f"/ {bare_med * 1e3:8.3f} ms/stmt bare  ({backend_pct:+.2f}%)"
        f"\n  lockcheck harness : {lc_med * 1e3:8.3f} ms/stmt on "
        f"/ {plain_med * 1e3:8.3f} ms/stmt off  ({lockcheck_pct:+.2f}%)"
    )
    save_results(
        "wlm_overhead",
        {
            "enabled_ms": [t * 1e3 for t in enabled],
            "disabled_ms": [t * 1e3 for t in disabled],
            "median_enabled_ms": median_on * 1e3,
            "median_disabled_ms": median_off * 1e3,
            "session_overhead_pct": session_pct,
            "backend_wrapped_ms": [t * 1e3 for t in wrapped_runs],
            "backend_bare_ms": [t * 1e3 for t in bare_runs],
            "backend_overhead_pct": backend_pct,
            "backend_sweep_statements": BACKEND_SWEEP_STATEMENTS,
            "lockcheck_on_ms": [t * 1e3 for t in lc_runs],
            "lockcheck_off_ms": [t * 1e3 for t in plain_runs],
            "lockcheck_overhead_pct": lockcheck_pct,
            "budget_pct": OVERHEAD_BUDGET_PCT,
        },
    )

    assert session_pct < OVERHEAD_BUDGET_PCT, (
        f"WLM session path costs {session_pct:.2f}% on the translation "
        f"sweep — over the {OVERHEAD_BUDGET_PCT}% budget"
    )
    assert backend_pct < OVERHEAD_BUDGET_PCT, (
        f"ResilientBackend wrapper costs {backend_pct:.2f}% per statement "
        f"— over the {OVERHEAD_BUDGET_PCT}% budget"
    )
    assert lockcheck_pct < OVERHEAD_BUDGET_PCT, (
        f"OrderedLock instrumentation costs {lockcheck_pct:.2f}% per "
        f"statement — over the {OVERHEAD_BUDGET_PCT}% budget"
    )
