"""Ablation B — the Xformer's column pruning rule on vs off.

Paper (Section 3.3, Performance): "A transformation that prunes the
columns of each XTRA node, to keep only the needed columns, is used to
avoid bloating the serialized SQL with unnecessary columns, which may
negatively impact query performance."

On 500+-column tables the effect is dramatic: without pruning, a 3-column
aggregate drags the full 600-column scan through the backend.
"""

from __future__ import annotations

import time

from conftest import save_results

from repro.config import HyperQConfig, XformerConfig
from repro.core.session import HyperQSession

#: narrow-output queries over wide tables — where pruning matters most
QUERY_IDS = (1, 2, 9, 21, 22)


def _measure(hq, workload, pruning: bool):
    config = HyperQConfig(xformer=XformerConfig(column_pruning=pruning))
    out = []
    for query_id in QUERY_IDS:
        query = workload.queries[query_id - 1]
        session = HyperQSession(hq.backend, config=config)
        try:
            outcome = session.translate(query.text)
            sql = outcome.sql_statements[-1]
            start = time.perf_counter()
            hq.engine.execute(sql)
            execute_seconds = time.perf_counter() - start
            out.append(
                {
                    "query": query_id,
                    "sql_bytes": len(sql),
                    "execute_ms": execute_seconds * 1e3,
                }
            )
        finally:
            session.close()
    return out


def test_ablation_column_pruning(benchmark, workload_env):
    hq, workload = workload_env

    pruned = _measure(hq, workload, pruning=True)
    unpruned = _measure(hq, workload, pruning=False)

    def run_pruned():
        _measure(hq, workload, pruning=True)

    benchmark.pedantic(run_pruned, rounds=1, iterations=1)

    lines = ["", "Ablation B: column pruning (Xformer performance rule)"]
    lines.append(
        f"{'query':>6} {'SQL bytes on':>13} {'SQL bytes off':>14} "
        f"{'exec on':>10} {'exec off':>10}"
    )
    for p, u in zip(pruned, unpruned):
        lines.append(
            f"Q{p['query']:>5} {p['sql_bytes']:>13} {u['sql_bytes']:>14} "
            f"{p['execute_ms']:>8.1f}ms {u['execute_ms']:>8.1f}ms"
        )
    total_on = sum(p["execute_ms"] for p in pruned)
    total_off = sum(u["execute_ms"] for u in unpruned)
    sql_on = sum(p["sql_bytes"] for p in pruned)
    sql_off = sum(u["sql_bytes"] for u in unpruned)
    lines.append(
        f"totals: SQL {sql_on} vs {sql_off} bytes "
        f"({sql_off / sql_on:.1f}x bloat without pruning); "
        f"execution {total_on:.0f} vs {total_off:.0f} ms "
        f"({total_off / total_on:.1f}x slower without pruning)"
    )
    print("\n".join(lines))

    save_results(
        "ablation_column_pruning",
        {"pruned": pruned, "unpruned": unpruned},
    )

    assert sql_off > 5 * sql_on, "pruning must shrink the serialized SQL"
    assert total_off > 1.5 * total_on, (
        "pruning must speed up execution on wide tables"
    )
