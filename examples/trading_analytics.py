"""Trading analytics: the paper's Example 1 on TAQ-style market data.

The as-of join ``aj`` retrieving the prevailing quote for each trade is
"one of the most commonly used queries by financial market analysts".
This example generates a synthetic NYSE TAQ-style day of trades and
quotes, runs the point-in-time query (plus slippage and VWAP analytics)
on the reference Q interpreter (playing kdb+) and through Hyper-Q, and
shows that the application-visible results match.

Run:  python examples/trading_analytics.py
"""

from repro.core.platform import HyperQ
from repro.qlang.interp import Interpreter
from repro.qlang.printer import format_value
from repro.testing.comparators import compare_values
from repro.workload.loader import load_table
from repro.workload.taq import TaqConfig, generate

#: the paper's Example 1, adapted to the generated schema
PREVAILING_QUOTE = (
    "aj[`Symbol`Time; "
    "select Symbol, Time, Price from trades where Symbol in `AAPL`GOOG; "
    "select Symbol, Time, Bid, Ask from quotes]"
)

ANALYTICS = [
    ("prevailing quote (paper Example 1)", PREVAILING_QUOTE),
    ("volume by symbol", "select volume: sum Size by Symbol from trades"),
    ("VWAP by symbol", "select vwap: Size wavg Price by Symbol from trades"),
    (
        "slippage vs prevailing bid",
        "select Symbol, Time, slip: Price - Bid from "
        + PREVAILING_QUOTE,
    ),
    (
        "5-trade moving average price",
        "update m: 5 mavg Price from "
        "select Symbol, Time, Price from trades where Symbol=`AAPL",
    ),
]


def main() -> None:
    data = generate(TaqConfig(n_symbols=4, quotes_per_symbol=120,
                              trades_per_symbol=40))
    print(
        f"generated {len(data.trades)} trades / {len(data.quotes)} quotes "
        f"for {', '.join(data.symbols)}"
    )

    # the "before" system: kdb+ (reference interpreter)
    kdb = Interpreter()
    kdb.set_global("trades", data.trades)
    kdb.set_global("quotes", data.quotes)

    # the "after" system: Hyper-Q on a PG-compatible engine
    hyperq = HyperQ()
    load_table(hyperq.engine, "trades", data.trades, mdi=hyperq.mdi)
    load_table(hyperq.engine, "quotes", data.quotes, mdi=hyperq.mdi)

    for title, query in ANALYTICS:
        print(f"\n=== {title}")
        print(f"q) {query}")
        q_result = kdb.eval_text(query)
        hq_result = hyperq.q(query)
        comparison = compare_values(q_result, hq_result)
        status = "MATCH" if comparison else f"MISMATCH: {comparison.reason}"
        print(f"kdb+ vs Hyper-Q: {status}")
        print(format_value(hq_result, max_rows=5))


if __name__ == "__main__":
    main()
