"""Quickstart: run Q queries against a PostgreSQL-compatible backend.

This is the paper's pitch in thirty lines: take Q — the kdb+ query
language — and run it, unchanged, on a PG-compatible analytical database.
Hyper-Q parses the Q text, binds it to XTRA relational algebra, applies
the Xformer rules, serializes SQL, executes it on the backend, and pivots
the row-oriented result back into the column-oriented Q value the
application expects.

Run:  python examples/quickstart.py
"""

from repro.core.platform import HyperQ
from repro.qlang.interp import Interpreter
from repro.qlang.printer import format_value
from repro.workload.loader import load_q_source

MARKET = """
trades: ([] Symbol:`GOOG`IBM`GOOG`MSFT;
            Time:09:30:30 09:31:00 09:32:00 09:30:45;
            Price:100.0 50.0 101.0 30.0;
            Size:10 20 30 40)
"""

QUERIES = [
    "select from trades",
    "select Price, Size from trades where Symbol=`GOOG",
    "select sum Size by Symbol from trades",
    "select vwap: Size wavg Price from trades",
    "update Notional: Price*Size from trades",
]


def main() -> None:
    # the backend: an in-memory PostgreSQL-compatible engine (the paper
    # deploys against Greenplum; any PG dialect works)
    platform = HyperQ()

    # load the Q table into the backend (ordcol carries Q's implicit order)
    load_q_source(
        platform.engine, Interpreter(), MARKET, ["trades"], mdi=platform.mdi
    )

    for query in QUERIES:
        print(f"\nq) {query}")
        translation = platform.translate(query)
        for sql in translation.sql_statements:
            print(f"   SQL: {sql[:120]}{'...' if len(sql) > 120 else ''}")
        result = platform.q(query)
        print(format_value(result))

    # scalar Q expressions translate too
    print("\nq) 2*3+4   (right-to-left: 2*(3+4))")
    print(format_value(platform.q("2*3+4")))


if __name__ == "__main__":
    main()
