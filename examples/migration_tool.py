"""Data movement and schema mapping — the paper's Section-1 future work.

    "We rely on the assumption that all relevant data is loaded into the
    underlying systems independently. ... We consider adding tools that
    perform data movement and the mapping of schemas in the future."

This example is that tool: it takes a populated kdb+-style source (the
reference interpreter holding a day of TAQ market data), maps each Q
column type to its PostgreSQL type (reporting degradations), moves the
rows through the backend port — here over a real PG v3 socket — and
verifies the migration with a Hyper-Q side-by-side spot check.

Run:  python examples/migration_tool.py
"""

from repro.core.metadata import MetadataInterface
from repro.core.migrate import DataMover
from repro.core.session import HyperQSession
from repro.qlang.interp import Interpreter
from repro.server.gateway import NetworkGateway
from repro.server.pgserver import PgWireServer
from repro.sqlengine.engine import Engine
from repro.testing.comparators import compare_values
from repro.workload.taq import TaqConfig, generate

SPOT_CHECKS = [
    "select from trades",
    "select sum Size by Symbol from trades",
    "select max Bid, min Ask by Symbol from quotes",
]


def main() -> None:
    # the incumbent system: kdb+ holding a day of market data
    data = generate(TaqConfig(n_symbols=5, quotes_per_symbol=150,
                              trades_per_symbol=40))
    kdb = Interpreter()
    kdb.set_global("trades", data.trades)
    kdb.set_global("quotes", data.quotes)
    print(
        f"source (kdb+): trades={len(data.trades)} rows, "
        f"quotes={len(data.quotes)} rows"
    )

    # the target: a PG-compatible server, reached over the wire
    engine = Engine()
    with PgWireServer(engine) as pg_server:
        with NetworkGateway(*pg_server.address) as gateway:
            mdi = MetadataInterface(gateway)

            def verify(table_name: str) -> bool:
                session = HyperQSession(gateway, mdi=mdi)
                try:
                    left = kdb.eval_text(f"select from {table_name}")
                    right = session.execute(f"select from {table_name}")
                    return bool(compare_values(left, right))
                finally:
                    session.close()

            mover = DataMover(gateway, mdi=mdi, batch_rows=200)
            report = mover.migrate(
                {"trades": data.trades, "quotes": data.quotes},
                verify_with=verify,
            )
            print("\n" + report.summary())

            print("\nschema mapping for trades:")
            for column in report.tables[0].columns:
                note = f"   ({column.note})" if column.note else ""
                print(f"  {column.name:>8}: {column.q_type:>8} -> "
                      f"{column.sql_type}{note}")

            print("\npost-migration spot checks (kdb+ vs Hyper-Q):")
            session = HyperQSession(gateway, mdi=mdi)
            try:
                for query in SPOT_CHECKS:
                    left = kdb.eval_text(query)
                    right = session.execute(query)
                    comparison = compare_values(left, right)
                    status = "MATCH" if comparison else comparison.reason
                    print(f"  {query!r}: {status}")
            finally:
                session.close()


if __name__ == "__main__":
    main()
