"""The full Figure-1 deployment over real sockets.

Three processes-worth of components in one script:

1. a **PG-wire server** wrapping the analytical engine (the Greenplum
   stand-in),
2. a **Hyper-Q server** that impersonates kdb+ on its QIPC port and talks
   PG v3 to the backend through the network gateway,
3. a **Q application** (the QIPC client) that connects first to a real
   kdb+-style server and then to Hyper-Q — with the same code — and gets
   the same answers.

Run:  python examples/virtualized_server.py
"""

from repro.qlang.interp import Interpreter
from repro.qlang.printer import format_value
from repro.server.client import QConnection
from repro.server.gateway import NetworkGateway
from repro.server.hyperq_server import HyperQServer, KdbServer
from repro.server.pgserver import PgWireServer
from repro.sqlengine.engine import Engine
from repro.testing.comparators import compare_values
from repro.workload.loader import load_q_source

MARKET = """
trades: ([] Symbol:`GOOG`IBM`GOOG`MSFT;
            Price:100.0 50.0 101.0 30.0;
            Size:10 20 30 40)
"""

APPLICATION_QUERIES = [
    "select from trades where Price > 40",
    "select sum Size by Symbol from trades",
    "exec max Price from trades",
]


def run_q_application(host: str, port: int, label: str):
    """An unchanged 'Q application': connect, query, print."""
    results = []
    with QConnection(host, port, username="trader") as q:
        for query in APPLICATION_QUERIES:
            result = q.query(query)
            results.append(result)
            print(f"[{label}] q) {query}")
            print(format_value(result, max_rows=4))
    return results


def main() -> None:
    # --- the original deployment: a kdb+-style server -----------------------
    kdb = KdbServer()
    kdb.interpreter.eval_text(MARKET)

    # --- the virtualized deployment: PG backend + Hyper-Q in front ----------
    engine = Engine()
    load_q_source(engine, Interpreter(), MARKET, ["trades"])

    with kdb, PgWireServer(engine) as pg_server:
        print(f"kdb+-style server listening on {kdb.address}")
        print(f"PG-wire backend listening on   {pg_server.address}")
        gateway = NetworkGateway(*pg_server.address).connect()
        try:
            with HyperQServer(backend=gateway) as hyperq:
                print(f"Hyper-Q listening on           {hyperq.address}\n")
                before = run_q_application(*kdb.address, label="kdb+ ")
                print()
                after = run_q_application(*hyperq.address, label="HyperQ")

                print("\nside-by-side verification:")
                for query, left, right in zip(
                    APPLICATION_QUERIES, before, after
                ):
                    comparison = compare_values(left, right)
                    status = "MATCH" if comparison else comparison.reason
                    print(f"  {query!r}: {status}")
        finally:
            gateway.close()


if __name__ == "__main__":
    main()
