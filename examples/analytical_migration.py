"""The case study (paper Section 5): validating a customer migration.

A Wall Street customer wants to move analytical workloads from kdb+ to a
PG-compatible MPP database while keeping the Q application layer intact.
The paper's engagement loop: collect the representative workload, run it
through Hyper-Q, and use the side-by-side testing framework to "ensure the
exact same behavior to the application as before".

This example replays that loop on the 25-query Analytical Workload at a
reduced scale, reporting the coverage a migration engineer would see.

Run:  python examples/analytical_migration.py
"""

from repro.testing.sidebyside import SideBySideHarness
from repro.workload.analytical import AnalyticalConfig, generate


def main() -> None:
    config = AnalyticalConfig.small()
    workload = generate(config)

    # stage the same data on both sides: the reference interpreter plays
    # the incumbent kdb+, Hyper-Q fronts the PG-compatible target
    harness = SideBySideHarness(source="", tables=[])
    for name, table in workload.tables.items():
        harness.interp.set_global(name, table)
        from repro.workload.loader import load_table

        load_table(harness.hyperq.engine, name, table, mdi=harness.hyperq.mdi)

    print(
        f"analytical workload: {len(workload.queries)} queries over "
        f"{len(workload.tables)} wide tables "
        f"({', '.join(workload.tables)})"
    )

    report = harness.run_suite([q.text for q in workload.queries])
    print()
    for query, result in zip(workload.queries, report.results):
        status = "ok " if result.passed else "FAIL"
        print(f"  [{status}] Q{query.number:>2} {query.description}")
        if not result.passed:
            print(f"         {result.comparison.reason}")

    print(f"\ncoverage: {report.passed}/{len(report.results)} queries match")
    if report.failed == 0:
        print(
            "all queries produce application-identical results — the "
            "migration candidate is safe to stage"
        )


if __name__ == "__main__":
    main()
