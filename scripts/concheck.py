#!/usr/bin/env python
"""Concurrency static analysis runner (rules CC000–CC004).

Builds the :mod:`repro.analysis.concurrency` call graph over
``src/repro``, infers thread roles (reactor / worker), runs the
lock-discipline rules, and writes a JSON report.  CI runs this and
fails on any error-severity finding, so an attribute newly shared
across thread roles (or a blocking call wired into a reactor callback
three helpers deep) breaks the build instead of a soak test.

Suppressions must be justified — a bare ``hq: allow(...)`` or
``@thread_safe`` without a reason string is itself reported (CC000)
and does not suppress.  The report records every honored suppression
with its justification for review.

Usage::

    python scripts/concheck.py [--root PATH] [--output PATH] [-v]

Exit status: the number of error-severity findings (capped at 125).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.analysis.concurrency.checker import check_tree  # noqa: E402
from repro.analysis.framework import Severity  # noqa: E402

DEFAULT_ROOT = _ROOT / "src" / "repro"
DEFAULT_REPORT = _ROOT / "benchmarks" / "results" / "concheck_report.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--root", type=Path, default=DEFAULT_ROOT,
        help=f"package tree to analyze (default: {DEFAULT_ROOT})",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_REPORT,
        help=f"JSON report path (default: {DEFAULT_REPORT})",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print every finding and suppression, not just errors",
    )
    args = parser.parse_args(argv)

    checker = check_tree(args.root)
    report = checker.report()
    report["tool"] = "concheck"

    errors = 0
    for finding in checker.findings:
        if finding.severity == Severity.ERROR:
            errors += 1
        if args.verbose or finding.severity == Severity.ERROR:
            print(finding.render())
    if args.verbose:
        for entry in checker.suppressed:
            print(
                f"{entry['path']}:{entry['line']}: {entry['code']} "
                f"suppressed ({entry['suppressed_by']})"
            )

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    counts = report["counts"]
    print(
        f"concheck: {report['functions']} functions in "
        f"{report['modules']} modules "
        f"({report['role_counts']['reactor']} reactor, "
        f"{report['role_counts']['worker']} worker), "
        f"{len(checker.findings)} finding(s) "
        f"({counts.get('error', 0)} error, {counts.get('warning', 0)} "
        f"warning), {len(checker.suppressed)} justified suppression(s) "
        f"-> {args.output}"
    )
    return min(errors, 125)


if __name__ == "__main__":
    raise SystemExit(main())
