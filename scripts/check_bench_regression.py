#!/usr/bin/env python3
"""Compare fresh benchmark results against the committed baselines.

The bench-smoke CI job used to only *upload* ``benchmarks/results/*.json``;
this gate actually reads them.  Only dimensionless metrics (speedups,
overhead percentages, latency ratios) are compared — absolute times vary
with runner hardware, but a 500x translation-cache speedup that drops to
5x is a regression on any machine.

Usage::

    python scripts/check_bench_regression.py \
        --baseline benchmarks/results_baseline --fresh benchmarks/results

A metric passes while ``|fresh - base| <= max(abs_slack, rel_tol*|base|)``.
Bands are generous: CI runs the benches in smoke mode (fewer iterations)
against baselines recorded at full scale, so only order-of-magnitude
movement should fail the job.  Exit status 1 on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (key, abs_slack, rel_tol) — longest key match wins; a numeric JSON
#: leaf whose key is not listed is machine-dependent and never compared
BANDS = (
    ("p99_ratio", 2.0, 1.0),
    ("session_overhead_pct", 5.0, 2.0),
    ("backend_overhead_pct", 5.0, 2.0),
    ("lockcheck_overhead_pct", 5.0, 2.0),
    ("overhead_pct", 5.0, 2.0),
    ("average_pct", 5.0, 2.0),
    ("max_pct", 10.0, 2.0),
    ("speedup", 1.0, 0.9),
    ("process_scatter_speedup", 1.0, 0.9),
    ("per_connection_kib", 16.0, 1.0),
)

#: result files that are telemetry dumps, not figures — never compared
SKIP_FILES = {"BENCH_obs.json", "qlint_report.json", "concheck_report.json"}


def _band_for(key: str):
    for name, abs_slack, rel_tol in BANDS:
        if key == name:
            return abs_slack, rel_tol
    return None


def _metrics(node, path=""):
    """Yield ``(path, value)`` for every banded numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if _band_for(key) is not None:
                    yield f"{path}/{key}", float(value)
            else:
                yield from _metrics(value, f"{path}/{key}")
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from _metrics(value, f"{path}[{index}]")


def compare(baseline_dir: Path, fresh_dir: Path) -> int:
    violations = 0
    compared = 0
    for fresh_path in sorted(fresh_dir.glob("*.json")):
        if fresh_path.name in SKIP_FILES:
            continue
        baseline_path = baseline_dir / fresh_path.name
        if not baseline_path.is_file():
            print(f"  {fresh_path.name}: no committed baseline (new bench)")
            continue
        base = dict(_metrics(json.loads(baseline_path.read_text())))
        fresh = dict(_metrics(json.loads(fresh_path.read_text())))
        for path, base_value in sorted(base.items()):
            if path not in fresh:
                print(f"FAIL {fresh_path.name}{path}: metric disappeared")
                violations += 1
                continue
            fresh_value = fresh[path]
            key = path.rsplit("/", 1)[-1]
            abs_slack, rel_tol = _band_for(key)
            allowed = max(abs_slack, rel_tol * abs(base_value))
            delta = fresh_value - base_value
            compared += 1
            status = "ok  " if abs(delta) <= allowed else "FAIL"
            if status == "FAIL":
                violations += 1
            print(
                f"{status} {fresh_path.name}{path}: "
                f"{base_value:.3f} -> {fresh_value:.3f} "
                f"(delta {delta:+.3f}, allowed +/-{allowed:.3f})"
            )
    print(
        f"bench-regression: {compared} metric(s) compared, "
        f"{violations} violation(s)"
    )
    return 1 if violations else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", type=Path,
        default=Path("benchmarks/results_baseline"),
        help="directory holding the committed baseline JSONs",
    )
    parser.add_argument(
        "--fresh", type=Path, default=Path("benchmarks/results"),
        help="directory holding the freshly generated JSONs",
    )
    args = parser.parse_args()
    if not args.baseline.is_dir():
        print(f"baseline directory {args.baseline} missing", file=sys.stderr)
        return 2
    return compare(args.baseline, args.fresh)


if __name__ == "__main__":
    sys.exit(main())
