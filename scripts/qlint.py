#!/usr/bin/env python
"""Batch qcheck runner: analyze the shipped Q query corpora.

Runs the ``repro.analysis`` qcheck rules (the same rules the pipeline's
``analyze`` pass applies per statement) over every Q query the repo
ships — the paper's 25-query Analytical Workload plus the ``examples/``
corpora — against the real schemas those queries run on, and writes a
JSON report.  CI runs this and fails on any error-severity finding, so
a new workload query with a typo'd column name (or an analyzer false
positive on supported Q) breaks the build instead of a benchmark run.

Usage::

    python scripts/qlint.py [--output PATH] [-v]

Exit status: the number of error-severity findings (capped at 125).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))
if str(_ROOT) not in sys.path:
    sys.path.insert(0, str(_ROOT))

from repro.analysis import QueryAnalyzer, Severity  # noqa: E402
from repro.core.platform import HyperQ  # noqa: E402
from repro.qlang.interp import Interpreter  # noqa: E402
from repro.workload.analytical import AnalyticalConfig, load_workload  # noqa: E402
from repro.workload.loader import load_q_source, load_table  # noqa: E402
from repro.workload.taq import TaqConfig, generate  # noqa: E402

DEFAULT_REPORT = _ROOT / "benchmarks" / "results" / "qlint_report.json"


@dataclass
class Corpus:
    """One named set of Q queries plus the platform they bind against."""

    name: str
    queries: list[str]
    platform: HyperQ = field(default_factory=HyperQ)


def _market_platform(source: str, tables: list[str]) -> HyperQ:
    platform = HyperQ()
    load_q_source(
        platform.engine, Interpreter(), source, tables, mdi=platform.mdi
    )
    return platform


def _taq_platform() -> HyperQ:
    platform = HyperQ()
    data = generate(
        TaqConfig(n_symbols=2, quotes_per_symbol=8, trades_per_symbol=4)
    )
    load_table(platform.engine, "trades", data.trades, mdi=platform.mdi)
    load_table(platform.engine, "quotes", data.quotes, mdi=platform.mdi)
    return platform


def build_corpora() -> list[Corpus]:
    """The shipped query corpora, each with its real schema loaded."""
    from examples.migration_tool import SPOT_CHECKS
    from examples.quickstart import MARKET as QUICKSTART_MARKET
    from examples.quickstart import QUERIES as QUICKSTART_QUERIES
    from examples.trading_analytics import ANALYTICS
    from examples.virtualized_server import (
        APPLICATION_QUERIES,
        MARKET as SERVER_MARKET,
    )

    workload_platform = HyperQ()
    workload = load_workload(
        workload_platform.engine,
        mdi=workload_platform.mdi,
        config=AnalyticalConfig.small(),
    )
    taq = _taq_platform()
    return [
        Corpus(
            "workload.analytical",
            [query.text for query in workload.queries],
            workload_platform,
        ),
        Corpus(
            "examples.quickstart",
            list(QUICKSTART_QUERIES),
            _market_platform(QUICKSTART_MARKET, ["trades"]),
        ),
        Corpus(
            "examples.trading_analytics",
            [query for __, query in ANALYTICS],
            taq,
        ),
        Corpus("examples.migration_tool", list(SPOT_CHECKS), taq),
        Corpus(
            "examples.virtualized_server",
            list(APPLICATION_QUERIES),
            _market_platform(SERVER_MARKET, ["trades"]),
        ),
    ]


def analyze_corpus(corpus: Corpus) -> list[dict]:
    """qcheck findings for every query in one corpus, as report rows."""
    analyzer = QueryAnalyzer(
        mdi=corpus.platform.mdi, config=corpus.platform.config
    )
    session = corpus.platform.create_session()
    rows: list[dict] = []
    try:
        for number, query in enumerate(corpus.queries, start=1):
            for finding in analyzer.analyze_source(
                query, session.session_scope
            ):
                row = finding.to_dict()
                row["corpus"] = corpus.name
                row["query_number"] = number
                row["query"] = query
                rows.append(row)
    finally:
        session.close()
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_REPORT,
        help=f"JSON report path (default: {DEFAULT_REPORT})",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print every finding, not just the summary",
    )
    args = parser.parse_args(argv)

    corpora = build_corpora()
    findings: list[dict] = []
    counts: dict[str, int] = {}
    for corpus in corpora:
        rows = analyze_corpus(corpus)
        findings.extend(rows)
        counts[corpus.name] = len(corpus.queries)

    by_severity = {severity.label: 0 for severity in Severity}
    for row in findings:
        by_severity[row["severity"]] += 1
        if args.verbose or row["severity"] == Severity.ERROR.label:
            print(
                f"{row['corpus']} #{row['query_number']}: {row['code']} "
                f"[{row['severity']}] {row['message']}\n"
                f"    q) {row['query']}"
            )

    report = {
        "tool": "qlint",
        "corpora": counts,
        "total_queries": sum(counts.values()),
        "findings": findings,
        "by_severity": by_severity,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"qlint: {sum(counts.values())} queries in {len(corpora)} corpora, "
        f"{len(findings)} finding(s) "
        f"({by_severity['error']} error, {by_severity['warning']} warning, "
        f"{by_severity['info']} info) -> {args.output}"
    )
    return min(by_severity["error"], 125)


if __name__ == "__main__":
    raise SystemExit(main())
