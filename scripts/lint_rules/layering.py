"""Repo-specific layering rules (``HQ0xx``) — no ruff equivalents.

These encode architectural invariants of the Hyper-Q reproduction:

* HQ001 — ``Binder``/``Serializer`` are built only by the translation
  pipeline; everything else goes through a ``TranslationPipeline``.
* HQ002 — no ``except ...: pass`` silent swallows in the server and core
  layers; failures must at least reach the structured logger.
* HQ003 — every metric family name passed to ``metrics.counter`` /
  ``gauge`` / ``histogram`` under ``src/`` must be declared in the
  central registry ``src/repro/obs/names.py`` (typo'd names otherwise
  produce dashboards that silently read zero).
* HQ004 — no hard-coded blocking in the serving path: literal-constant
  socket timeouts and ``time.sleep`` calls under ``src/repro/server`` /
  ``src/repro/core`` must come from config (``WlmConfig``), a named
  module constant, or live in ``src/repro/wlm`` (the one layer whose job
  *is* sleeping and timing out).
* HQ005 — no per-element serialization on the wire paths: ``struct.pack``
  inside a loop and ``bytes``-building ``+=`` accumulation inside a loop
  are banned under ``src/repro/pgwire`` / ``src/repro/qipc``.  Batched
  packing lives in the ``kernels.py`` module of each package (the one
  allowed home, exempt by filename).
* HQ007 — shard routing stays in its two homes: partition-key routing
  calls (``shard_for``/``route_rows``/``shard_targets``) are allowed only
  in ``repro/core/sharded.py``, ``repro/core/xformer/distributed.py`` and
  ``repro/core/metadata.py`` (which defines the partition map), and the
  ``PartitionMap``/``TablePartitioning`` types may additionally be
  *constructed* by topology declarations (``repro/workload/sharding.py``).
  Servers, serializers and loaders never inspect partition keys — they
  hand whole statements/tables to the planner and backend.
* HQ006 — no blocking calls on the event-loop thread: the protocol
  modules (``endpoint.py``, ``pgserver.py``, ``hyperq_server.py``) run
  entirely on the reactor and may never touch a socket or sleep; the
  reactor itself (``reactor.py``) owns non-blocking ``recv``/``send``/
  ``accept`` but is still banned from ``sendall``, ``settimeout``,
  ``makefile``, ``connect`` and ``time.sleep``.  Blocking work belongs
  on the worker pool (``client.py``/``gateway.py``/``common.py`` are the
  blocking client/worker boundary and are exempt).
* HQ008 — no raw ``threading.Lock()``/``RLock()``/``Condition()``
  construction under ``src/repro`` outside
  ``repro/analysis/concurrency/locks.py``: locks come from the
  ``make_lock``/``make_rlock``/``make_condition`` factory so the
  ``REPRO_LOCKCHECK`` runtime harness can record lock order (CC005
  deadlock cycles, CC006 reactor long holds).  ``Event``, semaphores
  and ``threading.local`` stay unrestricted — they carry no ordering.
* HQ009 — session/PT code never calls ``backend.run_sql`` directly:
  ``repro/core/session.py`` and ``repro/core/crosscompiler.py`` reach
  the backend only through ``repro.cache.executor.QueryExecutor``,
  the choke point that drives the result cache, per-table version
  bumps and the temp-data tier.  A direct call would silently bypass
  invalidation and serve stale cached results.
* HQ010 — process spawning (``subprocess``, ``multiprocessing``,
  ``os.fork``/``os.spawn*``/``os.exec*``) is confined to the process-
  shard coordinator (``repro/core/procshard.py``) and its worker
  entrypoint (``repro/server/shardworker.py``): child processes escape
  WLM admission, lockcheck and the reactor's lifecycle, so every spawn
  path must go through the one subsystem built to supervise them.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from lint_rules import LintContext, LintFinding, LintRule, register

#: classes only repro/core/pipeline.py may construct (HQ001)
_PIPELINE_ONLY = {"Binder", "Serializer"}
#: modules allowed to construct them: the pipeline choke point plus the
#: modules that define the classes themselves
_PIPELINE_EXEMPT = {
    ("repro", "core", "pipeline.py"),
    ("repro", "core", "serializer.py"),
    ("repro", "core", "algebrizer", "binder.py"),
}

#: directory tails whose files may not silently swallow exceptions (HQ002)
_NO_SWALLOW_DIRS = (
    ("src", "repro", "server"),
    ("src", "repro", "core"),
)

#: the metric factory functions whose first argument HQ003 validates
_METRIC_FACTORIES = {"counter", "gauge", "histogram"}

#: directory tails where HQ004 forbids hard-coded blocking; repro/wlm is
#: a sibling of these, so the WLM layer is exempt by construction
_NO_HARDCODED_BLOCKING_DIRS = (
    ("src", "repro", "server"),
    ("src", "repro", "core"),
)

#: socket methods/functions whose timeout HQ004 inspects
_SOCKET_TIMEOUT_CALLS = {"settimeout", "create_connection"}

#: directory tails where HQ005 bans per-element wire serialization
_BATCHED_WIRE_DIRS = (
    ("src", "repro", "pgwire"),
    ("src", "repro", "qipc"),
)

#: the one allowed home for per-element pack loops in those packages
_KERNELS_FILENAME = "kernels.py"

#: path tails of the protocol modules that run on the reactor thread
#: (HQ006): these may never call a socket method or sleep
_EVENT_LOOP_PROTOCOL_FILES = (
    ("repro", "server", "endpoint.py"),
    ("repro", "server", "pgserver.py"),
    ("repro", "server", "hyperq_server.py"),
)
#: the reactor module itself: non-blocking recv/send/accept are its job,
#: but blocking variants are still banned
_EVENT_LOOP_CORE_FILES = (
    ("repro", "server", "reactor.py"),
)
#: socket attribute calls that block (or arm blocking) — banned in the
#: protocol modules outright
_PROTOCOL_BANNED_CALLS = {
    "recv", "recv_into", "recvfrom", "accept", "sendall", "sendto",
    "makefile", "settimeout", "connect",
}
#: the subset that stays banned even inside the reactor module
_REACTOR_BANNED_CALLS = {"sendall", "settimeout", "makefile", "connect"}


def _under(parts: tuple[str, ...], tail: tuple[str, ...]) -> bool:
    """Whether ``tail`` appears as a contiguous run in ``parts``."""
    n = len(tail)
    return any(parts[i:i + n] == tail for i in range(len(parts) - n + 1))


@register
class PipelineLayeringRule(LintRule):
    """HQ001: Binder/Serializer construction outside the pipeline."""

    code = "HQ001"
    name = "pipeline_layering"
    purpose = "stage construction goes through TranslationPipeline"

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        parts = ctx.path.parts
        if "src" not in parts:
            return  # tests and benches construct the stages directly
        if any(parts[-len(tail):] == tail for tail in _PIPELINE_EXEMPT):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _PIPELINE_ONLY and not ctx.suppressed(node.lineno):
                yield self.finding(
                    ctx, node.lineno,
                    f"direct {name}() construction outside "
                    f"repro/core/pipeline.py — use the session's "
                    f"TranslationPipeline",
                )


def _is_broad(handler_type: ast.expr | None) -> bool:
    """Whether the except clause catches Exception/BaseException (or is
    bare).  Narrow handlers (``except OSError: pass`` on a teardown
    path) stay legitimate idiom."""
    if handler_type is None:
        return True
    if isinstance(handler_type, ast.Name):
        return handler_type.id in ("Exception", "BaseException")
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(element) for element in handler_type.elts)
    return False


@register
class SilentSwallowRule(LintRule):
    """HQ002: ``except Exception: pass`` in the server/core layers."""

    code = "HQ002"
    name = "silent_swallow"
    purpose = "no broad silently-passed exception handlers in server/core"

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        parts = ctx.path.parts
        if not any(_under(parts, tail) for tail in _NO_SWALLOW_DIRS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if ctx.suppressed(node.lineno):
                continue
            if not _is_broad(node.type):
                continue
            if len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
                yield self.finding(
                    ctx, node.lineno,
                    "exception silently swallowed (broad `except: pass`) "
                    "— log it through repro.obs.get_logger or narrow "
                    "the handler",
                )


@register
class MetricRegistryRule(LintRule):
    """HQ003: metric family names must come from repro/obs/names.py."""

    code = "HQ003"
    name = "metric_registry"
    purpose = "metric names declared in the central obs/names.py registry"

    #: relative path of the registry module (also HQ003-exempt itself)
    REGISTRY = ("src", "repro", "obs", "names.py")

    def __init__(self):
        self._registry_cache: tuple[Path, frozenset[str]] | None = None

    def _declared_names(self, root: Path | None) -> frozenset[str] | None:
        """Upper-case string constants in the registry module, by parsing
        its source (this package must not import ``repro``)."""
        if root is None:
            return None
        if (
            self._registry_cache is not None
            and self._registry_cache[0] == root
        ):
            return self._registry_cache[1]
        registry_path = root.joinpath(*self.REGISTRY)
        if not registry_path.is_file():
            return None
        names: set[str] = set()
        tree = ast.parse(registry_path.read_text())
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if not any(t.isupper() for t in targets):
                continue
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, str
            ):
                names.add(node.value.value)
        declared = frozenset(names)
        self._registry_cache = (root, declared)
        return declared

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        parts = ctx.path.parts
        if "src" not in parts:
            return  # tests may mint ad-hoc metric families
        if parts[-len(self.REGISTRY):] == self.REGISTRY:
            return
        declared = self._declared_names(ctx.root)
        if declared is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _METRIC_FACTORIES
                and isinstance(func.value, ast.Name)
                and func.value.id == "metrics"
            ):
                continue
            if ctx.suppressed(node.lineno):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                yield self.finding(
                    ctx, node.lineno,
                    f"metrics.{func.attr} family name must be a string "
                    f"literal so HQ003 can check it against "
                    f"repro/obs/names.py",
                )
                continue
            if first.value not in declared:
                yield self.finding(
                    ctx, node.lineno,
                    f"metric family {first.value!r} is not declared in "
                    f"repro/obs/names.py — add it to the registry",
                )


def _is_struct_pack(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("pack", "pack_into")
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "struct"
    )


def _builds_bytes(expr: ast.expr) -> bool:
    """Whether an expression visibly constructs wire bytes: a bytes
    literal, an ``.encode()`` call, ``struct.pack`` or ``_cstr``."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Constant) and isinstance(node.value, bytes):
            return True
        if _is_struct_pack(node):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "encode":
                return True
            if isinstance(func, ast.Name) and func.id == "_cstr":
                return True
    return False


@register
class BatchedWireSerializationRule(LintRule):
    """HQ005: per-element pack loops / ``bytes +=`` on the wire paths."""

    code = "HQ005"
    name = "batched_wire_serialization"
    purpose = "wire serialization is batched through the kernels modules"

    #: loop constructs whose bodies HQ005 scans (comprehensions included:
    #: a genexpr of struct.pack calls is still one pack per element)
    LOOPS = (
        ast.For, ast.While, ast.ListComp, ast.SetComp, ast.GeneratorExp,
    )

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        parts = ctx.path.parts
        if not any(_under(parts, tail) for tail in _BATCHED_WIRE_DIRS):
            return
        if parts[-1] == _KERNELS_FILENAME:
            return  # the batched kernels own the scalar fallbacks
        seen: set[tuple[int, str]] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, self.LOOPS):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, (ast.Call, ast.AugAssign)):
                    continue
                if ctx.suppressed(node.lineno):
                    continue
                if _is_struct_pack(node):
                    key = (node.lineno, "pack")
                    if key not in seen:
                        seen.add(key)
                        yield self.finding(
                            ctx, node.lineno,
                            "per-element struct.pack in a loop — batch it "
                            "through this package's kernels module (one "
                            "pack per vector/result set)",
                        )
                elif (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                    and _builds_bytes(node.value)
                ):
                    key = (node.lineno, "augadd")
                    if key not in seen:
                        seen.add(key)
                        yield self.finding(
                            ctx, node.lineno,
                            "quadratic bytes accumulation (`+=` in a loop) "
                            "— collect parts in a list and b\"\".join them, "
                            "or use the kernels module",
                        )


@register
class EventLoopBlockingRule(LintRule):
    """HQ006: blocking calls on the event-loop thread."""

    code = "HQ006"
    name = "event_loop_blocking"
    purpose = "no blocking socket calls or sleeps on the reactor thread"

    def _banned_for(self, parts: tuple[str, ...]) -> set[str] | None:
        if any(parts[-len(t):] == t for t in _EVENT_LOOP_PROTOCOL_FILES):
            return _PROTOCOL_BANNED_CALLS
        if any(parts[-len(t):] == t for t in _EVENT_LOOP_CORE_FILES):
            return _REACTOR_BANNED_CALLS
        return None

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        parts = ctx.path.parts
        if "src" not in parts:
            return
        banned = self._banned_for(parts)
        if banned is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or ctx.suppressed(node.lineno):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = func.value
            if (
                func.attr == "sleep"
                and isinstance(receiver, ast.Name)
                and receiver.id == "time"
            ):
                yield self.finding(
                    ctx, node.lineno,
                    "time.sleep on the event-loop thread — schedule a "
                    "reactor timer (call_later) or move the work to the "
                    "worker pool",
                )
                continue
            if (
                func.attr == "create_connection"
                and isinstance(receiver, ast.Name)
                and receiver.id == "socket"
            ):
                yield self.finding(
                    ctx, node.lineno,
                    "blocking socket.create_connection on the event-loop "
                    "thread — outbound connects belong on the worker "
                    "pool (the gateway/client layer)",
                )
                continue
            if func.attr in banned:
                yield self.finding(
                    ctx, node.lineno,
                    f"blocking socket call .{func.attr}() on the "
                    f"event-loop thread — protocols receive bytes from "
                    f"the reactor and write through their Transport; "
                    f"blocking work runs on the worker pool",
                )


#: modules that may *route* on partition keys (HQ007)
_SHARD_ROUTING_HOMES = (
    ("repro", "core", "sharded.py"),
    ("repro", "core", "xformer", "distributed.py"),
    ("repro", "core", "metadata.py"),
)
#: modules that may additionally *declare* a partition topology
_SHARD_TOPOLOGY_HOMES = _SHARD_ROUTING_HOMES + (
    ("repro", "workload", "sharding.py"),
)
#: method calls that constitute partition-key routing
_SHARD_ROUTING_CALLS = {"shard_for", "route_rows", "shard_targets"}
#: the partition-topology types
_SHARD_TOPOLOGY_TYPES = {"PartitionMap", "TablePartitioning"}


@register
class ShardRoutingLayeringRule(LintRule):
    """HQ007: partition-key routing outside its designated homes."""

    code = "HQ007"
    name = "shard_routing_layering"
    purpose = "shard routing lives in the distribute pass and ShardedBackend"

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        parts = ctx.path.parts
        if "src" not in parts:
            return  # tests and benches may exercise routing directly
        may_route = any(
            parts[-len(t):] == t for t in _SHARD_ROUTING_HOMES
        )
        may_declare = any(
            parts[-len(t):] == t for t in _SHARD_TOPOLOGY_HOMES
        )
        for node in ast.walk(ctx.tree):
            if ctx.suppressed(getattr(node, "lineno", 0)):
                continue
            if (
                not may_route
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SHARD_ROUTING_CALLS
            ):
                yield self.finding(
                    ctx, node.lineno,
                    f"partition-key routing call .{node.func.attr}() "
                    f"outside repro/core/sharded.py / the distribute "
                    f"pass — route through the planner instead",
                )
            elif not may_declare and isinstance(
                node, (ast.Import, ast.ImportFrom)
            ):
                names = {alias.name for alias in node.names}
                leaked = names & _SHARD_TOPOLOGY_TYPES
                if leaked:
                    yield self.finding(
                        ctx, node.lineno,
                        f"partition-topology type(s) {sorted(leaked)} "
                        f"imported outside the shard-routing/topology "
                        f"modules — servers and serializers must not "
                        f"know the partition layout",
                    )


def _is_numeric_literal(node: ast.expr) -> bool:
    """A bare number (possibly negated): the hard-coded case HQ004 bans.
    Names, attributes and call results are assumed config-driven."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    )


@register
class HardcodedBlockingRule(LintRule):
    """HQ004: literal socket timeouts / time.sleep in server and core."""

    code = "HQ004"
    name = "hardcoded_blocking"
    purpose = "socket timeouts and sleeps in server/core come from config"

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        parts = ctx.path.parts
        if not any(
            _under(parts, tail) for tail in _NO_HARDCODED_BLOCKING_DIRS
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or ctx.suppressed(node.lineno):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                yield self.finding(
                    ctx, node.lineno,
                    "time.sleep in the serving path — blocking belongs in "
                    "repro/wlm (backoff, fault injection), driven by "
                    "config, not inline sleeps",
                )
                continue
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name not in _SOCKET_TIMEOUT_CALLS:
                continue
            candidates = list(node.args) if name == "settimeout" else []
            candidates += [
                kw.value for kw in node.keywords if kw.arg == "timeout"
            ]
            for arg in candidates:
                if _is_numeric_literal(arg):
                    yield self.finding(
                        ctx, node.lineno,
                        f"hard-coded {name} timeout — plumb it from "
                        f"WlmConfig/HyperQConfig or name it as a module "
                        f"constant",
                    )


#: the one module allowed to construct raw threading locks (HQ008)
_LOCK_FACTORY_HOME = ("repro", "analysis", "concurrency", "locks.py")
#: threading constructors that must go through the OrderedLock factory
_RAW_LOCK_CTORS = {"Lock", "RLock", "Condition"}


@register
class LockFactoryRule(LintRule):
    """HQ008: raw threading.Lock construction outside the locks module."""

    code = "HQ008"
    name = "lock_factory"
    purpose = "locks under src/repro come from the OrderedLock factory"

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        parts = ctx.path.parts
        if not _under(parts, ("src", "repro")):
            return
        if parts[-len(_LOCK_FACTORY_HOME):] == _LOCK_FACTORY_HOME:
            return
        from_threading = {
            alias.asname or alias.name
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ImportFrom) and node.module == "threading"
            for alias in node.names
            if alias.name in _RAW_LOCK_CTORS
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or ctx.suppressed(node.lineno):
                continue
            func = node.func
            ctor = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "threading"
                and func.attr in _RAW_LOCK_CTORS
            ):
                ctor = func.attr
            elif isinstance(func, ast.Name) and func.id in from_threading:
                ctor = func.id
            if ctor is not None:
                yield self.finding(
                    ctx, node.lineno,
                    f"raw threading.{ctor}() — use make_lock/make_rlock/"
                    f"make_condition from repro.analysis.concurrency."
                    f"locks so REPRO_LOCKCHECK can instrument it",
                )


#: path tails of the modules HQ009 keeps behind the executor choke point
_EXECUTOR_ONLY_FILES = (
    ("repro", "core", "session.py"),
    ("repro", "core", "crosscompiler.py"),
)


@register
class ExecutorChokePointRule(LintRule):
    """HQ009: backend.run_sql bypassing the cache layer in session code."""

    code = "HQ009"
    name = "executor_choke_point"
    purpose = "session/PT code reaches the backend via QueryExecutor only"

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        parts = ctx.path.parts
        if not any(
            parts[-len(tail):] == tail for tail in _EXECUTOR_ONLY_FILES
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or ctx.suppressed(node.lineno):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "run_sql"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "backend"
            ):
                yield self.finding(
                    ctx, node.lineno,
                    "direct backend.run_sql() from session/PT code — go "
                    "through QueryExecutor (repro/cache/executor.py) so "
                    "the result cache sees the statement and writes bump "
                    "table versions",
                )


#: the only modules allowed to spawn processes (HQ010): the process-shard
#: coordinator and its worker entrypoint
_PROCESS_SPAWN_HOMES = (
    ("repro", "core", "procshard.py"),
    ("repro", "server", "shardworker.py"),
)
#: module roots whose import implies process spawning
_PROCESS_SPAWN_MODULES = {"subprocess", "multiprocessing"}
#: os.* callables that fork/exec directly
_OS_SPAWN_PREFIXES = ("fork", "spawn", "exec", "posix_spawn")


@register
class ProcessSpawnRule(LintRule):
    """HQ010: process spawning outside the procshard coordinator/worker."""

    code = "HQ010"
    name = "process_spawn_confinement"
    purpose = (
        "subprocess/multiprocessing/os.fork stay in repro/core/procshard.py "
        "and repro/server/shardworker.py"
    )

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        parts = ctx.path.parts
        if not _under(parts, ("src", "repro")):
            return
        if any(parts[-len(tail):] == tail for tail in _PROCESS_SPAWN_HOMES):
            return
        for node in ast.walk(ctx.tree):
            if ctx.suppressed(getattr(node, "lineno", 0)):
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root in _PROCESS_SPAWN_MODULES:
                        yield self.finding(
                            ctx, node.lineno,
                            f"import {alias.name} — process spawning is "
                            f"confined to repro/core/procshard.py and "
                            f"repro/server/shardworker.py",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".", 1)[0]
                if root in _PROCESS_SPAWN_MODULES:
                    yield self.finding(
                        ctx, node.lineno,
                        f"from {node.module} import ... — process spawning "
                        f"is confined to repro/core/procshard.py and "
                        f"repro/server/shardworker.py",
                    )
                elif node.module == "os":
                    for alias in node.names:
                        if alias.name.startswith(_OS_SPAWN_PREFIXES):
                            yield self.finding(
                                ctx, node.lineno,
                                f"from os import {alias.name} — process "
                                f"spawning is confined to the procshard "
                                f"modules",
                            )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os"
                    and func.attr.startswith(_OS_SPAWN_PREFIXES)
                ):
                    yield self.finding(
                        ctx, node.lineno,
                        f"os.{func.attr}() — process spawning is confined "
                        f"to repro/core/procshard.py and "
                        f"repro/server/shardworker.py",
                    )
