"""Style rules: the ruff-subset (E, W, F, I) the codebase relies on.

Ported unchanged from the pre-refactor ``mini_lint.py`` monolith; each
check is now one :class:`~lint_rules.LintRule` so projects (and tests)
can enable, disable, or extend them individually.
"""

from __future__ import annotations

import ast
import sys
from typing import Iterable

from lint_rules import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    LintContext,
    LintFinding,
    LintRule,
    register,
)

LINE_LENGTH = 88
FIRST_PARTY = {"repro", "conftest", "lint_rules", "tests"}

_STDLIB = set(sys.stdlib_module_names)


def _section(module: str) -> int:
    """0 = __future__, 1 = stdlib, 2 = third-party, 3 = first-party."""
    root = module.split(".", 1)[0]
    if root == "__future__":
        return 0
    if root in FIRST_PARTY:
        return 3
    if root in _STDLIB:
        return 1
    return 2


@register
class TextRule(LintRule):
    """E501 long lines, W291/W293 trailing whitespace, W292 final newline."""

    code = "E501"
    name = "text"
    purpose = "line length and whitespace hygiene"
    requires_tree = False

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        lines = ctx.text.split("\n")
        for number, line in enumerate(lines, start=1):
            if len(line) > LINE_LENGTH and "noqa" not in line:
                yield LintFinding(
                    "E501",
                    f"line too long ({len(line)} > {LINE_LENGTH})",
                    severity=SEVERITY_ERROR, rule=self.name,
                    path=str(ctx.path), line=number,
                )
            if line != line.rstrip():
                code = "W293" if not line.strip() else "W291"
                yield LintFinding(
                    code, "trailing whitespace",
                    severity=SEVERITY_WARNING, rule=self.name,
                    path=str(ctx.path), line=number,
                )
        if ctx.text and not ctx.text.endswith("\n"):
            yield LintFinding(
                "W292", "no newline at end of file",
                severity=SEVERITY_WARNING, rule=self.name,
                path=str(ctx.path), line=len(lines),
            )


@register
class ComparisonRule(LintRule):
    """E711/E712 constant comparison with ==/!=, E722 bare except."""

    code = "E711"
    name = "comparisons"
    purpose = "identity comparisons and bare excepts"

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                for op, comparator in zip(node.ops, node.comparators):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    if isinstance(comparator, ast.Constant) and (
                        comparator.value is None
                        or comparator.value is True
                        or comparator.value is False
                    ):
                        code = (
                            "E711" if comparator.value is None else "E712"
                        )
                        yield LintFinding(
                            code,
                            f"comparison to {comparator.value!r} "
                            f"with ==/!=",
                            severity=SEVERITY_ERROR, rule=self.name,
                            path=str(ctx.path), line=node.lineno,
                        )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield LintFinding(
                    "E722", "bare except",
                    severity=SEVERITY_ERROR, rule=self.name,
                    path=str(ctx.path), line=node.lineno,
                )


def _imported_names(tree: ast.Module) -> list[tuple[str, str, int]]:
    """(bound name, qualified source, line) for module-level imports."""
    out = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                out.append((bound, alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue  # future imports are effects, never "unused"
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                out.append((bound, alias.name, node.lineno))
    return out


@register
class UnusedImportRule(LintRule):
    """F401: module-level import never used (honours __all__ and noqa)."""

    code = "F401"
    name = "unused_imports"
    purpose = "unused module-level imports"

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        used: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
        exported: set[str] = set()
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if "__all__" in targets and isinstance(
                    node.value, (ast.List, ast.Tuple)
                ):
                    exported = {
                        element.value
                        for element in node.value.elts
                        if isinstance(element, ast.Constant)
                    }
        for bound, source, lineno in _imported_names(ctx.tree):
            if ctx.suppressed(lineno):
                continue
            if bound in used or bound in exported:
                continue
            # redundant aliases (`import x as x`) re-export, not unused
            if source == bound and ctx.path.name == "__init__.py":
                continue
            yield LintFinding(
                "F401", f"{source!r} imported but unused",
                severity=SEVERITY_ERROR, rule=self.name,
                path=str(ctx.path), line=lineno,
            )


@register
class ImportOrderRule(LintRule):
    """I001: approximate ruff/isort ordering on the leading import block."""

    code = "I001"
    name = "import_order"
    purpose = "stdlib -> third-party -> first-party import ordering"

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        block: list[tuple[int, int, str, int]] = []
        for node in ctx.tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                if ctx.suppressed(node.lineno):
                    continue
                if isinstance(node, ast.ImportFrom):
                    module = node.module or "." * node.level
                    style = 1
                else:
                    module = node.names[0].name
                    style = 0
                block.append(
                    (_section(module), style, module.lower(), node.lineno)
                )
            elif not isinstance(node, (ast.Expr, ast.Constant)):
                break  # imports below code are E402 territory
        for before, after in zip(block, block[1:]):
            if before[:3] > after[:3]:
                yield LintFinding(
                    "I001",
                    f"import block out of order "
                    f"({after[2]} after {before[2]})",
                    severity=SEVERITY_ERROR, rule=self.name,
                    path=str(ctx.path), line=after[3],
                )
                break
