"""Pluggable repo-lint rules for ``scripts/mini_lint.py``.

Rules register themselves with :func:`register` at import time — the same
discovery pattern as the Xformer rewrite rules and the qcheck rules in
``src/repro/analysis`` — and :func:`default_rules` returns one fresh
instance of each.  A rule sees one :class:`LintContext` per file and
yields :class:`LintFinding` records; the driver renders them in the
classic ``path:line: CODE message`` shape so the output (and the
exit-status contract) of the pre-refactor monolith is preserved.

``LintFinding`` mirrors ``repro.analysis.framework.Finding`` (code,
message, severity, path, line) so Q-level and Python-level diagnostics
aggregate identically, but this package stays stdlib-only: it must run
in hermetic environments without ``src/`` on the path.
"""

from __future__ import annotations

import ast
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

SEVERITY_INFO = "info"
SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"


@dataclass
class LintFinding:
    """One diagnostic, shaped like ``repro.analysis.framework.Finding``."""

    code: str
    message: str
    severity: str = SEVERITY_ERROR
    rule: str = ""
    path: str = ""
    line: int = -1

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
        }


@dataclass
class LintContext:
    """Everything a rule may consult about the file under analysis.

    ``tree`` is None when the file failed to parse (the driver reports
    E999 itself; tree-based rules are skipped).  ``root`` is the repo
    root, for rules that need sibling files (HQ003 reads the metric-name
    registry source).
    """

    path: Path
    text: str
    tree: ast.Module | None
    noqa: set[int] = field(default_factory=set)
    root: Path | None = None

    def suppressed(self, line: int) -> bool:
        return line in self.noqa


class LintRule:
    """One repo-lint rule; subclasses override :meth:`check`.

    ``requires_tree`` rules are skipped on syntactically broken files.
    """

    code = "HQ000"
    name = "rule"
    purpose = ""
    default_severity = SEVERITY_ERROR
    requires_tree = True
    enabled = True

    def check(self, ctx: LintContext) -> Iterable[LintFinding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, line: int, message: str, **kw):
        kw.setdefault("severity", self.default_severity)
        return LintFinding(
            self.code, message, rule=self.name,
            path=str(ctx.path), line=line, **kw,
        )


_RULES: list[type[LintRule]] = []


def register(rule_class: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the default registry."""
    _RULES.append(rule_class)
    return rule_class


def default_rules() -> list[LintRule]:
    """Fresh instances of every registered rule, in registration order."""
    from lint_rules import layering, style  # noqa: F401  (registration)

    return [rule_class() for rule_class in _RULES]


def noqa_lines(path: Path) -> set[int]:
    """Line numbers carrying a ``# noqa`` comment."""
    noqa: set[int] = set()
    with tokenize.open(path) as handle:
        try:
            for token in tokenize.generate_tokens(handle.readline):
                if token.type == tokenize.COMMENT and "noqa" in token.string:
                    noqa.add(token.start[0])
        except tokenize.TokenError:
            pass
    return noqa


def lint_file(
    path: Path, rules: list[LintRule], root: Path | None = None
) -> Iterator[LintFinding]:
    """Run every enabled rule over one file."""
    text = path.read_text()
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        tree = None
        yield LintFinding(
            "E999", str(exc.msg), rule="syntax",
            path=str(path), line=exc.lineno or 0,
        )
    ctx = LintContext(
        path=path,
        text=text,
        tree=tree,
        noqa=noqa_lines(path) if tree is not None else set(),
        root=root,
    )
    for rule in rules:
        if not rule.enabled:
            continue
        if rule.requires_tree and ctx.tree is None:
            continue
        yield from rule.check(ctx)
