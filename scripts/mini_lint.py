#!/usr/bin/env python
"""Stdlib-only lint fallback approximating the repo's ruff gate.

CI runs ``ruff check .`` (select = E, F, W, I per pyproject.toml); this
driver runs the subset of those rules that the codebase relies on, using
only ``ast`` and ``tokenize``, so the same gate is runnable in hermetic
environments where ruff cannot be installed.  The rules themselves live
in the pluggable ``scripts/lint_rules/`` registry (the same discovery
pattern as the Xformer rewrite rules and the qcheck rules):

* ``lint_rules/style.py`` — E501, E711/E712, E722, W291/W292/W293,
  F401 (honours ``__all__`` and ``# noqa``), I001
* ``lint_rules/layering.py`` — the repo-specific architectural rules:
  HQ001 (Binder/Serializer construction only inside the pipeline),
  HQ002 (no silent ``except: pass`` in server/core),
  HQ003 (metric family names declared in ``repro/obs/names.py``)

See docs/ANALYSIS.md for the rule catalog and how to add a rule.
Exit status is the number of findings, capped at 125 (0 == clean).
"""

from __future__ import annotations

import sys
from pathlib import Path

_SCRIPTS_DIR = Path(__file__).resolve().parent
if str(_SCRIPTS_DIR) not in sys.path:
    sys.path.insert(0, str(_SCRIPTS_DIR))

from lint_rules import default_rules, lint_file  # noqa: E402

CHECK_DIRS = ("src", "tests", "benchmarks", "examples", "scripts")


def main(argv: list[str]) -> int:
    root = _SCRIPTS_DIR.parent
    targets = [Path(arg) for arg in argv] or [
        path
        for directory in CHECK_DIRS
        for path in sorted((root / directory).rglob("*.py"))
    ]
    rules = default_rules()
    findings = []
    for path in targets:
        findings.extend(lint_file(path, rules, root=root))
    for finding in findings:
        print(finding.render())
    print(f"mini-lint: {len(findings)} finding(s) in {len(targets)} file(s)")
    return min(len(findings), 125)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
