#!/usr/bin/env python
"""Stdlib-only lint fallback approximating the repo's ruff gate.

CI runs ``ruff check .`` (select = E, F, W, I per pyproject.toml); this
script re-implements the subset of those rules that the codebase relies
on, using only ``ast`` and ``tokenize``, so the same gate is runnable in
hermetic environments where ruff cannot be installed:

* E501  line too long (> the configured 88 columns)
* E711/E712  comparisons to None/True/False with ==/!=
* E722  bare ``except:``
* W291/W293  trailing whitespace
* W292  missing newline at end of file
* F401  module-level import never used (honours ``__all__`` and
  ``# noqa`` comments)
* I001  import block not sorted (stdlib -> third-party -> first-party,
  straight imports before from-imports, case-insensitive alphabetical)

One repo-specific layering rule rides along (no ruff equivalent):

* HQ001  production code under ``src/`` must not construct ``Binder`` or
  ``Serializer`` directly — those are built only by the translation
  pipeline (``repro/core/pipeline.py``); everything else goes through a
  :class:`TranslationPipeline` instance.  The defining modules and tests
  are exempt.

Exit status is the number of findings (0 == clean).
"""

from __future__ import annotations

import ast
import sys
import tokenize
from pathlib import Path

LINE_LENGTH = 88
FIRST_PARTY = {"repro", "conftest"}
CHECK_DIRS = ("src", "tests", "benchmarks", "examples", "scripts")

_STDLIB = set(sys.stdlib_module_names)


def _section(module: str) -> int:
    """0 = __future__, 1 = stdlib, 2 = third-party, 3 = first-party."""
    root = module.split(".", 1)[0]
    if root == "__future__":
        return 0
    if root in FIRST_PARTY:
        return 3
    if root in _STDLIB:
        return 1
    return 2


def _noqa_lines(path: Path) -> set[int]:
    noqa = set()
    with tokenize.open(path) as handle:
        try:
            for token in tokenize.generate_tokens(handle.readline):
                if token.type == tokenize.COMMENT and "noqa" in token.string:
                    noqa.add(token.start[0])
        except tokenize.TokenError:
            pass
    return noqa


def check_text(path: Path, text: str, findings: list[str]) -> None:
    lines = text.split("\n")
    for number, line in enumerate(lines, start=1):
        if len(line) > LINE_LENGTH and "noqa" not in line:
            findings.append(
                f"{path}:{number}: E501 line too long ({len(line)} > "
                f"{LINE_LENGTH})"
            )
        if line != line.rstrip():
            code = "W293" if not line.strip() else "W291"
            findings.append(f"{path}:{number}: {code} trailing whitespace")
    if text and not text.endswith("\n"):
        findings.append(f"{path}:{len(lines)}: W292 no newline at end of file")


def check_comparisons(path: Path, tree: ast.AST, findings: list[str]) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if isinstance(comparator, ast.Constant) and (
                    comparator.value is None
                    or comparator.value is True
                    or comparator.value is False
                ):
                    code = "E711" if comparator.value is None else "E712"
                    findings.append(
                        f"{path}:{node.lineno}: {code} comparison to "
                        f"{comparator.value!r} with ==/!="
                    )
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(f"{path}:{node.lineno}: E722 bare except")


def _imported_names(tree: ast.Module) -> list[tuple[str, str, int]]:
    """(bound name, qualified source, line) for module-level imports."""
    out = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                out.append((bound, alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue  # future imports are effects, never "unused"
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                out.append((bound, alias.name, node.lineno))
    return out


def check_unused_imports(
    path: Path, tree: ast.Module, noqa: set[int], findings: list[str]
) -> None:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            pass  # the Name at the base of the chain is what counts
    exported: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "__all__" in targets and isinstance(
                node.value, (ast.List, ast.Tuple)
            ):
                exported = {
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                }
    for bound, source, lineno in _imported_names(tree):
        if lineno in noqa:
            continue
        if bound in used or bound in exported:
            continue
        # redundant aliases (`import x as x`) are re-exports, not unused
        if source == bound and path.name == "__init__.py":
            continue
        findings.append(
            f"{path}:{lineno}: F401 {source!r} imported but unused"
        )


def check_import_order(
    path: Path, tree: ast.Module, noqa: set[int], findings: list[str]
) -> None:
    """Approximate ruff/isort I001 on the leading import block."""
    block: list[tuple[int, int, str, int]] = []
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if node.lineno in noqa:
                continue
            if isinstance(node, ast.ImportFrom):
                module = node.module or "." * node.level
                style = 1
            else:
                module = node.names[0].name
                style = 0
            block.append((_section(module), style, module.lower(), node.lineno))
        elif not isinstance(node, (ast.Expr, ast.Constant)):
            break  # imports below code are E402 territory, not ordering
    for before, after in zip(block, block[1:]):
        if before[:3] > after[:3]:
            findings.append(
                f"{path}:{after[3]}: I001 import block out of order "
                f"({after[2]} after {before[2]})"
            )
            break


#: classes only repro/core/pipeline.py may construct (layering rule)
_PIPELINE_ONLY = {"Binder", "Serializer"}
#: modules allowed to construct them: the pipeline choke point plus the
#: modules that define the classes themselves
_PIPELINE_EXEMPT = {
    ("repro", "core", "pipeline.py"),
    ("repro", "core", "serializer.py"),
    ("repro", "core", "algebrizer", "binder.py"),
}


def check_pipeline_layering(
    path: Path, tree: ast.AST, noqa: set[int], findings: list[str]
) -> None:
    """HQ001: Binder/Serializer construction outside the pipeline."""
    parts = path.parts
    if "src" not in parts:
        return  # tests and benches construct the stages directly
    if any(parts[-len(tail):] == tail for tail in _PIPELINE_EXEMPT):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _PIPELINE_ONLY and node.lineno not in noqa:
            findings.append(
                f"{path}:{node.lineno}: HQ001 direct {name}() construction "
                f"outside repro/core/pipeline.py — use the session's "
                f"TranslationPipeline"
            )


def lint_file(path: Path) -> list[str]:
    findings: list[str] = []
    text = path.read_text()
    check_text(path, text, findings)
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        return findings + [f"{path}:{exc.lineno}: E999 {exc.msg}"]
    noqa = _noqa_lines(path)
    check_comparisons(path, tree, findings)
    check_unused_imports(path, tree, noqa, findings)
    check_import_order(path, tree, noqa, findings)
    check_pipeline_layering(path, tree, noqa, findings)
    return findings


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    targets = [Path(arg) for arg in argv] or [
        path
        for directory in CHECK_DIRS
        for path in sorted((root / directory).rglob("*.py"))
    ]
    findings: list[str] = []
    for path in targets:
        findings.extend(lint_file(path))
    for finding in findings:
        print(finding)
    print(f"mini-lint: {len(findings)} finding(s) in {len(targets)} file(s)")
    return min(len(findings), 125)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
