"""The query executor: every backend call from session code goes here.

Lint rule HQ009 forbids session/PT code from calling ``backend.run_sql``
directly — the executor is the one place that knows, for each statement,

* whether the temp-data tier can answer it without any backend at all;
* whether the result cache may serve or fill it (WLM class gating,
  version-keyed lookup, single-flight coalescing);
* which per-table version counters a write must bump so stale cached
  results become unreachable.
"""

from __future__ import annotations

from repro.cache.result_cache import ResultCache
from repro.cache.temptier import TempDataTier
from repro.config import HyperQConfig
from repro.core.metadata import MetadataInterface
from repro.core.pipeline import TranslationResult
from repro.obs import metrics
from repro.sqlengine.executor import ResultSet
from repro.wlm.classifier import QueryClass

RCACHE_BYPASS = metrics.counter(
    "rcache_bypass_total",
    "Statements executed around the result cache (WLM class or tier data)",
)

#: admission classes whose results are safe and worthwhile to cache —
#: repeated dashboard reads.  ``materializing`` writes, ``admin`` never
#: reaches the backend data path at all.
CACHEABLE_CLASSES = frozenset(
    {QueryClass.ANALYTICAL.value, QueryClass.POINT_LOOKUP.value}
)

#: session-private relation prefixes: their names repeat across sessions
#: (``hq_temp_1`` means something different per connection), so results
#: over them must never enter the shared cache
_PRIVATE_PREFIXES = ("hq_temp_", "hq_view_")


class QueryExecutor:
    """Per-session execution choke point over one backend connection.

    The result cache and MDI are deployment-shared; the temp tier is
    session-private (temp relations are).  Both layers are optional —
    with neither configured the executor degrades to a plain
    ``backend.run_sql`` passthrough.
    """

    def __init__(
        self,
        backend,
        mdi: MetadataInterface,
        result_cache: ResultCache | None = None,
        temp_tier: TempDataTier | None = None,
        config: HyperQConfig | None = None,
    ):
        self.backend = backend
        self.mdi = mdi
        self.result_cache = result_cache
        self.temp_tier = temp_tier
        self.config = config or HyperQConfig()

    # -- the translated-statement path ----------------------------------------

    def execute(self, translation: TranslationResult) -> ResultSet:
        """Run one translated statement through the cache layers.

        Order matters: the tier is consulted first (it can answer
        without a backend *or* cache entry), then lazy tier relations
        the statement touches are materialized (the SQL is about to run
        for real), then the result cache, then the backend.
        """
        tier = self.temp_tier
        if tier is not None:
            served = tier.try_serve(translation.sql)
            if served is not None:
                return served
            for relation in tier.lazy_relations(translation.tables):
                tier.ensure_materialized(relation, self.backend)

        qclass = translation.query_class
        if qclass == QueryClass.MATERIALIZING.value:
            # writes bypass the cache and invalidate what they touch
            result = self.backend.run_sql(translation.sql)
            self._record_write(translation.tables)
            return result
        if not self._cacheable(translation):
            RCACHE_BYPASS.inc()
            if self.result_cache is not None:
                self.result_cache.stats.bypasses += 1
            return self.backend.run_sql(translation.sql)
        key = ResultCache.key_for(translation, self.mdi)
        return self.result_cache.get_or_execute(
            key,
            translation.tables,
            lambda: self.backend.run_sql(translation.sql),
        )

    def _cacheable(self, translation: TranslationResult) -> bool:
        if self.result_cache is None or not self.result_cache.enabled:
            return False
        if translation.query_class not in CACHEABLE_CLASSES:
            return False
        for table in translation.tables:
            if table.startswith(_PRIVATE_PREFIXES):
                return False
            # materialized tier relations are still session-private
            if self.temp_tier is not None and self.temp_tier.handle(table):
                return False
        return True

    # -- the raw-SQL path ------------------------------------------------------

    def run_sql(self, sql: str, invalidates=()) -> ResultSet:
        """Execute SQL that did not come out of the translator.

        ``invalidates`` names the relations the statement writes; their
        version counters are bumped and dependent cached results
        dropped.  Reads through this door never consult the cache.
        """
        tier = self.temp_tier
        if tier is not None:
            for relation in list(invalidates):
                if tier.is_lazy(relation):
                    tier.ensure_materialized(relation, self.backend)
        result = self.backend.run_sql(sql)
        if invalidates:
            self._record_write(invalidates)
        return result

    def materialize_temp(self, relation: str) -> None:
        """Force a lazy tier handle into the backend (write paths,
        session-close promotion: the relation must exist for real)."""
        if self.temp_tier is not None:
            self.temp_tier.ensure_materialized(relation, self.backend)

    def _record_write(self, tables) -> None:
        for table in set(tables):
            self.mdi.bump_table_version(table)
        if self.result_cache is not None:
            self.result_cache.on_write(tables)
