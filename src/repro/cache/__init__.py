"""The caching subsystem (docs/CACHING.md, ROADMAP item 5).

Two layers above the translation cache:

* :class:`~repro.cache.result_cache.ResultCache` — a semantic result
  cache keyed on (translated SQL, catalog version, per-table version
  vector, partition fingerprint) that serves full ``ResultSet``\\ s
  without touching the backend;
* :class:`~repro.cache.temptier.TempDataTier` — a DiNoDB-style
  interactive tier that replaces eager temp-table materialization of Q
  variable assignments with lazy handles + positional maps.

Both are driven through :class:`~repro.cache.executor.QueryExecutor`,
the single choke point session code uses to reach the backend (lint
rule HQ009).
"""

from repro.cache.executor import QueryExecutor
from repro.cache.result_cache import ResultCache
from repro.cache.temptier import TempDataTier

__all__ = ["QueryExecutor", "ResultCache", "TempDataTier"]
