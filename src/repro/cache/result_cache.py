"""The semantic result cache (docs/CACHING.md).

At the paper's deployment position — always-on middleware between
thousands of dashboard clients and the warehouse — most traffic is the
*same* analytical statements re-issued verbatim.  The translation cache
(PR 2) already skips parse/bind/xform/serialize for those; this cache
skips the backend too, serving the buffered ``ResultSet`` straight from
memory.

Correctness comes from the key, not from eviction:

* the **catalog version** covers DDL (create/drop anywhere moves it);
* the **per-table version vector** covers DML — every write routed
  through :class:`repro.cache.executor.QueryExecutor` bumps the target
  table's counter on the MDI, which changes the key of every cached
  result that read the table.  A write to ``trades`` therefore makes
  results over ``trades`` unreachable while results over ``quotes``
  keep serving;
* the **partition fingerprint** keeps results from one shard topology
  out of another.

Stale entries made unreachable by a version bump are also dropped
*proactively* through a table -> keys index (memory, not correctness),
and a background sweeper retires TTL-expired entries.  Memory is
byte-accounted: entries charge an estimate of their payload size against
``ResultCacheConfig.max_bytes`` and the least-recently-used entries are
evicted beyond it.

A thundering herd of identical queries is coalesced single-flight: the
first requester executes, the rest block on its flight and share the
snapshot.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.analysis.concurrency.locks import make_lock
from repro.config import ResultCacheConfig
from repro.core.metadata import MetadataInterface
from repro.core.pipeline import TranslationResult
from repro.obs import metrics
from repro.sqlengine.executor import ResultSet

RCACHE_LOOKUPS = metrics.counter(
    "rcache_lookups_total", "Result-cache lookups"
)
RCACHE_HITS = metrics.counter(
    "rcache_hits_total", "Results served from the cache (no backend)"
)
RCACHE_MISSES = metrics.counter(
    "rcache_misses_total", "Result-cache misses (backend executed)"
)
RCACHE_EVICTIONS = metrics.counter(
    "rcache_evictions_total",
    "Entries evicted, labelled reason=bytes|ttl|invalidation",
)
RCACHE_INVALIDATIONS = metrics.counter(
    "rcache_invalidations_total", "Table write-throughs that dropped entries"
)
RCACHE_COALESCED = metrics.counter(
    "rcache_coalesced_total",
    "Requests that shared another request's in-flight execution",
)
RCACHE_SKIPPED_CHEAP = metrics.counter(
    "rcache_skipped_cheap_total",
    "Results not admitted because production was cheaper than min_produce_ms",
)
RCACHE_BYTES = metrics.gauge(
    "rcache_bytes", "Estimated bytes of cached result payloads"
)
RCACHE_ENTRIES = metrics.gauge(
    "rcache_entries", "Entries currently held by the result cache"
)

#: per-object overhead charged per cached cell beyond the value estimate
_CELL_OVERHEAD = 8
#: values sampled per column when estimating payload bytes
_SAMPLE_VALUES = 16


def estimate_result_bytes(columns, column_data) -> int:
    """Cheap payload estimate: per-column sampled value size x rows.

    Exact accounting would getsizeof every cell; sampling the first few
    values per column keeps the fill path O(columns), which is what a
    byte *budget* needs — the estimate only has to be stable and
    monotone in the data volume.
    """
    total = 256  # entry + ResultSet + column metadata overhead
    for data in column_data:
        if not data:
            total += 64
            continue
        sample = data[:_SAMPLE_VALUES]
        avg = sum(sys.getsizeof(value) for value in sample) / len(sample)
        total += int((avg + _CELL_OVERHEAD) * len(data)) + 64
    return total


@dataclass
class _Entry:
    columns: list
    column_data: list[list]
    command: str
    nbytes: int
    tables: tuple[str, ...]
    stamp: float


class _Flight:
    """One in-flight execution other requesters may wait on."""

    __slots__ = ("done", "error", "filled")

    def __init__(self):
        self.done = threading.Event()
        self.error: Exception | None = None
        self.filled = False


@dataclass
class ResultCacheStats:
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    coalesced: int = 0
    bypasses: int = 0
    skipped_cheap: int = 0
    expirations: int = 0
    entries: int = 0
    bytes: int = 0

    def as_rows(self) -> list[tuple[str, int]]:
        return [(name, int(value)) for name, value in vars(self).items()]


class ResultCache:
    """Byte-bounded, version-keyed LRU over full query results.

    Shared across every session of a deployment (like the translation
    cache): :class:`repro.core.platform.HyperQ` and
    :class:`repro.server.hyperq_server.HyperQServer` build one and pass
    it to each session's :class:`~repro.cache.executor.QueryExecutor`.
    """

    def __init__(self, config: ResultCacheConfig | None = None):
        self.config = config or ResultCacheConfig()
        self._lock = make_lock("cache.result_cache")
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._flights: dict[tuple, _Flight] = {}
        #: table name -> keys of entries that read it (proactive drop)
        self._by_table: dict[str, set[tuple]] = {}
        self._bytes = 0
        self.stats = ResultCacheStats()
        self._sweeper: threading.Thread | None = None
        self._stop_sweeper = threading.Event()

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    # -- the key ---------------------------------------------------------------

    @staticmethod
    def key_for(
        translation: TranslationResult, mdi: MetadataInterface
    ) -> tuple:
        """The semantic identity of one read's result.

        The translated SQL is the normalized query fingerprint (two Q
        spellings that translate identically share an entry); catalog
        version, the per-table version vector over the statement's read
        set, and the partition fingerprint pin it to the data state.
        """
        return (
            translation.sql,
            translation.shape,
            tuple(translation.keys),
            mdi.catalog_version(),
            mdi.table_version_vector(translation.tables),
            mdi.partition_fingerprint(),
        )

    # -- read path -------------------------------------------------------------

    def fetch(self, key: tuple) -> ResultSet | None:
        """A fresh ``ResultSet`` view of the cached payload, or None."""
        if not self.config.enabled:
            return None
        self.stats.lookups += 1
        RCACHE_LOOKUPS.inc()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                self._drop(key, reason="ttl")
                entry = None
            if entry is None:
                self.stats.misses += 1
                RCACHE_MISSES.inc()
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            RCACHE_HITS.inc()
            return self._view(entry)

    def get_or_execute(self, key: tuple, tables, producer) -> ResultSet:
        """Serve ``key`` from cache, coalescing concurrent fills.

        The first requester of an absent key becomes the flight leader
        and runs ``producer()`` (the backend execution) *outside* the
        cache lock; concurrent requesters of the same key block on the
        flight and share the snapshot.  A failed leader wakes the
        waiters, and the first of them retries as the new leader (the
        error itself propagates only to the leader).
        """
        if not self.config.enabled:
            return producer()
        while True:
            cached = self.fetch(key)
            if cached is not None:
                return cached
            with self._lock:
                flight = self._flights.get(key)
                if flight is None:
                    flight = _Flight()
                    self._flights[key] = flight
                    leader = True
                else:
                    leader = False
            if not leader:
                flight.done.wait(self.config.flight_timeout)
                if flight.filled:
                    self.stats.coalesced += 1
                    RCACHE_COALESCED.inc()
                # leader failed (or timed out): loop to retry as leader
                continue
            started = time.perf_counter()
            try:
                result = producer()
            except Exception as exc:
                with self._lock:
                    self._flights.pop(key, None)
                flight.error = exc
                flight.done.set()
                raise
            produce_ms = (time.perf_counter() - started) * 1000.0
            if self._admit(produce_ms):
                self.fill(key, tables, result)
                flight.filled = True
            else:
                self.stats.skipped_cheap += 1
                RCACHE_SKIPPED_CHEAP.inc()
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
            return result

    def _admit(self, produce_ms: float) -> bool:
        """Size-aware admission: a result cheaper to produce than a cache
        probe only churns the LRU, so productions under ``min_produce_ms``
        are served but not cached (0 admits everything)."""
        floor = self.config.min_produce_ms
        return floor <= 0 or produce_ms >= floor

    # -- fill path -------------------------------------------------------------

    def fill(self, key: tuple, tables, result: ResultSet) -> None:
        """Snapshot ``result`` under ``key``.

        The payload is deep-copied at column granularity: engine results
        can alias live table rows and downstream code rebinds ``.rows``
        for LIMIT/sort, so a cached entry must own its data.  Hits hand
        out fresh views (:meth:`_view`) for the same reason.
        """
        if not self.config.enabled:
            return
        columns = list(result.columns)
        column_data = [list(col) for col in result.column_data]
        nbytes = estimate_result_bytes(columns, column_data)
        entry = _Entry(
            columns=columns,
            column_data=column_data,
            command=result.command,
            nbytes=nbytes,
            tables=tuple(tables),
            stamp=time.monotonic(),
        )
        with self._lock:
            if key in self._entries:
                self._drop(key, reason="bytes", count_eviction=False)
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._bytes += nbytes
            for table in entry.tables:
                self._by_table.setdefault(table, set()).add(key)
            while self._bytes > self.config.max_bytes and self._entries:
                oldest = next(iter(self._entries))
                if oldest == key and len(self._entries) == 1:
                    # a single result larger than the budget is not
                    # worth caching at all
                    self._drop(oldest, reason="bytes")
                    break
                self._drop(oldest, reason="bytes")
            self._publish_gauges()
        self._ensure_sweeper()

    # -- invalidation ----------------------------------------------------------

    def on_write(self, tables) -> None:
        """Drop every entry that read any of ``tables``.

        The version bump on the MDI already made those keys unreachable
        (correctness); this reclaims their memory immediately.
        """
        dropped = 0
        with self._lock:
            for table in set(tables):
                for key in list(self._by_table.get(table, ())):
                    self._drop(key, reason="invalidation")
                    dropped += 1
            if dropped:
                self._publish_gauges()
        if dropped:
            self.stats.invalidations += dropped
            RCACHE_INVALIDATIONS.inc(dropped)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_table.clear()
            self._bytes = 0
            self._publish_gauges()

    # -- admin snapshot --------------------------------------------------------

    def snapshot(self) -> ResultCacheStats:
        """Stats for the ``rcache[]`` admin command / tests."""
        with self._lock:
            self.stats.entries = len(self._entries)
            self.stats.bytes = self._bytes
        return self.stats

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _view(entry: _Entry) -> ResultSet:
        """A fresh ResultSet over copied column lists: callers may sort,
        slice, or rebind rows without corrupting the cached payload."""
        return ResultSet.from_columns(
            list(entry.columns),
            [list(col) for col in entry.column_data],
            command=entry.command,
        )

    def _expired(self, entry: _Entry) -> bool:
        ttl = self.config.ttl_seconds
        return ttl > 0 and (time.monotonic() - entry.stamp) > ttl

    def _drop(self, key: tuple, reason: str, count_eviction: bool = True) -> None:
        """Remove one entry (caller holds the lock)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self._bytes -= entry.nbytes
        for table in entry.tables:
            keys = self._by_table.get(table)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_table[table]
        if count_eviction:
            self.stats.evictions += 1
            RCACHE_EVICTIONS.inc(reason=reason)

    def _publish_gauges(self) -> None:
        RCACHE_ENTRIES.set(len(self._entries))
        RCACHE_BYTES.set(self._bytes)

    # -- the TTL sweeper thread ------------------------------------------------

    def _ensure_sweeper(self) -> None:
        """Start the background TTL sweeper on first fill (lazily, so a
        cache that never holds data never owns a thread)."""
        if self.config.sweep_interval <= 0 or self.config.ttl_seconds <= 0:
            return
        with self._lock:
            if self._sweeper is not None and self._sweeper.is_alive():
                return
            self._sweeper = threading.Thread(
                target=self._sweep_loop,
                name="rcache-sweeper",
                daemon=True,
            )
            self._sweeper.start()

    def _sweep_loop(self) -> None:
        """Worker thread: retire TTL-expired entries on a fixed cadence.

        Seeded as a worker role in the concurrency static analysis
        (``repro.analysis.concurrency.callgraph.STRUCTURAL_SEEDS``) so
        lock-discipline checks CC001-CC004 cover this thread too.
        """
        while not self._stop_sweeper.wait(self.config.sweep_interval):
            self.sweep()

    def sweep(self) -> int:
        """One sweep pass; returns the number of entries retired."""
        retired = 0
        with self._lock:
            for key in [
                key for key, entry in self._entries.items()
                if self._expired(entry)
            ]:
                self._drop(key, reason="ttl")
                retired += 1
            if retired:
                self.stats.expirations += retired
                self._publish_gauges()
        return retired

    def close(self) -> None:
        """Stop the sweeper (tests; production relies on daemon exit)."""
        self._stop_sweeper.set()
