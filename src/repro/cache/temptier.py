"""The interactive temp-data tier (DiNoDB-style, docs/CACHING.md).

Q variable assignments used to eagerly run ``CREATE TEMPORARY TABLE
hq_temp_N AS <select>`` — a full backend write — before the variable was
ever read.  Following DiNoDB's positional-map idea for ad-hoc queries on
temporary data, the tier instead:

1. runs the *defining SELECT* at assignment time (so the snapshot has
   exactly the eager CTAS's semantics: later DML on the source tables
   cannot leak into the variable) and keeps the columnar snapshot in
   Hyper-Q memory — the backend table write is deferred;
2. builds a **positional map** on first touch: per-column min/max zone
   metadata over fixed-size row blocks;
3. serves the interactive access patterns — full scans, point lookups,
   filtered range scans, projections, ``count`` — straight from the
   snapshot, pruning blocks whose zones cannot match;
4. falls back to full materialization (loading the snapshot into the
   backend, never re-running the SELECT) the first time an access
   pattern needs real SQL — joins, grouping, anything the matcher does
   not recognize — after which the handle is a passthrough.

The SQL matcher is deliberately conservative: it recognizes only the
exact shapes Hyper-Q's own serializer emits over a temp relation, and
anything else triggers materialization.  Unrecognized never means
wrong — only slower.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.analysis.concurrency.locks import make_lock
from repro.config import TempTierConfig
from repro.core.metadata import TableMeta
from repro.obs import metrics
from repro.sqlengine.catalog import Column
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import SqlType

TEMPTIER_HANDLES = metrics.gauge(
    "temptier_handles", "Lazy temp-data handles currently registered"
)
TEMPTIER_SERVED = metrics.counter(
    "temptier_served_total",
    "Queries answered from positional maps, labelled kind=scan|lookup|count",
)
TEMPTIER_FALLBACKS = metrics.counter(
    "temptier_fallbacks_total",
    "Handles materialized to the backend for an unmatched access pattern",
)
TEMPTIER_MAP_BUILDS = metrics.counter(
    "temptier_map_builds_total", "Positional maps built (first touch)"
)
TEMPTIER_BLOCKS_PRUNED = metrics.counter(
    "temptier_blocks_pruned_total",
    "Zone-metadata blocks skipped during tier scans",
)


# ---------------------------------------------------------------------------
# Positional map
# ---------------------------------------------------------------------------


@dataclass
class _Zone:
    """Min/max over one block of one column (None values excluded)."""

    low: object = None
    high: object = None
    has_null: bool = False


class PositionalMap:
    """Per-column block offsets + min/max zone metadata.

    Built once, on a handle's first touch, in a single pass over the
    snapshot.  ``candidate_blocks`` answers which blocks may contain
    rows satisfying ``column <op> literal``; everything outside is
    pruned without looking at a row.
    """

    def __init__(self, column_data: list[list], block_rows: int):
        self.block_rows = max(1, int(block_rows))
        rows = len(column_data[0]) if column_data else 0
        self.block_count = (rows + self.block_rows - 1) // self.block_rows
        self.zones: list[list[_Zone]] = []
        for data in column_data:
            zones = []
            for start in range(0, rows, self.block_rows):
                zone = _Zone()
                for value in data[start:start + self.block_rows]:
                    if value is None:
                        zone.has_null = True
                        continue
                    if zone.low is None or value < zone.low:
                        zone.low = value
                    if zone.high is None or value > zone.high:
                        zone.high = value
                zones.append(zone)
            self.zones.append(zones)

    def candidate_blocks(self, column: int, op: str, literal) -> set[int]:
        """Blocks whose zone could hold a matching row."""
        candidates = set()
        for index, zone in enumerate(self.zones[column]):
            if zone.low is None:  # all-NULL block
                continue
            try:
                if op in ("=", "IS NOT DISTINCT FROM"):
                    keep = zone.low <= literal <= zone.high
                elif op == ">":
                    keep = zone.high > literal
                elif op == ">=":
                    keep = zone.high >= literal
                elif op == "<":
                    keep = zone.low < literal
                elif op == "<=":
                    keep = zone.low <= literal
                else:  # <> and anything exotic: zones cannot prune
                    keep = True
            except TypeError:
                keep = True  # cross-type comparison: never prune
            if keep:
                candidates.add(index)
        return candidates


# ---------------------------------------------------------------------------
# The serializer-shape matcher
# ---------------------------------------------------------------------------

_OUTER_RE = re.compile(
    r'^SELECT \* FROM \((?P<inner>.*)\) AS hq_t\d+ '
    r'ORDER BY "ordcol" NULLS FIRST$',
    re.DOTALL,
)
_BASE_RE = re.compile(
    r'^SELECT (?P<cols>"[^"]+"(?:, "[^"]+")*) FROM "(?P<rel>[^"]+)"$'
)
_FILTER_RE = re.compile(
    r'^SELECT \* FROM \((?P<inner>.*)\) AS hq_t\d+ WHERE \((?P<pred>.*)\)$',
    re.DOTALL,
)
_PROJECT_RE = re.compile(
    r'^SELECT (?P<aliases>"[^"]+" AS "[^"]+"(?:, "[^"]+" AS "[^"]+")*) '
    r'FROM \((?P<inner>.*)\) AS hq_t\d+$',
    re.DOTALL,
)
_COUNT_RE = re.compile(
    r'^SELECT count\(\*\) AS "count" FROM '
    r'\(SELECT 1 FROM "(?P<rel>[^"]+)"\) AS hq_t\d+$'
)
_ATOM_RE = re.compile(
    r'^"(?P<col>[^"]+)" '
    r'(?P<op>IS NOT DISTINCT FROM|>=|<=|<>|=|>|<) (?P<lit>.+)$',
    re.DOTALL,
)
_STRING_LIT_RE = re.compile(r"^'(?P<body>(?:[^']|'')*)'::varchar$")
_INT_LIT_RE = re.compile(r'^-?\d+$')
_FLOAT_LIT_RE = re.compile(r'^-?\d+\.\d+(?:[eE][+-]?\d+)?$')


@dataclass
class MatchedQuery:
    """A recognized serializer shape over one tier relation."""

    relation: str
    #: predicate conjuncts as (column, op, literal) triples
    predicates: list[tuple[str, str, object]] = field(default_factory=list)
    #: output column names in order; None means the base column order
    projection: list[str] | None = None
    #: ``count select from t`` — answer is the row count
    count_only: bool = False


def _split_conjuncts(pred: str) -> list[str] | None:
    """Split ``(a) AND (b) AND (c)`` at paren depth zero; None if the
    text is not a pure AND-conjunction."""
    parts = []
    depth = 0
    start = 0
    i = 0
    while i < len(pred):
        ch = pred[i]
        if ch == "'":
            end = pred.find("'", i + 1)
            while end != -1 and pred[end:end + 2] == "''":
                end = pred.find("'", end + 2)
            if end == -1:
                return None
            i = end + 1
            continue
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif depth == 0 and pred.startswith(" AND ", i):
            parts.append(pred[start:i])
            start = i + 5
            i += 5
            continue
        i += 1
    parts.append(pred[start:])
    return parts


def _strip_parens(text: str) -> str:
    text = text.strip()
    while text.startswith("(") and text.endswith(")"):
        depth = 0
        balanced = True
        for i, ch in enumerate(text):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0 and i != len(text) - 1:
                    balanced = False
                    break
        if not balanced:
            return text
        text = text[1:-1].strip()
    return text


def _parse_literal(text: str):
    """Supported literal forms; raises ValueError on anything else."""
    text = text.strip()
    if _INT_LIT_RE.match(text):
        return int(text)
    if _FLOAT_LIT_RE.match(text):
        return float(text)
    if text == "TRUE":
        return True
    if text == "FALSE":
        return False
    string = _STRING_LIT_RE.match(text)
    if string:
        return string.group("body").replace("''", "'")
    raise ValueError(f"unsupported literal {text!r}")


def _parse_predicates(pred: str) -> list[tuple[str, str, object]] | None:
    conjuncts = _split_conjuncts(pred.strip())
    if conjuncts is None:
        return None
    flat: list[tuple[str, str, object]] = []
    queue = [c for c in conjuncts]
    while queue:
        part = _strip_parens(queue.pop(0))
        inner = _split_conjuncts(part)
        if inner is not None and len(inner) > 1:
            queue.extend(inner)
            continue
        atom = _ATOM_RE.match(part)
        if atom is None:
            return None
        try:
            literal = _parse_literal(atom.group("lit"))
        except ValueError:
            return None
        flat.append((atom.group("col"), atom.group("op"), literal))
    return flat


def match_tier_sql(sql: str) -> MatchedQuery | None:
    """Recognize one of the serializer's shapes over a single relation.

    Returns None for anything but the exact scan / filter / projection /
    count patterns Hyper-Q emits for interactive reads — the caller then
    falls back to materialization.
    """
    count = _COUNT_RE.match(sql)
    if count is not None:
        return MatchedQuery(relation=count.group("rel"), count_only=True)
    outer = _OUTER_RE.match(sql)
    if outer is None:
        return None
    node = outer.group("inner")
    projection: list[str] | None = None
    predicates: list[tuple[str, str, object]] = []
    for __ in range(4):  # project -> filter -> base is the deepest stack
        base = _BASE_RE.match(node)
        if base is not None:
            matched = MatchedQuery(
                relation=base.group("rel"),
                predicates=predicates,
                projection=projection,
            )
            return matched
        project = _PROJECT_RE.match(node)
        if project is not None:
            if projection is not None:
                return None  # two projection layers: not our shape
            names = []
            for alias in project.group("aliases").split(", "):
                m = re.match(r'^"([^"]+)" AS "([^"]+)"$', alias)
                if m is None or m.group(1) != m.group(2):
                    return None  # renames/expressions: real SQL needed
                names.append(m.group(1))
            projection = names
            node = project.group("inner")
            continue
        filt = _FILTER_RE.match(node)
        if filt is not None:
            if predicates:
                return None
            parsed = _parse_predicates(filt.group("pred"))
            if parsed is None:
                return None
            predicates = parsed
            node = filt.group("inner")
            continue
        return None
    return None


# ---------------------------------------------------------------------------
# Handles and the tier
# ---------------------------------------------------------------------------

LAZY = "lazy"
MATERIALIZED = "materialized"


class TempHandle:
    """One lazily-materialized temp relation: snapshot + positional map."""

    def __init__(
        self,
        relation: str,
        ddl_sql: str,
        meta: TableMeta,
        columns: list[Column],
        column_data: list[list],
    ):
        self.relation = relation
        self.ddl_sql = ddl_sql
        self.meta = meta
        self.columns = columns
        self.column_data = column_data
        self.state = LAZY
        self.map: PositionalMap | None = None
        self.touches = 0

    @property
    def row_count(self) -> int:
        return len(self.column_data[0]) if self.column_data else 0

    def column_index(self, name: str) -> int | None:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        return None


class TempDataTier:
    """Per-session registry of lazy temp-data handles.

    Session-scoped on purpose: temp relations are session-private in PG
    (and ``hq_temp_N`` names repeat across sessions), so tier data must
    never be shared the way the result cache is.
    """

    def __init__(self, config: TempTierConfig | None = None):
        self.config = config or TempTierConfig()
        self._lock = make_lock("cache.temp_tier")
        self._handles: dict[str, TempHandle] = {}
        self.served = 0
        self.fallbacks = 0
        self.map_builds = 0
        self.blocks_pruned = 0

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def __len__(self) -> int:
        with self._lock:
            return len(self._handles)

    # -- registration ----------------------------------------------------------

    def register(
        self,
        relation: str,
        ddl_sql: str,
        meta: TableMeta,
        snapshot: ResultSet,
    ) -> TempHandle:
        """Adopt the defining SELECT's result as a lazy handle.

        The payload is deep-copied at column granularity — engine
        results can alias live table rows, and the snapshot must be
        immutable from here on.
        """
        handle = TempHandle(
            relation,
            ddl_sql,
            meta,
            list(snapshot.columns),
            [list(col) for col in snapshot.column_data],
        )
        with self._lock:
            self._handles[relation] = handle
            TEMPTIER_HANDLES.set(len(self._handles))
        return handle

    def handle(self, relation: str) -> TempHandle | None:
        with self._lock:
            return self._handles.get(relation)

    def is_lazy(self, relation: str) -> bool:
        handle = self.handle(relation)
        return handle is not None and handle.state == LAZY

    def lazy_relations(self, tables) -> list[str]:
        """The subset of ``tables`` currently held as lazy handles."""
        return [t for t in tables if self.is_lazy(t)]

    def lazy_names(self) -> list[str]:
        """Every relation currently held as a lazy handle."""
        with self._lock:
            return [
                r for r, h in self._handles.items() if h.state == LAZY
            ]

    def discard(self, relation: str) -> bool:
        """Forget a handle (session close); True if it was still lazy —
        the caller may then skip the backend DROP entirely."""
        with self._lock:
            handle = self._handles.pop(relation, None)
            TEMPTIER_HANDLES.set(len(self._handles))
        return handle is not None and handle.state == LAZY

    # -- the read path ---------------------------------------------------------

    def try_serve(self, sql: str) -> ResultSet | None:
        """Answer ``sql`` from a lazy handle's positional map, or None.

        None means the caller must materialize and run real SQL; a
        non-None return is byte-equivalent to what the backend would
        have produced for the same statement.
        """
        if not self.config.enabled:
            return None
        matched = match_tier_sql(sql)
        if matched is None:
            return None
        handle = self.handle(matched.relation)
        if handle is None or handle.state != LAZY:
            return None
        handle.touches += 1
        if matched.count_only:
            self.served += 1
            TEMPTIER_SERVED.inc(kind="count")
            return ResultSet(
                [Column("count", SqlType.BIGINT)],
                [(handle.row_count,)],
            )
        return self._serve_scan(handle, matched)

    def _serve_scan(
        self, handle: TempHandle, matched: MatchedQuery
    ) -> ResultSet | None:
        # resolve every referenced column before touching data
        out_names = matched.projection or [c.name for c in handle.columns]
        out_indexes = []
        for name in out_names:
            index = handle.column_index(name)
            if index is None:
                return None
            out_indexes.append(index)
        pred_plan = []
        for name, op, literal in matched.predicates:
            index = handle.column_index(name)
            if index is None:
                return None
            pred_plan.append((index, op, literal))

        pmap = self._map_for(handle)
        blocks: set[int] | None = None
        for index, op, literal in pred_plan:
            candidates = pmap.candidate_blocks(index, op, literal)
            blocks = candidates if blocks is None else (blocks & candidates)
        if blocks is None:
            blocks = set(range(pmap.block_count))
        pruned = pmap.block_count - len(blocks)
        if pruned:
            self.blocks_pruned += pruned
            TEMPTIER_BLOCKS_PRUNED.inc(pruned)

        data = handle.column_data
        out_data: list[list] = [[] for __ in out_indexes]
        block_rows = pmap.block_rows
        for block in sorted(blocks):
            start = block * block_rows
            stop = min(start + block_rows, handle.row_count)
            for row in range(start, stop):
                if all(
                    _matches(data[index][row], op, literal)
                    for index, op, literal in pred_plan
                ):
                    for slot, index in enumerate(out_indexes):
                        out_data[slot].append(data[index][row])
        self.served += 1
        TEMPTIER_SERVED.inc(kind="lookup" if pred_plan else "scan")
        return ResultSet.from_columns(
            [handle.columns[i] for i in out_indexes], out_data
        )

    def _map_for(self, handle: TempHandle) -> PositionalMap:
        if handle.map is None:
            handle.map = PositionalMap(
                handle.column_data, self.config.block_rows
            )
            self.map_builds += 1
            TEMPTIER_MAP_BUILDS.inc()
        return handle.map

    # -- the fallback path -----------------------------------------------------

    def ensure_materialized(self, relation: str, backend) -> None:
        """Write a lazy handle's snapshot into the backend.

        The *snapshot* is loaded — never the defining SELECT re-run —
        so DML that landed on the source tables after the assignment
        cannot change the variable's contents (the eager-CTAS
        semantics the differential suite pins down).
        """
        handle = self.handle(relation)
        if handle is None or handle.state != LAZY:
            return
        rows = [list(row) for row in zip(*handle.column_data)]
        loader = _find_loader(backend)
        if loader is not None:
            # sharded topology: replicate like _broadcast_ctas does
            loader(relation, list(handle.columns), rows)
        else:
            engine = _find_engine(backend)
            if engine is not None:
                engine.create_table_from_columns(
                    relation, list(handle.columns), rows, temporary=True
                )
            else:
                # remote backend without a data plane: replay the DDL
                # (only divergent if DML raced the assignment window)
                backend.run_sql(handle.ddl_sql)
        handle.state = MATERIALIZED
        handle.column_data = []
        handle.map = None
        self.fallbacks += 1
        TEMPTIER_FALLBACKS.inc()

    # -- admin snapshot --------------------------------------------------------

    def snapshot(self) -> list[tuple[str, int]]:
        with self._lock:
            handles = len(self._handles)
            lazy = sum(
                1 for h in self._handles.values() if h.state == LAZY
            )
        return [
            ("handles", handles),
            ("lazy", lazy),
            ("served", self.served),
            ("fallbacks", self.fallbacks),
            ("map_builds", self.map_builds),
            ("blocks_pruned", self.blocks_pruned),
        ]


def _matches(value, op: str, literal) -> bool:
    """SQL comparison semantics for the supported predicate atoms."""
    if op == "IS NOT DISTINCT FROM":
        return value == literal
    if value is None:
        return False
    try:
        if op == "=":
            return value == literal
        if op == "<>":
            return value != literal
        if op == ">":
            return value > literal
        if op == ">=":
            return value >= literal
        if op == "<":
            return value < literal
        if op == "<=":
            return value <= literal
    except TypeError:
        return False
    return False


def _find_loader(backend):
    """``load_table`` bound method of a sharded backend, unwrapped."""
    node = backend
    for __ in range(8):
        if node is None:
            return None
        if getattr(node, "is_sharded", False):
            return node.load_table
        node = getattr(node, "inner", None)
    return None


def _find_engine(backend):
    from repro.core.sharded import _find_engine as find

    return find(backend)
