"""PostgreSQL v3 protocol messages.

"A PG v3 message starts with a single byte denoting message type,
followed by four bytes for message length" (paper Section 4.2); the
StartupMessage alone has no type byte.  This module defines typed
dataclasses for the subset Hyper-Q's gateway and the mini PG server
exchange: startup, authentication (cleartext / MD5 / Kerberos-style GSS),
simple query, row streaming, completion, and errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

PROTOCOL_VERSION = 196608  # 3.0

#: PostgreSQL type OIDs for the types the engine produces
TYPE_OIDS = {
    "boolean": 16,
    "bigint": 20,
    "smallint": 21,
    "integer": 23,
    "text": 25,
    "real": 700,
    "double precision": 701,
    "char": 1042,
    "varchar": 1043,
    "date": 1082,
    "time": 1083,
    "timestamp": 1114,
    "interval": 1186,
    "numeric": 1700,
    "uuid": 2950,
    "null": 25,
}


# -- frontend (client -> server) ---------------------------------------------


@dataclass
class StartupMessage:
    user: str
    database: str = "postgres"
    options: dict[str, str] = field(default_factory=dict)


@dataclass
class PasswordMessage:
    password: str  # cleartext, or md5-hex digest, or GSS token


@dataclass
class Query:
    sql: str


@dataclass
class Terminate:
    pass


# -- backend (server -> client) ------------------------------------------------


@dataclass
class AuthenticationRequest:
    """code 0=ok, 3=cleartext password, 5=md5 (with salt), 7=GSS."""

    code: int
    salt: bytes = b""


@dataclass
class ParameterStatus:
    name: str
    value: str


@dataclass
class BackendKeyData:
    pid: int
    secret: int


@dataclass
class ReadyForQuery:
    status: str = "I"  # Idle / Transaction / Error


@dataclass
class FieldDescription:
    name: str
    type_oid: int
    type_size: int = -1
    table_oid: int = 0
    column_attr: int = 0
    type_modifier: int = -1
    format_code: int = 0  # text


@dataclass
class RowDescription:
    fields: list[FieldDescription]


@dataclass
class DataRow:
    values: list[bytes | None]  # text-format cells, None = NULL


@dataclass
class CommandComplete:
    tag: str


@dataclass
class EmptyQueryResponse:
    pass


@dataclass
class ErrorResponse:
    severity: str = "ERROR"
    code: str = "XX000"
    message: str = ""


FrontendMessage = StartupMessage | PasswordMessage | Query | Terminate
BackendMessage = (
    AuthenticationRequest
    | ParameterStatus
    | BackendKeyData
    | ReadyForQuery
    | RowDescription
    | DataRow
    | CommandComplete
    | EmptyQueryResponse
    | ErrorResponse
)
