"""Byte-level encoding/decoding of PG v3 messages.

Result-set traffic (DataRow frames) goes through the batched kernels in
:mod:`repro.pgwire.kernels`; this module owns the per-message control
traffic, the framing metrics, and :class:`PgFrameStream` — the buffered
frame reader both the gateway and the PG-wire server read through.
"""

from __future__ import annotations

import struct

from repro.errors import ProtocolError
from repro.obs import metrics
from repro.pgwire import kernels
from repro.pgwire import messages as m
from repro.server.common import BufferedSocketReader

#: PG v3 wire telemetry: bytes and messages by direction (out = encoded
#: by this process, in = read off the socket) and type byte
PGWIRE_BYTES = metrics.counter("pgwire_bytes_total", "PG v3 bytes on the wire")
PGWIRE_MESSAGES = metrics.counter(
    "pgwire_messages_total", "PG v3 messages encoded/decoded"
)


def _cstr(text: str) -> bytes:
    return text.encode("utf-8") + b"\x00"


def _with_frame(type_byte: bytes, body: bytes) -> bytes:
    framed = type_byte + struct.pack(">I", len(body) + 4) + body
    PGWIRE_BYTES.inc(len(framed), direction="out")
    PGWIRE_MESSAGES.inc(type=type_byte.decode("ascii"), direction="out")
    return framed


# -- frontend encoding ----------------------------------------------------------


def encode_startup(message: m.StartupMessage) -> bytes:
    parts = [
        struct.pack(">I", m.PROTOCOL_VERSION),
        _cstr("user"), _cstr(message.user),
        _cstr("database"), _cstr(message.database),
    ]
    for key, value in message.options.items():
        parts.append(_cstr(key))
        parts.append(_cstr(value))
    parts.append(b"\x00")
    body = b"".join(parts)
    framed = struct.pack(">I", len(body) + 4) + body
    PGWIRE_BYTES.inc(len(framed), direction="out")
    PGWIRE_MESSAGES.inc(type="startup", direction="out")
    return framed


def encode_frontend(message: m.FrontendMessage) -> bytes:
    if isinstance(message, m.StartupMessage):
        return encode_startup(message)
    if isinstance(message, m.PasswordMessage):
        return _with_frame(b"p", _cstr(message.password))
    if isinstance(message, m.Query):
        return _with_frame(b"Q", _cstr(message.sql))
    if isinstance(message, m.Terminate):
        return _with_frame(b"X", b"")
    raise ProtocolError(f"cannot encode frontend {type(message).__name__}")


# -- backend encoding ----------------------------------------------------------


def encode_backend(message: m.BackendMessage) -> bytes:
    if isinstance(message, m.AuthenticationRequest):
        body = struct.pack(">I", message.code)
        if message.code == 5:
            body += message.salt[:4].ljust(4, b"\x00")
        return _with_frame(b"R", body)
    if isinstance(message, m.ParameterStatus):
        return _with_frame(b"S", _cstr(message.name) + _cstr(message.value))
    if isinstance(message, m.BackendKeyData):
        return _with_frame(b"K", struct.pack(">II", message.pid, message.secret))
    if isinstance(message, m.ReadyForQuery):
        return _with_frame(b"Z", message.status.encode("ascii")[:1])
    if isinstance(message, m.RowDescription):
        return _with_frame(b"T", kernels.pack_row_description(message.fields))
    if isinstance(message, m.DataRow):
        framed = kernels.pack_data_row(message.values)
        PGWIRE_BYTES.inc(len(framed), direction="out")
        PGWIRE_MESSAGES.inc(type="D", direction="out")
        return framed
    if isinstance(message, m.CommandComplete):
        return _with_frame(b"C", _cstr(message.tag))
    if isinstance(message, m.EmptyQueryResponse):
        return _with_frame(b"I", b"")
    if isinstance(message, m.ErrorResponse):
        body = (
            b"S" + _cstr(message.severity)
            + b"C" + _cstr(message.code)
            + b"M" + _cstr(message.message)
            + b"\x00"
        )
        return _with_frame(b"E", body)
    raise ProtocolError(f"cannot encode backend {type(message).__name__}")


# -- decoding -----------------------------------------------------------------


class _Body:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ProtocolError("PG message body truncated")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def cstr(self) -> str:
        end = self.data.find(b"\x00", self.pos)
        if end == -1:
            raise ProtocolError("unterminated string in PG message")
        text = self.data[self.pos : end].decode("utf-8")
        self.pos = end + 1
        return text

    def remaining(self) -> int:
        return len(self.data) - self.pos


def decode_startup(data: bytes) -> m.StartupMessage:
    body = _Body(data)
    version = struct.unpack(">I", body.take(4))[0]
    if version != m.PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    params: dict[str, str] = {}
    while body.remaining() > 1:
        key = body.cstr()
        if not key:
            break
        params[key] = body.cstr()
    return m.StartupMessage(
        user=params.pop("user", ""),
        database=params.pop("database", "postgres"),
        options=params,
    )


def decode_frontend(type_byte: bytes, data: bytes) -> m.FrontendMessage:
    body = _Body(data)
    if type_byte == b"p":
        return m.PasswordMessage(body.cstr())
    if type_byte == b"Q":
        return m.Query(body.cstr())
    if type_byte == b"X":
        return m.Terminate()
    raise ProtocolError(f"unsupported frontend message {type_byte!r}")


def decode_backend(type_byte: bytes, data: bytes) -> m.BackendMessage:
    if type_byte == b"D":  # the hot frame type: one per result row
        return m.DataRow(kernels.unpack_data_row(data))
    body = _Body(data)
    if type_byte == b"R":
        code = struct.unpack(">I", body.take(4))[0]
        salt = body.take(4) if code == 5 else b""
        return m.AuthenticationRequest(code, salt)
    if type_byte == b"S":
        return m.ParameterStatus(body.cstr(), body.cstr())
    if type_byte == b"K":
        pid, secret = struct.unpack(">II", body.take(8))
        return m.BackendKeyData(pid, secret)
    if type_byte == b"Z":
        return m.ReadyForQuery(body.take(1).decode("ascii"))
    if type_byte == b"T":
        (count,) = struct.unpack(">H", body.take(2))
        fields = []
        for __ in range(count):
            name = body.cstr()
            table_oid, column_attr, type_oid, type_size, type_mod, fmt = (
                struct.unpack(">IHIhih", body.take(18))
            )
            fields.append(
                m.FieldDescription(
                    name, type_oid, type_size, table_oid, column_attr,
                    type_mod, fmt,
                )
            )
        return m.RowDescription(fields)
    if type_byte == b"C":
        return m.CommandComplete(body.cstr())
    if type_byte == b"I":
        return m.EmptyQueryResponse()
    if type_byte == b"E":
        fields: dict[str, str] = {}
        while body.remaining() > 1:
            code = body.take(1)
            if code == b"\x00":
                break
            fields[code.decode("ascii")] = body.cstr()
        return m.ErrorResponse(
            severity=fields.get("S", "ERROR"),
            code=fields.get("C", "XX000"),
            message=fields.get("M", ""),
        )
    raise ProtocolError(f"unsupported backend message {type_byte!r}")


# -- batched result-set encoding ------------------------------------------------


def encode_data_rows(rows) -> bytes:
    """Frame a whole result set of DataRow cell lists in one pass.

    Wire telemetry is flushed once per result set (two ``inc`` calls
    total) instead of twice per row; the counted totals are identical to
    encoding each row through :func:`encode_backend`.
    """
    framed, count = kernels.pack_data_rows(rows)
    if count:
        PGWIRE_BYTES.inc(len(framed), direction="out")
        PGWIRE_MESSAGES.inc(count, type="D", direction="out")
    return framed


# -- stream reading ---------------------------------------------------------------


def read_message(recv_exact, decoder):
    """Read one typed message: ``decoder(type_byte, body) -> message``."""
    type_byte = recv_exact(1)
    (length,) = struct.unpack(">I", recv_exact(4))
    if length < 4:
        raise ProtocolError(f"PG message declares bad length {length}")
    body = recv_exact(length - 4)
    PGWIRE_BYTES.inc(length + 1, direction="in")
    PGWIRE_MESSAGES.inc(type=type_byte.decode("ascii"), direction="in")
    return decoder(type_byte, body)


def read_startup(recv_exact) -> m.StartupMessage:
    (length,) = struct.unpack(">I", recv_exact(4))
    if length < 8:
        raise ProtocolError("startup message too short")
    body = recv_exact(length - 4)
    PGWIRE_BYTES.inc(length, direction="in")
    PGWIRE_MESSAGES.inc(type="startup", direction="in")
    return decode_startup(body)


class _InboundStats:
    """Per-frame wire telemetry, batched until a flush point.

    The per-message path does two labelled ``Counter.inc`` calls per
    frame; on a 100k-row result that is 200k lock acquisitions.  This
    accumulator keeps plain ints per type byte and flushes them in one
    ``inc`` per series, preserving the exact totals.
    """

    __slots__ = ("_bytes", "_counts")

    def __init__(self):
        self._bytes = 0
        self._counts: dict[str, int] = {}

    def note(self, type_char: str, nbytes: int) -> None:
        self._bytes += nbytes
        self._counts[type_char] = self._counts.get(type_char, 0) + 1

    def flush(self) -> None:
        if self._bytes:
            PGWIRE_BYTES.inc(self._bytes, direction="in")
            self._bytes = 0
        if self._counts:
            for type_char, count in self._counts.items():
                PGWIRE_MESSAGES.inc(count, type=type_char, direction="in")
            self._counts.clear()


_HEADER = struct.Struct(">cI")


class PgFrameStream:
    """Buffered PG v3 frame source over one connection.

    Wraps a :class:`~repro.server.common.BufferedSocketReader` so many
    frames are sliced out of each ``recv()`` chunk; used by the gateway
    (backend messages) and the PG-wire server (frontend messages).
    Telemetry batches are flushed whenever the buffer drains — the
    moment the next read would hit the socket — and on :meth:`flush`.
    """

    __slots__ = ("reader", "_stats")

    def __init__(self, reader: BufferedSocketReader):
        self.reader = reader
        self._stats = _InboundStats()

    @classmethod
    def over(cls, sock) -> "PgFrameStream":
        return cls(BufferedSocketReader(sock))

    @classmethod
    def detached(cls) -> "PgFrameStream":
        """A stream with no socket; bytes arrive only via :meth:`feed`
        and frames come back out of :meth:`poll_frame` (the event-loop
        connection core's half of the buffer)."""
        return cls(BufferedSocketReader.detached())

    def feed(self, data: bytes) -> None:
        self.reader.feed(data)

    def poll_frame(self) -> tuple[bytes, bytes] | None:
        """One raw ``(type_byte, body)`` frame if fully buffered, else
        None.  Never touches the socket."""
        header = self.reader.peek(5)
        if header is None:
            return None
        type_byte, length = _HEADER.unpack(header)
        if length < 4:
            raise ProtocolError(f"PG message declares bad length {length}")
        if self.reader.buffered() < length + 1:
            return None
        self.reader.take(5)
        body = self.reader.take(length - 4)
        self._stats.note(type_byte.decode("ascii"), length + 1)
        if not self.reader.buffered():
            self._stats.flush()
        return type_byte, body

    def poll_startup(self):
        """One decoded startup message if fully buffered, else None."""
        header = self.reader.peek(4)
        if header is None:
            return None
        (length,) = struct.unpack(">I", header)
        if length < 8:
            raise ProtocolError("startup message too short")
        if self.reader.buffered() < length:
            return None
        self.reader.take(4)
        body = self.reader.take(length - 4)
        self._stats.note("startup", length)
        if not self.reader.buffered():
            self._stats.flush()
        return decode_startup(body)

    def read_frame(self) -> tuple[bytes, bytes]:
        """One raw ``(type_byte, body)`` frame."""
        type_byte, length = _HEADER.unpack(self.reader.take(5))
        if length < 4:
            raise ProtocolError(f"PG message declares bad length {length}")
        body = self.reader.take(length - 4)
        self._stats.note(type_byte.decode("ascii"), length + 1)
        if not self.reader.buffered():
            self._stats.flush()
        return type_byte, body

    def read_message(self, decoder):
        """One decoded message: ``decoder(type_byte, body) -> message``."""
        type_byte, body = self.read_frame()
        return decoder(type_byte, body)

    def read_startup(self) -> m.StartupMessage:
        (length,) = struct.unpack(">I", self.reader.take(4))
        if length < 8:
            raise ProtocolError("startup message too short")
        body = self.reader.take(length - 4)
        self._stats.note("startup", length)
        if not self.reader.buffered():
            self._stats.flush()
        return decode_startup(body)

    def flush(self) -> None:
        """Flush batched telemetry (end of a result set / statement)."""
        self._stats.flush()
