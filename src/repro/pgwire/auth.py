"""Authentication mechanisms for the PG v3 connection start-up.

The paper (Section 4.2): "An authentication server is used during
connection start-up to support authentication mechanisms such as clear
text password, MD5, and Kerberos."  Cleartext and MD5 follow the real PG
algorithms; Kerberos is simulated with a deterministic token exchange that
exercises the same handshake shape (the case study calls out Kerberos as
an operationalization pain point, not a cryptographic one).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.errors import AuthenticationError


@dataclass
class AuthContext:
    user: str
    salt: bytes = b""


class AuthMechanism:
    """One authentication mechanism; subclasses define the exchange."""

    #: PG authentication request code sent to the client
    request_code = 0

    def challenge(self, ctx: AuthContext) -> bytes:
        """Server-side extra challenge bytes (e.g. the MD5 salt)."""
        return b""

    def client_response(self, ctx: AuthContext, password: str) -> str:
        """What the client sends in its PasswordMessage."""
        raise NotImplementedError

    def verify(self, ctx: AuthContext, response: str) -> None:
        """Raise AuthenticationError when the response is wrong."""
        raise NotImplementedError


class TrustAuth(AuthMechanism):
    """No password required (PG's `trust`)."""

    request_code = 0

    def client_response(self, ctx: AuthContext, password: str) -> str:
        return ""

    def verify(self, ctx: AuthContext, response: str) -> None:
        return None


class CleartextAuth(AuthMechanism):
    request_code = 3

    def __init__(self, users: dict[str, str]):
        self.users = dict(users)

    def client_response(self, ctx: AuthContext, password: str) -> str:
        return password

    def verify(self, ctx: AuthContext, response: str) -> None:
        expected = self.users.get(ctx.user)
        if expected is None or not hmac.compare_digest(expected, response):
            raise AuthenticationError(
                f'password authentication failed for user "{ctx.user}"'
            )


def md5_response(user: str, password: str, salt: bytes) -> str:
    """PG's md5 scheme: 'md5' + md5(md5(password+user) + salt)."""
    inner = hashlib.md5((password + user).encode("utf-8")).hexdigest()
    outer = hashlib.md5(inner.encode("ascii") + salt).hexdigest()
    return "md5" + outer


class Md5Auth(AuthMechanism):
    request_code = 5

    def __init__(self, users: dict[str, str], salt: bytes = b"\x01\x02\x03\x04"):
        self.users = dict(users)
        self.salt = salt[:4].ljust(4, b"\x00")

    def challenge(self, ctx: AuthContext) -> bytes:
        ctx.salt = self.salt
        return self.salt

    def client_response(self, ctx: AuthContext, password: str) -> str:
        return md5_response(ctx.user, password, ctx.salt or self.salt)

    def verify(self, ctx: AuthContext, response: str) -> None:
        expected_password = self.users.get(ctx.user)
        if expected_password is None:
            raise AuthenticationError(
                f'password authentication failed for user "{ctx.user}"'
            )
        expected = md5_response(ctx.user, expected_password, self.salt)
        if not hmac.compare_digest(expected, response):
            raise AuthenticationError(
                f'password authentication failed for user "{ctx.user}"'
            )


class KerberosStubAuth(AuthMechanism):
    """Kerberos-shaped token exchange (GSS request code).

    The token is an HMAC of the principal under a shared realm key —
    deterministic and offline, but exercising the same message flow the
    paper's customer deployment had to debug.
    """

    request_code = 7

    def __init__(self, realm_key: bytes, principals: set[str] | None = None):
        self.realm_key = realm_key
        self.principals = principals

    def _token(self, user: str) -> str:
        return hmac.new(
            self.realm_key, f"krb5:{user}".encode("utf-8"), hashlib.sha256
        ).hexdigest()

    def client_response(self, ctx: AuthContext, password: str) -> str:
        # the "password" slot carries the service ticket
        return self._token(ctx.user)

    def verify(self, ctx: AuthContext, response: str) -> None:
        if self.principals is not None and ctx.user not in self.principals:
            raise AuthenticationError(
                f'principal "{ctx.user}" not in the keytab'
            )
        if not hmac.compare_digest(self._token(ctx.user), response):
            raise AuthenticationError(
                f'GSSAPI ticket validation failed for "{ctx.user}"'
            )
