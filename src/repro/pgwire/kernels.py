"""Batched pack/unpack kernels for the PG v3 hot path.

DataRow traffic dominates the wire volume of every result set (one frame
per row, Figure 5), so its encode/decode lives here as vector-shaped
kernels: message bodies are built by joining part lists (never ``bytes
+=``), whole result sets are framed in one pass, and decoding slices a
``memoryview`` with ``unpack_from`` instead of re-allocating per field.
Lint rule HQ005 keeps per-element ``struct.pack`` loops and ``bytes +=``
accumulation out of the rest of ``pgwire``/``qipc`` — the ``kernels``
modules are their one allowed home.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

from repro.errors import ProtocolError

_UINT16 = struct.Struct(">H")
_INT32 = struct.Struct(">i")
_UINT32 = struct.Struct(">I")

#: DataRow NULL marker: column length -1, no payload
_NULL_CELL = _INT32.pack(-1)


def pack_data_row(cells: Sequence[bytes | None]) -> bytes:
    """One framed ``D`` message (type byte + length + body)."""
    return pack_data_rows([cells])[0]


def pack_data_rows(rows: Iterable[Sequence[bytes | None]]) -> tuple[bytes, int]:
    """Frame every row of a result set as consecutive ``D`` messages.

    Returns ``(wire_bytes, message_count)`` so the caller can flush wire
    telemetry once per result set instead of twice per row.
    """
    pack_u16 = _UINT16.pack
    pack_i32 = _INT32.pack
    pack_u32 = _UINT32.pack
    join = b"".join
    frames: list[bytes] = []
    count = 0
    for cells in rows:
        parts = [b"", pack_u16(len(cells))]
        body_len = 6  # 4-byte frame length + 2-byte column count
        for value in cells:
            if value is None:
                parts.append(_NULL_CELL)
                body_len += 4
            else:
                parts.append(pack_i32(len(value)))
                parts.append(value)
                body_len += 4 + len(value)
        parts[0] = b"D" + pack_u32(body_len)
        frames.append(join(parts))
        count += 1
    return join(frames), count


_FIELD_TAIL = struct.Struct(">IHIhih")


def pack_row_description(fields) -> bytes:
    """RowDescription (``T``) body: field count, then per-field metadata."""
    parts = [_UINT16.pack(len(fields))]
    pack_tail = _FIELD_TAIL.pack
    for field in fields:
        parts.append(field.name.encode("utf-8") + b"\x00")
        parts.append(
            pack_tail(
                field.table_oid,
                field.column_attr,
                field.type_oid,
                field.type_size,
                field.type_modifier,
                field.format_code,
            )
        )
    return b"".join(parts)


def unpack_data_row(body: bytes) -> list[bytes | None]:
    """Decode one DataRow body into its cells (``None`` marks NULL)."""
    view = memoryview(body)
    (count,) = _UINT16.unpack_from(view, 0)
    pos = 2
    cells: list[bytes | None] = []
    append = cells.append
    unpack_len = _INT32.unpack_from
    try:
        for __ in range(count):
            (length,) = unpack_len(view, pos)
            pos += 4
            if length == -1:
                append(None)
            else:
                end = pos + length
                if end > len(body):
                    raise ProtocolError("PG message body truncated")
                append(bytes(view[pos:end]))
                pos = end
    except struct.error:
        raise ProtocolError("PG message body truncated") from None
    return cells
