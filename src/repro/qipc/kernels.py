"""Batched pack/unpack kernels for QIPC vector payloads.

A QIPC response carries each column as one contiguous fixed-width array
(Figure 5), which Python serializes fastest as a single
``struct.pack(f"<{n}q", *items)`` call rather than one two-byte-dispatch
``struct.pack`` per element.  This module owns those bulk kernels — the
fast path, the scalar fallback it degrades to when a vector carries
NaN-coded nulls or mixed numeric types, and the *reference* scalar
encoder the differential test suite compares against byte-for-byte.
Lint rule HQ005 keeps per-element packing loops out of the rest of
``qipc``/``pgwire``; the ``kernels`` modules are their one allowed home.
"""

from __future__ import annotations

import math
import struct

from repro.errors import ProtocolError
from repro.qlang.qtypes import NULL_INT, NULL_LONG, NULL_SHORT, QType

#: struct element code per fixed-width Q type (little-endian throughout)
STRUCT_CODES = {
    QType.BOOLEAN: "b",
    QType.BYTE: "B",
    QType.SHORT: "h",
    QType.INT: "i",
    QType.LONG: "q",
    QType.REAL: "f",
    QType.FLOAT: "d",
    QType.TIMESTAMP: "q",
    QType.MONTH: "i",
    QType.DATE: "i",
    QType.DATETIME: "d",
    QType.TIMESPAN: "q",
    QType.MINUTE: "i",
    QType.SECOND: "i",
    QType.TIME: "i",
}

ITEM_SIZES = {
    qtype: struct.calcsize("<" + code) for qtype, code in STRUCT_CODES.items()
}

#: integer null sentinel per integral Q type (floats use NaN natively)
INT_NULLS = {
    QType.SHORT: NULL_SHORT,
    QType.INT: NULL_INT,
    QType.LONG: NULL_LONG,
    QType.TIMESTAMP: NULL_LONG,
    QType.TIMESPAN: NULL_LONG,
    QType.MONTH: NULL_INT,
    QType.DATE: NULL_INT,
    QType.MINUTE: NULL_INT,
    QType.SECOND: NULL_INT,
    QType.TIME: NULL_INT,
}

_FLOATING = (QType.REAL, QType.FLOAT, QType.DATETIME)


# -- packing ------------------------------------------------------------------


def pack_fixed(qtype: QType, items) -> bytes:
    """Pack a fixed-width vector payload in one ``struct.pack`` call.

    The bulk call only succeeds when every item already has the exact
    wire representation (ints in integral vectors, numbers in float
    vectors) — which is the overwhelmingly common shape coming out of
    the columnar result pipeline.  Anything else (NaN-coded nulls in an
    integral vector, floats that need truncation, strings) falls back to
    a normalizing pass that bulk-substitutes and packs again, with
    byte-identical output to the per-element reference encoder.
    """
    if qtype == QType.BOOLEAN:
        # normalize truthiness the way the scalar encoder does (1/0)
        return bytes([1 if item else 0 for item in items])
    code = STRUCT_CODES[qtype]
    try:
        return struct.pack(f"<{len(items)}{code}", *items)
    except (struct.error, TypeError):
        return struct.pack(f"<{len(items)}{code}", *_normalized(qtype, items))


def _normalized(qtype: QType, items) -> list:
    """Coerce items to their wire type, mapping NaN to the typed null."""
    if qtype in _FLOATING:
        return [float(item) for item in items]
    null = INT_NULLS.get(qtype)
    return [
        null
        if null is not None and isinstance(item, float) and math.isnan(item)
        else int(item)
        for item in items
    ]


def pack_fixed_reference(qtype: QType, items) -> bytes:
    """The pre-kernel scalar loop, retained as the differential oracle.

    One ``struct.pack`` per element, with the same NaN-to-null and
    coercion rules the original ``_encode_vector`` applied.  Slow on
    purpose — tests assert ``pack_fixed`` matches it byte-for-byte.
    """
    fmt = "<" + STRUCT_CODES[qtype]
    null = INT_NULLS.get(qtype)
    out = []
    for raw in items:
        if null is not None and isinstance(raw, float) and math.isnan(raw):
            raw = null
        if qtype in _FLOATING:
            out.append(struct.pack(fmt, float(raw)))
        elif qtype == QType.BOOLEAN:
            out.append(struct.pack(fmt, 1 if raw else 0))
        else:
            out.append(struct.pack(fmt, int(raw)))
    return b"".join(out)


def guid_bytes(value) -> bytes:
    """16 GUID payload bytes from canonical text; malformed input is a
    protocol error, never silently padded or truncated."""
    text = str(value).replace("-", "")
    if len(text) != 32:
        raise ProtocolError(f"invalid GUID {value!r}: expected 32 hex digits")
    try:
        return bytes.fromhex(text)
    except ValueError:
        raise ProtocolError(
            f"invalid GUID {value!r}: non-hexadecimal digits"
        ) from None


# -- unpacking ----------------------------------------------------------------


def unpack_fixed(qtype: QType, data, offset: int, count: int) -> tuple[list, int]:
    """Decode ``count`` fixed-width items with one ``unpack_from`` call.

    Returns ``(values, next_offset)``; booleans come back as ``bool``.
    """
    end = offset + count * ITEM_SIZES[qtype]
    if end > len(data):
        raise ProtocolError(
            f"QIPC payload truncated at offset {offset} "
            f"(needed {end - offset} bytes of {len(data) - offset})"
        )
    code = STRUCT_CODES[qtype]
    values = list(struct.unpack_from(f"<{count}{code}", data, offset))
    if qtype == QType.BOOLEAN:
        values = [value != 0 for value in values]
    return values, end


def unpack_symbols(data: bytes, offset: int, count: int) -> tuple[list[str], int]:
    """Decode ``count`` NUL-terminated symbols in one split pass."""
    if count == 0:
        return [], offset
    parts = bytes(data[offset:]).split(b"\x00", count)
    if len(parts) <= count:
        raise ProtocolError("unterminated symbol in QIPC payload")
    symbols = [part.decode("utf-8") for part in parts[:count]]
    consumed = sum(len(part) for part in parts[:count]) + count
    return symbols, offset + consumed


# -- reference vector encoder (differential-test oracle) ----------------------


def reference_encode_vector(vector) -> bytes:
    """The pre-change ``_encode_vector``, element at a time.

    Kept verbatim so the round-trip suite can prove the batched encoder
    in :mod:`repro.qipc.encode` produces identical bytes for every
    vector type, including typed nulls, NaN and multi-byte symbols.
    """
    qtype = vector.qtype
    header = struct.pack("<bBI", qtype.code, 0, len(vector.items))
    if qtype == QType.SYMBOL:
        body = b"".join(
            str(s).encode("utf-8") + b"\x00" for s in vector.items
        )
        return header + body
    if qtype == QType.CHAR:
        text = "".join(str(c)[:1] or " " for c in vector.items)
        encoded = text.encode("utf-8")
        header = struct.pack("<bBI", qtype.code, 0, len(encoded))
        return header + encoded
    if qtype == QType.GUID:
        return header + b"".join(guid_bytes(g) for g in vector.items)
    return header + pack_fixed_reference(qtype, vector.items)
