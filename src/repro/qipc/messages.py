"""QIPC message envelope.

A QIPC message starts with an 8-byte header:

==========  =====================================================
byte 0      endianness (1 = little-endian; we always emit little)
byte 1      message type: 0 async, 1 sync, 2 response
byte 2      compressed flag (0 / 1)
byte 3      reserved
bytes 4-8   total message length, including this header (uint32)
==========  =====================================================

followed by one serialized Q object (or its compressed form).  Unlike the
row-streaming PG v3 protocol, a QIPC response carries the *entire* result
as a single column-oriented object — the asymmetry at the heart of the
paper's Figure 5.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum

from repro.errors import ProtocolError
from repro.obs import metrics

#: QIPC wire telemetry: bytes and messages by direction (out = framed by
#: this process, in = unframed), plus the compression win on large
#: payloads (compressed size / original size, only when kept)
QIPC_BYTES = metrics.counter("qipc_bytes_total", "QIPC bytes on the wire")
QIPC_MESSAGES = metrics.counter("qipc_messages_total", "QIPC messages framed")
QIPC_COMPRESSION_RATIO = metrics.histogram(
    "qipc_compression_ratio",
    "Compressed/original payload size for compressed QIPC messages",
    buckets=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
)

HEADER_SIZE = 8
LITTLE_ENDIAN = 1

#: messages larger than this are compressed when both sides allow it
#: (kdb+ compresses messages over 2000 bytes sent to remote hosts)
COMPRESSION_THRESHOLD = 2000


class MessageType(IntEnum):
    ASYNC = 0
    SYNC = 1
    RESPONSE = 2


@dataclass
class QipcMessage:
    msg_type: MessageType
    payload: bytes  # serialized Q object (uncompressed)
    compressed: bool = False


def frame(message: QipcMessage, allow_compression: bool = True) -> bytes:
    """Wrap a serialized payload in the QIPC envelope, compressing large
    payloads the way kdb+ does."""
    from repro.qipc.compress import compress

    payload = message.payload
    compressed_flag = 0
    if allow_compression and len(payload) > COMPRESSION_THRESHOLD:
        packed = compress(payload)
        # kdb+ only keeps the compressed form when it actually saves space
        if len(packed) < len(payload):
            QIPC_COMPRESSION_RATIO.observe(len(packed) / len(payload))
            payload = packed
            compressed_flag = 1
    total = HEADER_SIZE + len(payload)
    header = struct.pack(
        "<BBBBI", LITTLE_ENDIAN, int(message.msg_type), compressed_flag, 0, total
    )
    QIPC_BYTES.inc(total, direction="out")
    QIPC_MESSAGES.inc(type=message.msg_type.name.lower(), direction="out")
    return header + payload


def unframe(data: bytes) -> QipcMessage:
    """Parse one complete framed message back into payload + type."""
    from repro.qipc.compress import decompress

    if len(data) < HEADER_SIZE:
        raise ProtocolError(f"QIPC message truncated at {len(data)} bytes")
    endian, msg_type, compressed_flag, __, total = struct.unpack(
        "<BBBBI", data[:HEADER_SIZE]
    )
    if endian != LITTLE_ENDIAN:
        raise ProtocolError("big-endian QIPC messages are not supported")
    if total != len(data):
        raise ProtocolError(
            f"QIPC length field says {total} bytes, got {len(data)}"
        )
    payload = data[HEADER_SIZE:]
    if compressed_flag:
        payload = decompress(payload)
    try:
        parsed_type = MessageType(msg_type)
    except ValueError:
        raise ProtocolError(f"unknown QIPC message type {msg_type}") from None
    QIPC_BYTES.inc(total, direction="in")
    QIPC_MESSAGES.inc(type=parsed_type.name.lower(), direction="in")
    return QipcMessage(parsed_type, payload, compressed=bool(compressed_flag))


def read_message(recv_exact) -> QipcMessage:
    """Read one framed message using ``recv_exact(n) -> bytes``."""
    header = recv_exact(HEADER_SIZE)
    __, __, __, __, total = struct.unpack("<BBBBI", header)
    if total < HEADER_SIZE:
        raise ProtocolError(f"QIPC header declares bad length {total}")
    rest = recv_exact(total - HEADER_SIZE)
    return unframe(header + rest)


def poll_message(
    reader, max_bytes: int = 64 * 1024 * 1024
) -> QipcMessage | None:
    """One framed message from a fed :class:`BufferedSocketReader`, or
    None until the frame is complete.  Never touches a socket — the
    event-loop side of :func:`read_message`."""
    header = reader.peek(HEADER_SIZE)
    if header is None:
        return None
    __, __, __, __, total = struct.unpack("<BBBBI", header)
    if total < HEADER_SIZE:
        raise ProtocolError(f"QIPC header declares bad length {total}")
    if total > max_bytes:
        raise ProtocolError(
            f"QIPC message of {total} bytes exceeds the {max_bytes} limit"
        )
    if reader.buffered() < total:
        return None
    return unframe(reader.take(total))
