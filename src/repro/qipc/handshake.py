"""QIPC connection handshake (paper Section 4.2).

    "a client sends Hyper-Q a null-terminated ASCII string
    'username:password<N>' where N is a single byte denoting client
    version.  If Hyper-Q accepts the credentials, it sends back a single
    byte response.  Otherwise, it closes the connection immediately."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AuthenticationError, ProtocolError

#: highest IPC capability byte we speak (3 = kdb+ 3.x: compression, etc.)
MAX_CAPABILITY = 3


@dataclass
class Credentials:
    username: str
    password: str
    capability: int = MAX_CAPABILITY


def client_hello(credentials: Credentials) -> bytes:
    """The opening bytes a Q client sends."""
    text = f"{credentials.username}:{credentials.password}"
    return text.encode("ascii") + bytes([credentials.capability]) + b"\x00"


def parse_hello(data: bytes) -> Credentials:
    """Parse the client's opening bytes on the server side."""
    if not data.endswith(b"\x00"):
        raise ProtocolError("QIPC hello must be null-terminated")
    body = data[:-1]
    if not body:
        raise ProtocolError("empty QIPC hello")
    capability = body[-1]
    if capability > 0x7F:
        raise ProtocolError("QIPC hello capability byte out of range")
    try:
        text = body[:-1].decode("ascii")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"QIPC hello is not ASCII: {exc}") from None
    username, __, password = text.partition(":")
    return Credentials(username, password, capability)


def server_ack(client_capability: int) -> bytes:
    """Single-byte acceptance: the common capability level."""
    return bytes([min(client_capability, MAX_CAPABILITY)])


class Authenticator:
    """Pluggable credential check for the endpoint."""

    def authenticate(self, credentials: Credentials) -> None:
        """Raise AuthenticationError to reject the connection."""


class AllowAll(Authenticator):
    """kdb+'s historical default: no access control (paper Section 2.2)."""


class UserPassword(Authenticator):
    def __init__(self, users: dict[str, str]):
        self.users = dict(users)

    def authenticate(self, credentials: Credentials) -> None:
        expected = self.users.get(credentials.username)
        if expected is None or expected != credentials.password:
            raise AuthenticationError(
                f"access denied for user {credentials.username!r}"
            )
