"""QIPC payload compression.

kdb+ compresses large IPC messages with a byte-oriented LZ scheme: a
control byte carries eight flags; a set flag means "copy run" encoded as a
byte-pair hash slot plus a length byte, a clear flag means a literal byte.
This module implements that scheme with strictly mirrored state updates on
both sides — after the byte at position ``p`` is consumed/produced, the
pair ``(p-1, p)`` is anchored in a 256-slot table.  The contract that
matters for the reproduction is ``decompress(compress(x)) == x`` plus real
size wins on the repetitive column data QIPC carries.

Layout of a compressed payload: 4-byte little-endian uncompressed size,
then the flag/literal/run stream.
"""

from __future__ import annotations

import struct

from repro.errors import ProtocolError

_MIN_RUN = 3
_MAX_RUN = 255 + _MIN_RUN


def _pair_hash(a: int, b: int) -> int:
    return (a ^ (b << 1)) & 0xFF


def compress(data: bytes) -> bytes:
    """Compress ``data``; output starts with the uncompressed length."""
    out = bytearray(struct.pack("<I", len(data)))
    anchors = [-1] * 256
    n = len(data)
    i = 0
    flags = 0
    flag_bit = 1
    flag_pos = len(out)
    out.append(0)  # control byte placeholder

    while i < n:
        run_len = 0
        slot = 0
        if i + 1 < n:
            slot = _pair_hash(data[i], data[i + 1])
            j = anchors[slot]
            if j >= 0 and data[j] == data[i] and data[j + 1] == data[i + 1]:
                limit = min(_MAX_RUN, n - i)
                run_len = 2
                while run_len < limit and data[j + run_len] == data[i + run_len]:
                    run_len += 1
        if run_len >= _MIN_RUN:
            flags |= flag_bit
            out.append(slot)
            out.append(run_len - _MIN_RUN)
            for p in range(i, i + run_len):
                if p >= 1:
                    anchors[_pair_hash(data[p - 1], data[p])] = p - 1
            i += run_len
        else:
            out.append(data[i])
            if i >= 1:
                anchors[_pair_hash(data[i - 1], data[i])] = i - 1
            i += 1
        flag_bit <<= 1
        if flag_bit == 256 and i < n:
            out[flag_pos] = flags
            flags = 0
            flag_bit = 1
            flag_pos = len(out)
            out.append(0)
    out[flag_pos] = flags
    return bytes(out)


def decompress(data: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    if len(data) < 4:
        raise ProtocolError("compressed payload too short")
    (size,) = struct.unpack("<I", data[:4])
    out = bytearray()
    anchors = [-1] * 256
    pos = 4
    flags = 0
    flag_bit = 256  # force a control-byte read first

    def anchor_last_pair() -> None:
        p = len(out) - 1
        if p >= 1:
            anchors[_pair_hash(out[p - 1], out[p])] = p - 1

    while len(out) < size:
        if flag_bit == 256:
            if pos >= len(data):
                raise ProtocolError("compressed payload truncated (flags)")
            flags = data[pos]
            pos += 1
            flag_bit = 1
        if flags & flag_bit:
            if pos + 1 >= len(data):
                raise ProtocolError("compressed payload truncated (run)")
            slot = data[pos]
            run_len = data[pos + 1] + _MIN_RUN
            pos += 2
            start = anchors[slot]
            if start < 0:
                raise ProtocolError("compressed payload references empty slot")
            for k in range(run_len):
                out.append(out[start + k])
                anchor_last_pair()
        else:
            if pos >= len(data):
                raise ProtocolError("compressed payload truncated (literal)")
            out.append(data[pos])
            pos += 1
            anchor_last_pair()
        flag_bit <<= 1
    if len(out) != size:
        raise ProtocolError(f"decompressed {len(out)} bytes, expected {size}")
    return bytes(out)
