"""QValue -> QIPC byte serialization (column-oriented).

Follows the kx IPC object layout: a signed type byte, then the payload.
Vectors carry an attribute byte and a uint32 length; tables are type 98
wrapping a columns!values dictionary; dictionaries are type 99.  Figure 5
of the paper shows exactly this layout for a two-column result set.

Fixed-width vector payloads — the bulk of every result set — are packed
through the batched kernels in :mod:`repro.qipc.kernels` (one
``struct.pack`` per vector, not per element); the scalar reference
encoder retained there is the differential-test oracle for this module.
"""

from __future__ import annotations

import math
import struct

from repro.errors import ProtocolError
from repro.qipc.kernels import INT_NULLS, guid_bytes, pack_fixed
from repro.qlang.qtypes import QType
from repro.qlang.values import (
    QAtom,
    QDict,
    QKeyedTable,
    QLambda,
    QList,
    QTable,
    QValue,
    QVector,
)

#: struct format per fixed-width Q type (atoms pack one element each)
_FORMATS = {qtype: "<" + code for qtype, code in (
    (QType.BOOLEAN, "b"),
    (QType.BYTE, "B"),
    (QType.SHORT, "h"),
    (QType.INT, "i"),
    (QType.LONG, "q"),
    (QType.REAL, "f"),
    (QType.FLOAT, "d"),
    (QType.TIMESTAMP, "q"),
    (QType.MONTH, "i"),
    (QType.DATE, "i"),
    (QType.DATETIME, "d"),
    (QType.TIMESPAN, "q"),
    (QType.MINUTE, "i"),
    (QType.SECOND, "i"),
    (QType.TIME, "i"),
)}

#: kept as the public-ish name earlier satellites referenced
_INT_NULLS = INT_NULLS


def _pack_raw(qtype: QType, raw) -> bytes:
    fmt = _FORMATS[qtype]
    if qtype in (QType.REAL, QType.FLOAT, QType.DATETIME):
        return struct.pack(fmt, float(raw))
    if qtype == QType.BOOLEAN:
        return struct.pack(fmt, 1 if raw else 0)
    return struct.pack(fmt, int(raw))


def encode_value(value: QValue) -> bytes:
    """Serialize a Q value into QIPC object bytes."""
    if isinstance(value, QAtom):
        return _encode_atom(value)
    if isinstance(value, QVector):
        return _encode_vector(value)
    if isinstance(value, QList):
        out = [struct.pack("<bBI", 0, 0, len(value.items))]
        for item in value.items:
            out.append(encode_value(item))
        return b"".join(out)
    if isinstance(value, QTable):
        header = struct.pack("<bB", 98, 0)
        columns = QVector(QType.SYMBOL, value.columns)
        body = struct.pack("<b", 99) + encode_value(columns) + encode_value(
            QList(list(value.data))
        )
        return header + body
    if isinstance(value, QKeyedTable):
        return (
            struct.pack("<b", 99)
            + encode_value(value.key)
            + encode_value(value.value)
        )
    if isinstance(value, QDict):
        return (
            struct.pack("<b", 99)
            + encode_value(value.keys)
            + encode_value(value.values)
        )
    if isinstance(value, QLambda):
        # lambdas travel as their source text (kdb+ sends a 100 wrapper)
        source = value.source.encode("utf-8")
        return struct.pack("<bB", 100, 0) + b"\x00" + struct.pack(
            "<bBI", 10, 0, len(source)
        ) + source
    raise ProtocolError(f"cannot encode {type(value).__name__} over QIPC")


def encode_error(message: str) -> bytes:
    """kdb+ error response: type -128 + null-terminated text."""
    return struct.pack("<b", -128) + message.encode("utf-8") + b"\x00"


def _encode_atom(atom: QAtom) -> bytes:
    qtype = atom.qtype
    type_byte = struct.pack("<b", -qtype.code)
    if qtype == QType.SYMBOL:
        return type_byte + str(atom.value).encode("utf-8") + b"\x00"
    if qtype == QType.CHAR:
        ch = str(atom.value)[:1] or " "
        return type_byte + ch.encode("utf-8")[:1]
    if qtype == QType.GUID:
        return type_byte + guid_bytes(atom.value)
    raw = atom.value
    if atom.is_null and qtype in _INT_NULLS:
        raw = _INT_NULLS[qtype]
    if isinstance(raw, float) and math.isnan(raw) and qtype in _INT_NULLS:
        raw = _INT_NULLS[qtype]
    return type_byte + _pack_raw(qtype, raw)


def _encode_vector(vector: QVector) -> bytes:
    qtype = vector.qtype
    header = struct.pack("<bBI", qtype.code, 0, len(vector.items))
    if qtype == QType.SYMBOL:
        body = b"".join(
            str(s).encode("utf-8") + b"\x00" for s in vector.items
        )
        return header + body
    if qtype == QType.CHAR:
        text = "".join(str(c)[:1] or " " for c in vector.items)
        encoded = text.encode("utf-8")
        # re-declare the length in bytes (utf-8 may expand)
        header = struct.pack("<bBI", qtype.code, 0, len(encoded))
        return header + encoded
    if qtype == QType.GUID:
        return header + b"".join(guid_bytes(g) for g in vector.items)
    return header + pack_fixed(qtype, vector.items)
