"""QIPC bytes -> QValue deserialization (inverse of encode).

Vector payloads decode through the batched kernels in
:mod:`repro.qipc.kernels`: one ``struct.unpack_from`` per fixed-width
vector and one split pass per symbol vector, instead of a reader call
per element.
"""

from __future__ import annotations

import struct

from repro.errors import ProtocolError, QError
from repro.qipc.kernels import unpack_fixed, unpack_symbols
from repro.qlang.qtypes import QType
from repro.qlang.values import (
    QAtom,
    QDict,
    QKeyedTable,
    QList,
    QTable,
    QValue,
    QVector,
)

_FIXED = {
    QType.BOOLEAN: ("<b", 1),
    QType.BYTE: ("<B", 1),
    QType.SHORT: ("<h", 2),
    QType.INT: ("<i", 4),
    QType.LONG: ("<q", 8),
    QType.REAL: ("<f", 4),
    QType.FLOAT: ("<d", 8),
    QType.TIMESTAMP: ("<q", 8),
    QType.MONTH: ("<i", 4),
    QType.DATE: ("<i", 4),
    QType.DATETIME: ("<d", 8),
    QType.TIMESPAN: ("<q", 8),
    QType.MINUTE: ("<i", 4),
    QType.SECOND: ("<i", 4),
    QType.TIME: ("<i", 4),
}


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ProtocolError(
                f"QIPC payload truncated at offset {self.pos} "
                f"(needed {n} bytes of {len(self.data)})"
            )
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def int8(self) -> int:
        return struct.unpack("<b", self.take(1))[0]

    def uint8(self) -> int:
        return struct.unpack("<B", self.take(1))[0]

    def uint32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def cstring(self) -> str:
        end = self.data.find(b"\x00", self.pos)
        if end == -1:
            raise ProtocolError("unterminated symbol in QIPC payload")
        text = self.data[self.pos : end].decode("utf-8")
        self.pos = end + 1
        return text


def decode_value(payload: bytes) -> QValue:
    """Deserialize one QIPC object; raises QError for error responses."""
    reader = _Reader(payload)
    value = _decode(reader)
    return value


def _decode(reader: _Reader) -> QValue:
    type_code = reader.int8()
    if type_code == -128:
        message = reader.cstring()
        raise QError(f"remote error: {message}", signal=message)
    if type_code < 0:
        return _decode_atom(reader, -type_code)
    if type_code == 0:
        reader.uint8()  # attributes
        count = reader.uint32()
        return QList([_decode(reader) for __ in range(count)])
    if 1 <= type_code <= 19:
        return _decode_vector(reader, type_code)
    if type_code == 98:
        reader.uint8()  # attributes
        inner = reader.int8()
        if inner != 99:
            raise ProtocolError(f"table payload must wrap a dict, got {inner}")
        columns = _decode(reader)
        values = _decode(reader)
        if not isinstance(columns, QVector) or columns.qtype != QType.SYMBOL:
            raise ProtocolError("table columns must be a symbol vector")
        if not isinstance(values, QList):
            raise ProtocolError("table values must be a general list")
        return QTable(list(columns.items), list(values.items))
    if type_code == 99:
        keys = _decode(reader)
        values = _decode(reader)
        if isinstance(keys, QTable) and isinstance(values, QTable):
            return QKeyedTable(keys, values)
        return QDict(keys, values)
    if type_code == 100:
        reader.uint8()
        reader.cstring()  # namespace
        source = _decode(reader)
        from repro.qlang.parser import parse
        from repro.qlang import ast as qast
        from repro.qlang.values import QLambda

        text = "".join(source.items) if isinstance(source, QVector) else ""
        program = parse(text)
        if program.statements and isinstance(program.statements[0], qast.Lambda):
            lam = program.statements[0]
            return QLambda(lam.params, lam.body, source=text)
        raise ProtocolError("embedded lambda failed to parse")
    raise ProtocolError(f"unsupported QIPC type code {type_code}")


def _decode_atom(reader: _Reader, code: int) -> QAtom:
    qtype = QType(code)
    if qtype == QType.SYMBOL:
        return QAtom(qtype, reader.cstring())
    if qtype == QType.CHAR:
        return QAtom(qtype, reader.take(1).decode("utf-8", "replace"))
    if qtype == QType.GUID:
        raw = reader.take(16)
        return QAtom(qtype, _guid_text(raw))
    fmt, size = _FIXED[qtype]
    value = struct.unpack(fmt, reader.take(size))[0]
    if qtype == QType.BOOLEAN:
        value = bool(value)
    return QAtom(qtype, value)


def _decode_vector(reader: _Reader, code: int) -> QVector:
    qtype = QType(code)
    reader.uint8()  # attributes
    count = reader.uint32()
    if qtype == QType.SYMBOL:
        symbols, reader.pos = unpack_symbols(reader.data, reader.pos, count)
        return QVector(qtype, symbols)
    if qtype == QType.CHAR:
        text = reader.take(count).decode("utf-8", "replace")
        return QVector(qtype, list(text))
    if qtype == QType.GUID:
        return QVector(
            qtype, [_guid_text(reader.take(16)) for __ in range(count)]
        )
    items, reader.pos = unpack_fixed(qtype, reader.data, reader.pos, count)
    return QVector(qtype, items)


def _guid_text(raw: bytes) -> str:
    hexed = raw.hex()
    return (
        f"{hexed[0:8]}-{hexed[8:12]}-{hexed[12:16]}-{hexed[16:20]}-"
        f"{hexed[20:32]}"
    )
