"""XTRA relational operators.

XTRA (eXTended Relational Algebra) is Hyper-Q's internal query
representation (paper Section 3.2).  Every relational operator derives the
properties the paper lists: output columns with names and types, keys, and
order — the latter via the ``order_column`` / ``preserves_order``
properties that the Xformer's transparency rules consume (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.xtra.scalars import Scalar, SColRef
from repro.sqlengine.types import SqlType

#: Name of the implicit order column Hyper-Q maintains for Q tables.
ORDCOL = "ordcol"


@dataclass(slots=True)
class XtraColumn:
    """One output column of a relational operator."""

    name: str
    sql_type: SqlType
    nullable: bool = True
    #: True for the implicit order column (hidden from the Q application)
    implicit: bool = False


class XtraOp:
    """Base class for relational operators.

    Derived properties (output columns, order column) are cached per node:
    XTRA trees are rebuilt, not mutated, by the Xformer, so a node's
    properties are stable once derived.  Without the cache, property
    derivation on 500+ column workloads dominates translation time.
    """

    __slots__ = ()

    def _compute_columns(self) -> list[XtraColumn]:
        raise NotImplementedError

    @property
    def columns(self) -> list[XtraColumn]:
        cached = self.__dict__.get("_columns_cache")
        if cached is None:
            cached = self._compute_columns()
            self.__dict__["_columns_cache"] = cached
            self.__dict__["_colmap_cache"] = {c.name: c for c in cached}
        return cached

    def _colmap(self) -> dict:
        if "_colmap_cache" not in self.__dict__:
            __ = self.columns
        return self.__dict__["_colmap_cache"]

    @property
    def order_column(self) -> str | None:
        """Name of the implicit order column, if this operator has one."""
        if "_order_cache" not in self.__dict__:
            self.__dict__["_order_cache"] = self._compute_order_column()
        return self.__dict__["_order_cache"]

    def _compute_order_column(self) -> str | None:
        return None

    @property
    def preserves_order(self) -> bool:
        """Whether the operator's output preserves its input order."""
        return False

    def children(self) -> list["XtraOp"]:
        return []

    def column(self, name: str) -> XtraColumn:
        return self._colmap()[name]

    def has_column(self, name: str) -> bool:
        return name in self._colmap()

    @property
    def visible_columns(self) -> list[XtraColumn]:
        return [c for c in self.columns if not c.implicit]


@dataclass
class XtraGet(XtraOp):
    """Scan of a backend relation (table, view, or temp table)."""

    table: str
    output: list[XtraColumn]
    ordcol: str | None = ORDCOL
    keys: list[str] = field(default_factory=list)

    def _compute_columns(self) -> list[XtraColumn]:
        return self.output

    def _compute_order_column(self) -> str | None:
        return self.ordcol

    @property
    def preserves_order(self) -> bool:
        return True


@dataclass
class XtraConstTable(XtraOp):
    """An inline table of literal rows (from Q table literals)."""

    output: list[XtraColumn]
    rows: list[list]  # raw SQL values

    def _compute_columns(self) -> list[XtraColumn]:
        return self.output

    def _compute_order_column(self) -> str | None:
        for col in self.output:
            if col.implicit:
                return col.name
        return None

    @property
    def preserves_order(self) -> bool:
        return True


@dataclass
class XtraProject(XtraOp):
    """Projection: named scalar expressions over the child."""

    child: XtraOp
    projections: list[tuple[str, Scalar]]

    def _compute_columns(self) -> list[XtraColumn]:
        out = []
        child_ord = self.child.order_column
        for name, scalar in self.projections:
            out.append(
                XtraColumn(
                    name,
                    scalar.sql_type,
                    scalar.nullable,
                    implicit=(name == child_ord or name == ORDCOL),
                )
            )
        return out

    def _compute_order_column(self) -> str | None:
        child_ord = self.child.order_column
        for name, __ in self.projections:
            if name == child_ord or name == ORDCOL:
                return name
        return None

    @property
    def preserves_order(self) -> bool:
        return True

    def children(self):
        return [self.child]


@dataclass
class XtraFilter(XtraOp):
    """Row filter.  Preserves order and columns."""

    child: XtraOp
    predicate: Scalar

    def _compute_columns(self) -> list[XtraColumn]:
        return self.child.columns

    def _compute_order_column(self) -> str | None:
        return self.child.order_column

    @property
    def preserves_order(self) -> bool:
        return True

    def children(self):
        return [self.child]


@dataclass
class XtraJoin(XtraOp):
    """Join; ``kind`` in {'inner', 'left', 'cross'}.

    Column names are prefixed when both sides expose the same name; the
    binder pre-renames to avoid that, so here we simply concatenate.
    """

    kind: str
    left: XtraOp
    right: XtraOp
    condition: Scalar | None = None

    def _compute_columns(self) -> list[XtraColumn]:
        right_cols = [
            XtraColumn(c.name, c.sql_type, True, c.implicit)
            if self.kind == "left"
            else c
            for c in self.right.columns
        ]
        return self.left.columns + right_cols

    def _compute_order_column(self) -> str | None:
        return self.left.order_column

    @property
    def preserves_order(self) -> bool:
        return False  # joins may duplicate/reorder; order restored via sort

    def children(self):
        return [self.left, self.right]


@dataclass
class XtraGroupAgg(XtraOp):
    """Grouped aggregation (or scalar aggregation when no keys)."""

    child: XtraOp
    group_keys: list[tuple[str, Scalar]]
    aggregates: list[tuple[str, Scalar]]

    def _compute_columns(self) -> list[XtraColumn]:
        out = [
            XtraColumn(name, scalar.sql_type, scalar.nullable)
            for name, scalar in self.group_keys
        ]
        out += [
            XtraColumn(name, scalar.sql_type, True)
            for name, scalar in self.aggregates
        ]
        return out

    def _compute_order_column(self) -> str | None:
        return None  # aggregation destroys the implicit order

    @property
    def preserves_order(self) -> bool:
        return False

    def children(self):
        return [self.child]

    @property
    def is_scalar_agg(self) -> bool:
        return not self.group_keys


@dataclass
class XtraWindow(XtraOp):
    """Extend the child with computed window columns."""

    child: XtraOp
    windows: list[tuple[str, Scalar]]  # (new column name, SWindow scalar)

    def _compute_columns(self) -> list[XtraColumn]:
        extra = [
            XtraColumn(name, scalar.sql_type, True)
            for name, scalar in self.windows
        ]
        return self.child.columns + extra

    def _compute_order_column(self) -> str | None:
        return self.child.order_column

    @property
    def preserves_order(self) -> bool:
        return True

    def children(self):
        return [self.child]


@dataclass
class XtraSort(XtraOp):
    """Explicit sort; establishes order by the named expressions."""

    child: XtraOp
    sort_items: list[tuple[Scalar, bool]]  # (expr, descending)

    def _compute_columns(self) -> list[XtraColumn]:
        return self.child.columns

    def _compute_order_column(self) -> str | None:
        items = self.sort_items
        if len(items) == 1 and isinstance(items[0][0], SColRef):
            return items[0][0].name
        return self.child.order_column

    @property
    def preserves_order(self) -> bool:
        return True

    def children(self):
        return [self.child]


@dataclass
class XtraLimit(XtraOp):
    child: XtraOp
    count: int
    offset: int = 0

    def _compute_columns(self) -> list[XtraColumn]:
        return self.child.columns

    def _compute_order_column(self) -> str | None:
        return self.child.order_column

    @property
    def preserves_order(self) -> bool:
        return True

    def children(self):
        return [self.child]


@dataclass
class XtraUnionAll(XtraOp):
    """UNION ALL; columns follow the left input."""

    left: XtraOp
    right: XtraOp

    def _compute_columns(self) -> list[XtraColumn]:
        return [
            XtraColumn(c.name, c.sql_type, True, c.implicit)
            for c in self.left.columns
        ]

    @property
    def preserves_order(self) -> bool:
        return False

    def children(self):
        return [self.left, self.right]


@dataclass
class XtraDistinct(XtraOp):
    child: XtraOp

    def _compute_columns(self) -> list[XtraColumn]:
        return self.child.columns

    def _compute_order_column(self) -> str | None:
        return None

    def children(self):
        return [self.child]


def walk(op: XtraOp):
    """Depth-first pre-order traversal of a relational tree."""
    yield op
    for child in op.children():
        yield from walk(child)


def tree_description(op: XtraOp, indent: int = 0) -> str:
    """Readable plan rendering for diagnostics and docs."""
    label = type(op).__name__.replace("Xtra", "xtra_").lower()
    extras = ""
    if isinstance(op, XtraGet):
        extras = f"({op.table})"
    elif isinstance(op, XtraJoin):
        extras = f"({op.kind})"
    elif isinstance(op, XtraGroupAgg):
        keys = [name for name, __ in op.group_keys]
        extras = f"(by {', '.join(keys)})" if keys else "(scalar)"
    line = "  " * indent + label + extras
    lines = [line]
    for child in op.children():
        lines.append(tree_description(child, indent + 1))
    return "\n".join(lines)
