"""XTRA scalar expressions.

Scalar nodes carry the derived properties the paper calls out for scalar
operators (Section 3.2.2): the output type and nullability.  Nullability
drives the Xformer's two-valued-logic rule — a strict equality whose
operands may be NULL must become ``IS NOT DISTINCT FROM`` to preserve Q
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlengine.types import SqlType


class Scalar:
    """Base class for XTRA scalar expressions."""

    __slots__ = ()

    @property
    def sql_type(self) -> SqlType:
        raise NotImplementedError

    @property
    def nullable(self) -> bool:
        return True

    def children(self) -> list["Scalar"]:
        return []


@dataclass
class SConst(Scalar):
    """A literal constant with an explicit SQL type."""

    value: object
    type_: SqlType

    @property
    def sql_type(self) -> SqlType:
        return self.type_

    @property
    def nullable(self) -> bool:
        return self.value is None


@dataclass
class SColRef(Scalar):
    """Reference to a column of the child relation."""

    name: str
    type_: SqlType = SqlType.NULL
    is_nullable: bool = True

    @property
    def sql_type(self) -> SqlType:
        return self.type_

    @property
    def nullable(self) -> bool:
        return self.is_nullable


@dataclass
class SArith(Scalar):
    """Arithmetic: + - * / %% (Q's %% is float division)."""

    op: str
    left: Scalar
    right: Scalar
    type_: SqlType = SqlType.DOUBLE

    @property
    def sql_type(self) -> SqlType:
        return self.type_

    @property
    def nullable(self) -> bool:
        return self.left.nullable or self.right.nullable

    def children(self):
        return [self.left, self.right]


@dataclass
class SCmp(Scalar):
    """Comparison.  ``null_safe`` selects IS [NOT] DISTINCT FROM rendering;
    the binder always emits strict comparisons and the Xformer's
    correctness rule upgrades them (paper Section 3.3)."""

    op: str  # '=', '<>', '<', '<=', '>', '>='
    left: Scalar
    right: Scalar
    null_safe: bool = False

    @property
    def sql_type(self) -> SqlType:
        return SqlType.BOOLEAN

    @property
    def nullable(self) -> bool:
        if self.null_safe:
            return False
        return self.left.nullable or self.right.nullable

    def children(self):
        return [self.left, self.right]


@dataclass
class SBool(Scalar):
    """AND / OR / NOT combinations."""

    op: str
    args: list[Scalar]

    @property
    def sql_type(self) -> SqlType:
        return SqlType.BOOLEAN

    @property
    def nullable(self) -> bool:
        return any(a.nullable for a in self.args)

    def children(self):
        return list(self.args)


@dataclass
class SFunc(Scalar):
    """Scalar function call."""

    name: str
    args: list[Scalar]
    type_: SqlType = SqlType.DOUBLE

    @property
    def sql_type(self) -> SqlType:
        return self.type_

    @property
    def nullable(self) -> bool:
        return True

    def children(self):
        return list(self.args)


@dataclass
class SAgg(Scalar):
    """Aggregate function over the rows of a group."""

    name: str
    arg: Scalar | None  # None = count(*)
    type_: SqlType = SqlType.DOUBLE
    distinct: bool = False

    @property
    def sql_type(self) -> SqlType:
        return self.type_

    def children(self):
        return [self.arg] if self.arg is not None else []


@dataclass
class SWindow(Scalar):
    """Window function with partition/order specification.

    Used for the as-of-join lowering (``lead`` over the right input), for
    implicit order columns (``row_number``), and for Q's uniform verbs
    (``sums`` -> running ``sum``).
    """

    name: str
    args: list[Scalar]
    partition_by: list[Scalar] = field(default_factory=list)
    order_by: list[tuple[Scalar, bool]] = field(default_factory=list)  # (expr, desc)
    frame: str | None = None
    type_: SqlType = SqlType.DOUBLE

    @property
    def sql_type(self) -> SqlType:
        return self.type_

    def children(self):
        out = list(self.args) + list(self.partition_by)
        out.extend(e for e, __ in self.order_by)
        return out


@dataclass
class SCast(Scalar):
    arg: Scalar
    type_: SqlType

    @property
    def sql_type(self) -> SqlType:
        return self.type_

    @property
    def nullable(self) -> bool:
        return self.arg.nullable

    def children(self):
        return [self.arg]


@dataclass
class SCase(Scalar):
    branches: list[tuple[Scalar, Scalar]]
    default: Scalar | None
    type_: SqlType = SqlType.NULL

    @property
    def sql_type(self) -> SqlType:
        if self.type_ != SqlType.NULL:
            return self.type_
        for __, result in self.branches:
            if result.sql_type != SqlType.NULL:
                return result.sql_type
        return self.default.sql_type if self.default else SqlType.NULL

    def children(self):
        out = []
        for c, r in self.branches:
            out.append(c)
            out.append(r)
        if self.default is not None:
            out.append(self.default)
        return out


@dataclass
class SIsNull(Scalar):
    arg: Scalar
    negated: bool = False

    @property
    def sql_type(self) -> SqlType:
        return SqlType.BOOLEAN

    @property
    def nullable(self) -> bool:
        return False

    def children(self):
        return [self.arg]


@dataclass
class SIn(Scalar):
    arg: Scalar
    items: list[Scalar]
    negated: bool = False

    @property
    def sql_type(self) -> SqlType:
        return SqlType.BOOLEAN

    def children(self):
        return [self.arg] + list(self.items)


@dataclass
class SBetween(Scalar):
    arg: Scalar
    low: Scalar
    high: Scalar

    @property
    def sql_type(self) -> SqlType:
        return SqlType.BOOLEAN

    def children(self):
        return [self.arg, self.low, self.high]


@dataclass
class SLike(Scalar):
    arg: Scalar
    pattern: str

    @property
    def sql_type(self) -> SqlType:
        return SqlType.BOOLEAN

    def children(self):
        return [self.arg]


def scalar_columns(scalar: Scalar) -> set[str]:
    """All column names a scalar expression references (for pruning)."""
    out: set[str] = set()

    def walk(node: Scalar) -> None:
        if isinstance(node, SColRef):
            out.add(node.name)
        for child in node.children():
            walk(child)

    walk(scalar)
    return out
