"""HyperQ platform facade.

Wires together the pieces of Figure 1 for the common in-process case: a
PG-compatible engine as the backend, a direct gateway, a server-level
variable scope, and per-client sessions.  The socket-level deployment
(QIPC endpoint + PG-wire gateway) lives in :mod:`repro.server`.
"""

from __future__ import annotations

from repro.cache import ResultCache
from repro.config import HyperQConfig
from repro.core.backends import ExecutionBackend
from repro.core.metadata import BackendPort, MetadataInterface
from repro.core.pipeline import TranslationCache
from repro.core.scopes import ServerScope
from repro.core.session import ExecutionOutcome, HyperQSession
from repro.obs import configure as obs_configure
from repro.qlang.values import QValue
from repro.sqlengine.engine import Engine
from repro.sqlengine.executor import ResultSet
from repro.wlm import WorkloadManager
from repro.wlm.deadline import current_deadline


class DirectGateway(ExecutionBackend):
    """The in-process execution backend: direct engine calls, no network.

    Deadline enforcement is cooperative: there is no socket to time out,
    so the gateway checks the request deadline at the statement boundary
    (the in-memory engine executes statements in microseconds; a
    finer-grained check would buy nothing).
    """

    name = "in-process"

    def __init__(self, engine: Engine):
        self.engine = engine

    def run_sql(self, sql: str) -> ResultSet:
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("backend.execute")
        return self.engine.execute(sql)

    def catalog_version(self) -> int:
        return self.engine.catalog.version


class HyperQ:
    """The data virtualization platform: Q in, PG-compatible SQL out."""

    def __init__(
        self,
        engine: Engine | None = None,
        config: HyperQConfig | None = None,
        backend: BackendPort | None = None,
    ):
        self.config = config or HyperQConfig()
        obs_configure(self.config.observability)
        self.engine = engine or Engine()
        backend = backend or DirectGateway(self.engine)
        # platform-wide workload management, mirroring HyperQServer: one
        # admission domain, shared breakers, backend wrapped before MDI
        self.wlm = (
            WorkloadManager(self.config.wlm)
            if self.config.wlm.enabled
            else None
        )
        if self.wlm is not None:
            backend = self.wlm.wrap_backend(backend)
        self.backend = backend
        self.server_scope = ServerScope()
        self.mdi = MetadataInterface(self.backend, self.config.metadata_cache)
        # one translation cache for the whole platform: repeat statements
        # hit across sessions (the scope fingerprint keeps them honest)
        self.translation_cache = TranslationCache(self.config.translation_cache)
        # likewise one result cache: the version-vector key makes entries
        # safe to share between sessions (docs/CACHING.md)
        self.result_cache = ResultCache(self.config.result_cache)

    def create_session(self) -> HyperQSession:
        return HyperQSession(
            self.backend,
            server_scope=self.server_scope,
            config=self.config,
            mdi=self.mdi,
            translation_cache=self.translation_cache,
            wlm=self.wlm,
            result_cache=self.result_cache,
        )

    # -- conveniences ------------------------------------------------------------

    def q(self, text: str) -> QValue | None:
        """One-shot execution of a Q message in a fresh session."""
        session = self.create_session()
        try:
            return session.execute(text)
        finally:
            session.close()

    def translate(self, text: str) -> ExecutionOutcome:
        """One-shot translation (no data access) of a Q message."""
        session = self.create_session()
        try:
            return session.translate(text)
        finally:
            session.close()
