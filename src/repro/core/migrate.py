"""Schema mapping and data movement — the paper's stated future work.

    "We consider adding tools that perform data movement and the mapping
    of schemas in the future; we expect that development to be greatly
    simplified by Hyper-Q's capabilities." (paper Section 1)

``DataMover`` migrates tables from a kdb+-style source (the reference
interpreter, or any object exposing named Q tables) into a PG-compatible
backend reachable through a :class:`~repro.core.metadata.BackendPort`:

1. **schema mapping** — each Q column type maps to its PG type, with the
   implicit ``ordcol`` appended (the report records every mapping and any
   type degradations, e.g. ``minute``/``second`` -> ``time``);
2. **data movement** — batched ``INSERT`` statements through the backend
   port (so the same code path works against the in-process engine and a
   remote PG-wire server);
3. **verification** — row counts and, optionally, a side-by-side spot
   check of ``select from t`` through a Hyper-Q session.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metadata import BackendPort, MetadataInterface
from repro.core.serializer import quote_ident, quote_string
from repro.errors import QTypeError
from repro.qlang.lexer import date_from_days
from repro.qlang.qtypes import QType
from repro.qlang.values import QKeyedTable, QTable, QVector
from repro.sqlengine.types import SqlType

#: Q -> PG schema mapping, with a note when the mapping loses precision
_SCHEMA_MAP: dict[QType, tuple[SqlType, str | None]] = {
    QType.BOOLEAN: (SqlType.BOOLEAN, None),
    QType.BYTE: (SqlType.SMALLINT, "byte widens to smallint"),
    QType.SHORT: (SqlType.SMALLINT, None),
    QType.INT: (SqlType.INTEGER, None),
    QType.LONG: (SqlType.BIGINT, None),
    QType.REAL: (SqlType.REAL, None),
    QType.FLOAT: (SqlType.DOUBLE, None),
    QType.CHAR: (SqlType.CHAR, None),
    QType.SYMBOL: (SqlType.VARCHAR, None),
    QType.TIMESTAMP: (SqlType.TIMESTAMP, None),
    QType.MONTH: (SqlType.DATE, "month degrades to first-of-month date"),
    QType.DATE: (SqlType.DATE, None),
    QType.DATETIME: (SqlType.TIMESTAMP, None),
    QType.TIMESPAN: (SqlType.INTERVAL, None),
    QType.MINUTE: (SqlType.TIME, "minute degrades to time"),
    QType.SECOND: (SqlType.TIME, "second degrades to time"),
    QType.TIME: (SqlType.TIME, None),
}

_TIME_SCALE = {QType.MINUTE: 60_000, QType.SECOND: 1_000}


@dataclass
class ColumnMapping:
    name: str
    q_type: str
    sql_type: str
    note: str | None = None


@dataclass
class TableReport:
    table: str
    rows_moved: int
    columns: list[ColumnMapping]
    keys: list[str] = field(default_factory=list)
    verified: bool = False


@dataclass
class MigrationReport:
    tables: list[TableReport] = field(default_factory=list)

    @property
    def total_rows(self) -> int:
        return sum(t.rows_moved for t in self.tables)

    def summary(self) -> str:
        lines = [
            f"migrated {len(self.tables)} tables, {self.total_rows} rows"
        ]
        for table in self.tables:
            notes = [
                f"{c.name}: {c.note}" for c in table.columns if c.note
            ]
            status = "verified" if table.verified else "moved"
            keyed = f" (keyed on {', '.join(table.keys)})" if table.keys else ""
            lines.append(
                f"  {table.table}{keyed}: {table.rows_moved} rows, "
                f"{len(table.columns)} columns [{status}]"
            )
            for note in notes:
                lines.append(f"    note: {note}")
        return "\n".join(lines)


class DataMover:
    """Moves Q tables into a PG-compatible backend through a port."""

    def __init__(
        self,
        backend: BackendPort,
        mdi: MetadataInterface | None = None,
        batch_rows: int = 500,
    ):
        self.backend = backend
        self.mdi = mdi
        self.batch_rows = batch_rows

    # -- public API -----------------------------------------------------------

    def migrate(
        self,
        tables: dict[str, QTable | QKeyedTable],
        verify_with=None,
        replace: bool = True,
    ) -> MigrationReport:
        """Create-and-load every table; optionally verify via a session.

        ``verify_with`` is a callable ``(name) -> bool`` (e.g. a
        side-by-side check); when omitted only row counts are verified.
        """
        report = MigrationReport()
        for name, table in tables.items():
            report.tables.append(
                self.migrate_table(name, table, verify_with, replace)
            )
        return report

    def migrate_table(
        self, name: str, table: QTable | QKeyedTable, verify_with=None,
        replace: bool = True,
    ) -> TableReport:
        keys: list[str] = []
        if isinstance(table, QKeyedTable):
            keys = table.key_columns
            table = table.unkey()
        if not isinstance(table, QTable):
            raise QTypeError(f"{name!r} is not a table")

        mappings = self._map_schema(table)
        if replace:
            self.backend.run_sql(f"DROP TABLE IF EXISTS {quote_ident(name)}")
        self._create_table(name, mappings)
        moved = self._move_rows(name, table, mappings)
        if self.mdi is not None:
            if keys:
                self.mdi.annotate_keys(name, keys)
            else:
                self.mdi.invalidate(name)

        verified = self._verify_counts(name, len(table))
        if verified and verify_with is not None:
            verified = bool(verify_with(name))
        return TableReport(name, moved, mappings, keys=keys, verified=verified)

    # -- schema mapping ----------------------------------------------------------

    @staticmethod
    def _map_schema(table: QTable) -> list[ColumnMapping]:
        mappings = []
        for name, column in zip(table.columns, table.data):
            if not isinstance(column, QVector):
                raise QTypeError(
                    f"column {name!r} is a general list; only typed vectors "
                    f"can be moved"
                )
            sql_type, note = _SCHEMA_MAP[column.qtype]
            mappings.append(
                ColumnMapping(
                    name, column.qtype.name.lower(), sql_type.value, note
                )
            )
        mappings.append(
            ColumnMapping("ordcol", "implicit order", SqlType.BIGINT.value)
        )
        return mappings

    def _create_table(self, name: str, mappings: list[ColumnMapping]) -> None:
        columns_sql = ", ".join(
            f"{quote_ident(m.name)} {m.sql_type}" for m in mappings
        )
        self.backend.run_sql(
            f"CREATE TABLE {quote_ident(name)} ({columns_sql})"
        )

    # -- data movement --------------------------------------------------------------

    def _move_rows(
        self, name: str, table: QTable, mappings: list[ColumnMapping]
    ) -> int:
        columns = [m.name for m in mappings]
        column_list = ", ".join(quote_ident(c) for c in columns)
        moved = 0
        n = len(table)
        for start in range(0, n, self.batch_rows):
            end = min(start + self.batch_rows, n)
            values = []
            for i in range(start, end):
                cells = [
                    self._render_cell(column, i)
                    for column in table.data
                ]
                cells.append(str(i))  # ordcol
                values.append("(" + ", ".join(cells) + ")")
            if values:
                self.backend.run_sql(
                    f"INSERT INTO {quote_ident(name)} ({column_list}) "
                    f"VALUES {', '.join(values)}"
                )
                moved += end - start
        return moved

    @staticmethod
    def _render_cell(column: QVector, index: int) -> str:
        qtype = column.qtype
        raw = column.items[index]
        if qtype.is_null(raw):
            return "NULL"
        if isinstance(raw, float) and raw != raw:
            return "NULL"
        if qtype == QType.SYMBOL or qtype == QType.CHAR:
            return quote_string(str(raw))
        if qtype == QType.BOOLEAN:
            return "TRUE" if raw else "FALSE"
        if qtype in (QType.DATE, QType.MONTH):
            days = raw if qtype == QType.DATE else _month_to_days(raw)
            y, m, d = date_from_days(days)
            return f"'{y:04d}-{m:02d}-{d:02d}'"
        if qtype in (QType.TIME, QType.MINUTE, QType.SECOND):
            millis = raw * _TIME_SCALE.get(qtype, 1)
            s, ms = divmod(millis, 1000)
            return f"'{s // 3600:02d}:{s % 3600 // 60:02d}:{s % 60:02d}.{ms:03d}'"
        if qtype in (QType.TIMESTAMP, QType.DATETIME):
            return str(int(raw))
        return repr(raw) if isinstance(raw, float) else str(raw)

    # -- verification ------------------------------------------------------------------

    def _verify_counts(self, name: str, expected: int) -> bool:
        result = self.backend.run_sql(
            f"SELECT count(*) FROM {quote_ident(name)}"
        )
        return result.scalar() == expected


def _month_to_days(months: int) -> int:
    from repro.qlang.lexer import days_from_2000

    year = 2000 + months // 12
    month = months % 12 + 1
    return days_from_2000(year, month, 1)
