"""Shared construction for the admin commands' Q tables.

``wlm[]``, ``shards[]`` and ``rcache[]`` all answer with a small fixed
schema of symbol/long/float columns built from a list of row tuples.
This helper keeps the column-spec-plus-rows idiom in one place so each
command declares *what* it reports, not how to pivot it.
"""

from __future__ import annotations

from repro.qlang.qtypes import QType
from repro.qlang.values import QTable, QVector

#: Q column type -> per-cell coercion applied while pivoting rows
_COERCERS = {
    QType.SYMBOL: str,
    QType.LONG: int,
    QType.FLOAT: float,
}


def admin_table(spec: list[tuple[str, QType]], rows: list[tuple]) -> QTable:
    """Pivot ``rows`` (tuples parallel to ``spec``) into a Q table.

    ``spec`` is an ordered list of ``(column_name, qtype)``; supported
    qtypes are SYMBOL, LONG and FLOAT — everything an admin snapshot
    reports.  Empty ``rows`` yields the empty table of the same schema
    (the "feature disabled" answer).
    """
    vectors = []
    for index, (__, qtype) in enumerate(spec):
        coerce = _COERCERS.get(qtype, str)
        vectors.append(
            QVector(qtype, [coerce(row[index]) for row in rows])
        )
    return QTable([name for name, __ in spec], vectors)
