"""Pluggable execution backends (the right-hand side of Figure 1).

The translation pipeline produces SQL; *where* that SQL runs is an
interchangeable concern.  :class:`ExecutionBackend` is the protocol every
target implements — three implementations ship with the repo:

* :class:`~repro.core.platform.DirectGateway` — the in-process
  ``sqlengine`` (no network, used by tests and the platform facade);
* :class:`~repro.server.gateway.NetworkGateway` — one PG v3 wire
  connection (blocking, one statement at a time);
* :class:`PooledBackend` (here) — multiplexes a bounded pool of backend
  connections with checkout timeouts and dead-connection replacement, so
  many :class:`~repro.core.session.HyperQSession`\\ s execute
  concurrently against one logical backend.

Note on pooling semantics: session-scoped backend state (PG temp tables)
is only safe behind a pool when the backend shares one catalog across
connections, as the in-memory engine does.  Against a real PG,
materialization should use the session's dedicated connection — the
protocol keeps that choice per-deployment.
"""

from __future__ import annotations

import queue
import threading

from repro.core.metadata import BackendPort
from repro.errors import PoolTimeoutError, ProtocolError
from repro.obs import get_logger, metrics

#: pool telemetry, labelled pool=<name>
POOL_SIZE = metrics.gauge(
    "backend_pool_connections", "Open connections held by a backend pool"
)
POOL_IN_USE = metrics.gauge(
    "backend_pool_in_use", "Pooled connections currently checked out"
)
POOL_CHECKOUT_TIMEOUTS = metrics.counter(
    "backend_pool_checkout_timeouts_total",
    "Checkouts that gave up waiting for a free connection",
)
POOL_REPLACEMENTS = metrics.counter(
    "backend_pool_replacements_total",
    "Dead pooled connections discarded and replaced",
)
POOL_CHECKOUT_SECONDS = metrics.histogram(
    "backend_pool_checkout_seconds",
    "Wall-clock wait to check a connection out of the pool",
)

_log = get_logger("core.backends")

#: transport-level failures that mean "this connection is dead" (SQL
#: errors leave the connection healthy and are re-raised as-is)
TRANSPORT_ERRORS = (OSError, ConnectionError, EOFError, ProtocolError)


class ExecutionBackend(BackendPort):
    """Protocol for anything the pipeline's SQL can execute against.

    Extends :class:`~repro.core.metadata.BackendPort` (``run_sql`` +
    ``catalog_version``) with lifecycle hooks the pool needs.
    """

    #: human-readable backend label (metrics, diagnostics)
    name = "backend"

    def ping(self) -> bool:
        """Cheap liveness check; False means the connection is dead."""
        return True

    def close(self) -> None:
        """Release any held resources; idempotent."""
        return None


class PooledBackend(ExecutionBackend):
    """A bounded pool of backend connections behind one ``run_sql``.

    * connections are created lazily by ``factory`` up to ``size``;
    * ``run_sql`` checks a connection out (waiting up to
      ``checkout_timeout`` seconds, then raising
      :class:`~repro.errors.PoolTimeoutError`);
    * a connection that fails its liveness probe at checkout, or dies
      with a transport error mid-statement, is discarded and replaced;
    * DDL observed on any pooled connection bumps the pool's catalog
      version, so metadata/translation caches invalidate exactly as with
      a single connection.
    """

    name = "pooled"

    def __init__(
        self,
        factory,
        size: int = 4,
        checkout_timeout: float = 5.0,
        name: str = "pooled",
    ):
        if size < 1:
            raise ValueError("pool size must be at least 1")
        self._factory = factory
        self.size = size
        self.checkout_timeout = checkout_timeout
        self.name = name
        self._idle: queue.LifoQueue = queue.LifoQueue()
        self._lock = threading.Lock()
        self._open = 0
        self._in_use = 0
        self._catalog_version = 0
        self._closed = False

    # -- introspection ---------------------------------------------------------

    @property
    def open_connections(self) -> int:
        with self._lock:
            return self._open

    @property
    def in_use(self) -> int:
        with self._lock:
            return self._in_use

    # -- ExecutionBackend ------------------------------------------------------

    def run_sql(self, sql: str):
        conn = self._checkout()
        try:
            before = conn.catalog_version()
            result = conn.run_sql(sql)
        except TRANSPORT_ERRORS:
            self._discard(conn)
            raise
        except Exception:
            # a SQL-level rejection: the connection is still healthy
            self._checkin(conn)
            raise
        delta = conn.catalog_version() - before
        if delta > 0:
            with self._lock:
                self._catalog_version += delta
        self._checkin(conn)
        return result

    def catalog_version(self) -> int:
        with self._lock:
            return self._catalog_version

    def close(self) -> None:
        with self._lock:
            self._closed = True
        while True:
            try:
                conn = self._idle.get_nowait()
            except queue.Empty:
                break
            self._close_quietly(conn)
            with self._lock:
                self._open -= 1
        POOL_SIZE.set(self.open_connections, pool=self.name)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- pool mechanics --------------------------------------------------------

    def _checkout(self) -> ExecutionBackend:
        if self._closed:
            raise PoolTimeoutError(f"backend pool {self.name!r} is closed")
        with POOL_CHECKOUT_SECONDS.time(pool=self.name):
            conn = self._acquire()
        with self._lock:
            self._in_use += 1
        POOL_IN_USE.inc(pool=self.name)
        return conn

    def _acquire(self) -> ExecutionBackend:
        try:
            conn = self._idle.get_nowait()
        except queue.Empty:
            grown = self._try_grow()
            if grown is not None:
                return grown
            try:
                conn = self._idle.get(timeout=self.checkout_timeout)
            except queue.Empty:
                POOL_CHECKOUT_TIMEOUTS.inc(pool=self.name)
                raise PoolTimeoutError(
                    f"no backend connection free after "
                    f"{self.checkout_timeout:.1f}s (pool {self.name!r}, "
                    f"size {self.size})"
                ) from None
        if not self._ping_quietly(conn):
            # dead while idle: replace it in place
            self._close_quietly(conn)
            with self._lock:
                self._open -= 1
            POOL_REPLACEMENTS.inc(pool=self.name)
            _log.warning("pool_replaced_dead_connection", pool=self.name)
            replacement = self._try_grow()
            if replacement is not None:
                return replacement
            return self._acquire()
        return conn

    def _try_grow(self) -> ExecutionBackend | None:
        """Open a fresh connection if the pool is under its bound."""
        with self._lock:
            if self._open >= self.size:
                return None
            self._open += 1
        try:
            conn = self._factory()
        except Exception:
            with self._lock:
                self._open -= 1
            raise
        POOL_SIZE.set(self.open_connections, pool=self.name)
        return conn

    def _checkin(self, conn: ExecutionBackend) -> None:
        with self._lock:
            self._in_use -= 1
            closed = self._closed
        POOL_IN_USE.dec(pool=self.name)
        if closed:
            self._close_quietly(conn)
            with self._lock:
                self._open -= 1
            return
        self._idle.put(conn)

    def _discard(self, conn: ExecutionBackend) -> None:
        """Drop a connection that died mid-statement; the next checkout
        replaces it through :meth:`_try_grow`."""
        self._close_quietly(conn)
        with self._lock:
            self._in_use -= 1
            self._open -= 1
        POOL_IN_USE.dec(pool=self.name)
        POOL_REPLACEMENTS.inc(pool=self.name)
        POOL_SIZE.set(self.open_connections, pool=self.name)
        _log.warning("pool_discarded_connection", pool=self.name)

    @staticmethod
    def _ping_quietly(conn) -> bool:
        try:
            ping = getattr(conn, "ping", None)
            return True if ping is None else bool(ping())
        except Exception:
            return False

    def _close_quietly(self, conn) -> None:
        try:
            close = getattr(conn, "close", None)
            if close is not None:
                close()
        except Exception as exc:
            # quiet means the pool keeps going, not that the failure
            # disappears (lint rule HQ002)
            _log.warning(
                "pool_close_failed", pool=self.name, error=str(exc)
            )
