"""Pluggable execution backends (the right-hand side of Figure 1).

The translation pipeline produces SQL; *where* that SQL runs is an
interchangeable concern.  :class:`ExecutionBackend` is the protocol every
target implements — three implementations ship with the repo:

* :class:`~repro.core.platform.DirectGateway` — the in-process
  ``sqlengine`` (no network, used by tests and the platform facade);
* :class:`~repro.server.gateway.NetworkGateway` — one PG v3 wire
  connection (blocking, one statement at a time);
* :class:`PooledBackend` (here) — multiplexes a bounded pool of backend
  connections with checkout timeouts and dead-connection replacement, so
  many :class:`~repro.core.session.HyperQSession`\\ s execute
  concurrently against one logical backend.

Note on pooling semantics: session-scoped backend state (PG temp tables)
is only safe behind a pool when the backend shares one catalog across
connections, as the in-memory engine does.  Against a real PG,
materialization should use the session's dedicated connection — the
protocol keeps that choice per-deployment.
"""

from __future__ import annotations

import time

from repro.analysis.concurrency.locks import make_condition
from repro.core.metadata import BackendPort
from repro.errors import PoolTimeoutError, ProtocolError
from repro.obs import get_logger, metrics

#: pool telemetry, labelled pool=<name>
POOL_SIZE = metrics.gauge(
    "backend_pool_connections", "Open connections held by a backend pool"
)
POOL_IN_USE = metrics.gauge(
    "backend_pool_in_use", "Pooled connections currently checked out"
)
POOL_CHECKOUT_TIMEOUTS = metrics.counter(
    "backend_pool_checkout_timeouts_total",
    "Checkouts that gave up waiting for a free connection",
)
POOL_REPLACEMENTS = metrics.counter(
    "backend_pool_replacements_total",
    "Dead pooled connections discarded and replaced",
)
POOL_CHECKOUT_SECONDS = metrics.histogram(
    "backend_pool_checkout_seconds",
    "Wall-clock wait to check a connection out of the pool",
)

_log = get_logger("core.backends")

#: transport-level failures that mean "this connection is dead" (SQL
#: errors leave the connection healthy and are re-raised as-is)
TRANSPORT_ERRORS = (OSError, ConnectionError, EOFError, ProtocolError)


class ExecutionBackend(BackendPort):
    """Protocol for anything the pipeline's SQL can execute against.

    Extends :class:`~repro.core.metadata.BackendPort` (``run_sql`` +
    ``catalog_version``) with lifecycle hooks the pool needs.
    """

    #: human-readable backend label (metrics, diagnostics)
    name = "backend"

    def ping(self) -> bool:
        """Cheap liveness check; False means the connection is dead."""
        return True

    def close(self) -> None:
        """Release any held resources; idempotent."""
        return None


class PooledBackend(ExecutionBackend):
    """A bounded pool of backend connections behind one ``run_sql``.

    * connections are created lazily by ``factory`` up to ``size``;
    * ``run_sql`` checks a connection out (waiting up to
      ``checkout_timeout`` seconds, then raising
      :class:`~repro.errors.PoolTimeoutError`);
    * a connection that fails its liveness probe at checkout, or dies
      with a transport error mid-statement, is discarded and replaced;
    * DDL observed on any pooled connection bumps the pool's catalog
      version, so metadata/translation caches invalidate exactly as with
      a single connection.

    All pool state lives behind one :class:`threading.Condition`, which
    gives two invariants the previous queue-based design could not:
    ``open <= size`` at every instant (a slot is *reserved* under the
    lock before the factory runs, so concurrent checkouts cannot
    transiently overshoot), and one checkout observes one overall
    ``checkout_timeout`` even when it has to discard dead idle
    connections along the way (the deadline is fixed on entry, not reset
    per retry).
    """

    name = "pooled"

    def __init__(
        self,
        factory,
        size: int = 4,
        checkout_timeout: float = 5.0,
        name: str = "pooled",
    ):
        if size < 1:
            raise ValueError("pool size must be at least 1")
        self._factory = factory
        self.size = size
        self.checkout_timeout = checkout_timeout
        self.name = name
        self._cond = make_condition("core.backend_pool")
        self._idle: list[ExecutionBackend] = []  # LIFO: last in, first out
        self._open = 0
        self._in_use = 0
        self._catalog_version = 0
        self._closed = False

    # -- introspection ---------------------------------------------------------

    @property
    def open_connections(self) -> int:
        with self._cond:
            return self._open

    @property
    def in_use(self) -> int:
        with self._cond:
            return self._in_use

    # -- ExecutionBackend ------------------------------------------------------

    def run_sql(self, sql: str):
        conn = self._checkout()
        try:
            result = conn.run_sql(sql)
        except TRANSPORT_ERRORS:
            self._discard(conn)
            raise
        except Exception:
            # a SQL-level rejection: the connection is still healthy
            self._checkin(conn)
            raise
        self._observe_version(conn)
        self._checkin(conn)
        return result

    def _observe_version(self, conn: ExecutionBackend) -> None:
        """Fold one connection's catalog version into the pool maximum.

        The pool version is the *max observed* across connections, not an
        accumulated delta: a freshly created connection already carries
        the backend's current version, and delta accounting from a zero
        baseline under-reports it — leaving stale translations cached
        after out-of-band DDL.
        """
        try:
            version = conn.catalog_version()
        except TRANSPORT_ERRORS:
            return
        with self._cond:
            if version > self._catalog_version:
                self._catalog_version = version

    def catalog_version(self) -> int:
        probe = None
        with self._cond:
            # probe the most recently used idle connection so DDL done
            # out-of-band (directly on the backend) is visible without
            # waiting for the next statement through the pool; pop it
            # while probing — catalog_version may be a wire round-trip,
            # and a concurrent checkout must not run a statement on the
            # same connection mid-probe
            if self._idle:
                probe = self._idle.pop()
                self._in_use += 1
            never_connected = self._open == 0 and not self._closed
        if probe is not None:
            POOL_IN_USE.inc(pool=self.name)
            try:
                self._observe_version(probe)
            finally:
                self._checkin(probe)
        elif never_connected:
            # before the first statement the pool would report version 0
            # while the backend may already be far ahead; prime one
            # connection so translation-cache keys are right from the
            # first query
            try:
                conn = self._checkout()
            except (PoolTimeoutError, *TRANSPORT_ERRORS) as exc:
                _log.warning(
                    "pool_version_probe_failed",
                    pool=self.name, error=str(exc),
                )
            else:
                self._checkin(conn)
        with self._cond:
            return self._catalog_version

    def close(self) -> None:
        with self._cond:
            self._closed = True
            idle, self._idle = self._idle, []
            self._open -= len(idle)
            # wake every blocked checkout so it fails fast ("closed"),
            # not after its full timeout
            self._cond.notify_all()
        for conn in idle:
            self._close_quietly(conn)
        POOL_SIZE.set(self.open_connections, pool=self.name)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- pool mechanics --------------------------------------------------------

    def _checkout(self) -> ExecutionBackend:
        with POOL_CHECKOUT_SECONDS.time(pool=self.name):
            conn = self._acquire()
        POOL_IN_USE.inc(pool=self.name)
        return conn

    def _acquire(self) -> ExecutionBackend:
        """Take a connection, honouring one overall checkout deadline.

        Under the condition lock the pool either hands out an idle
        connection, reserves a slot for a fresh one, or waits.  Slow work
        (factory call, liveness probe, close) happens outside the lock
        against the reserved accounting, so ``open``/``in_use`` never
        overshoot and other checkouts are never serialized behind I/O.
        """
        deadline = time.monotonic() + self.checkout_timeout
        while True:
            create = False
            with self._cond:
                while True:
                    if self._closed:
                        raise PoolTimeoutError(
                            f"backend pool {self.name!r} is closed"
                        )
                    if self._idle:
                        conn = self._idle.pop()
                        self._in_use += 1
                        break
                    if self._open < self.size:
                        # reserve before the (slow, unlocked) factory
                        # call so open <= size holds at every instant
                        self._open += 1
                        self._in_use += 1
                        create = True
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        POOL_CHECKOUT_TIMEOUTS.inc(pool=self.name)
                        raise PoolTimeoutError(
                            f"no backend connection free after "
                            f"{self.checkout_timeout:.1f}s (pool "
                            f"{self.name!r}, size {self.size})"
                        )
                    self._cond.wait(remaining)
            if create:
                try:
                    conn = self._factory()
                except Exception:
                    self._release_slot()
                    raise
                POOL_SIZE.set(self.open_connections, pool=self.name)
                # a fresh connection already carries the backend's
                # current catalog version — fold it in immediately so
                # the pool never reports a stale (lower) version
                self._observe_version(conn)
                return conn
            if self._ping_quietly(conn):
                return conn
            # dead while idle: drop it and retry against the *same*
            # deadline — replacement must not restart the clock
            self._close_quietly(conn)
            self._release_slot()
            POOL_REPLACEMENTS.inc(pool=self.name)
            POOL_SIZE.set(self.open_connections, pool=self.name)
            _log.warning("pool_replaced_dead_connection", pool=self.name)

    def _release_slot(self) -> None:
        """Give back a reserved slot (failed create or dead idle conn)."""
        with self._cond:
            self._open -= 1
            self._in_use -= 1
            self._cond.notify()

    def _checkin(self, conn: ExecutionBackend) -> None:
        close_it = False
        with self._cond:
            self._in_use -= 1
            if self._closed:
                # close() already drained the idle list; a connection
                # returned after that must be closed here, not leaked
                # back into a dead pool
                self._open -= 1
                close_it = True
            else:
                self._idle.append(conn)
            self._cond.notify()
        POOL_IN_USE.dec(pool=self.name)
        if close_it:
            self._close_quietly(conn)
            POOL_SIZE.set(self.open_connections, pool=self.name)

    def _discard(self, conn: ExecutionBackend) -> None:
        """Drop a connection that died mid-statement; the freed slot lets
        the next checkout open a replacement."""
        self._close_quietly(conn)
        self._release_slot()
        POOL_IN_USE.dec(pool=self.name)
        POOL_REPLACEMENTS.inc(pool=self.name)
        POOL_SIZE.set(self.open_connections, pool=self.name)
        _log.warning("pool_discarded_connection", pool=self.name)

    @staticmethod
    def _ping_quietly(conn) -> bool:
        try:
            ping = getattr(conn, "ping", None)
            return True if ping is None else bool(ping())
        except Exception:
            return False

    def _close_quietly(self, conn) -> None:
        try:
            close = getattr(conn, "close", None)
            if close is not None:
                close()
        except Exception as exc:
            # quiet means the pool keeps going, not that the failure
            # disappears (lint rule HQ002)
            _log.warning(
                "pool_close_failed", pool=self.name, error=str(exc)
            )
