"""Process-based shard workers: true multi-core scatter parallelism.

The thread-mode :class:`~repro.core.sharded.ShardedBackend` hosts every
shard engine in this process, so parallel scatter arithmetic serializes
on the GIL — PR 7's scatter group-by "speedup" had to ship ungated.
This module moves each shard into its own spawned child process (the
paper's per-unit-of-work Erlang process, at OS granularity):

* :func:`spawn_process_shards` warm-starts a pool of workers — every
  child is launched first, then a handshake barrier waits for each one's
  readiness line and QIPC hello, so boot cost is paid in parallel;
* each worker (:mod:`repro.server.shardworker`) hosts a partition
  :class:`~repro.sqlengine.engine.Engine` behind a minimal
  :class:`~repro.server.endpoint.QipcEndpoint`;
* :class:`ProcessShardBackend` implements the
  :class:`~repro.core.backends.ExecutionBackend` protocol over the
  existing QIPC client (:class:`~repro.server.client.QConnection`:
  ``BufferedSocketReader`` framing, batched pack kernels, transparent
  large-payload compression), so per-shard resilience — retries,
  breakers, hedging — composes unchanged through ``ShardHandle``.

Lifecycle: partition loads are chunked (:func:`iter_load_chunks`, so a
wide fact-table partition never nears the endpoint's frame limit) and
journaled coordinator-side; a crashed
worker is detected by its broken socket, respawned (bounded by
``ShardingConfig.max_respawns``) and its partition + replicated writes
replayed, while the statement that noticed surfaces as a transient
``ConnectionError`` the retry layer absorbs.  The active request
deadline crosses the process boundary twice: as a remaining-budget
field the worker re-arms, and as a socket read timeout on the
coordinator.  ``close()`` drains gracefully (async shutdown message,
bounded wait, then terminate/kill).

Wire codec: results cross as a tagged QIPC envelope.  Uniform long /
float / boolean / symbol columns ride native QIPC vectors (exact
round-trip, batched kernels); anything else — NULL-bearing, mixed,
Decimal — falls back to a pickled byte vector, so process-mode results
are *byte-identical* to thread-mode ones.  Errors cross with their
class name and SQLSTATE so breaker/retry classification is preserved.

Process spawning is confined to this module and the worker entrypoint
(lint rule HQ010).
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import selectors
import subprocess
import sys
import time

from repro.analysis.concurrency.locks import make_lock
from repro.config import ShardingConfig
from repro.core.backends import ExecutionBackend
from repro.errors import (
    BackendSqlError,
    DeadlineExceededError,
    ProtocolError,
    ReproError,
)
from repro.obs import get_logger, metrics
from repro.qlang.qtypes import QType
from repro.qlang.values import QList, QValue, QVector
from repro.server.client import QConnection
from repro.sqlengine.catalog import Column
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import SqlType
from repro.wlm.deadline import current_deadline

_log = get_logger("core.procshard")

SHARD_PROC_SPAWNS = metrics.counter(
    "shard_proc_spawns_total", "Shard worker processes launched"
)
SHARD_PROC_RESTARTS = metrics.counter(
    "shard_proc_restarts_total", "Shard worker processes respawned after a crash"
)

#: readiness line a worker prints once its endpoint accepts connections
READY_PREFIX = "HQ-SHARD-READY"

#: SQLSTATE surfaced when the respawn budget is exhausted (class 58 —
#: system error — is deliberately *not* transient for the retry layer)
RESPAWN_EXHAUSTED_SQLSTATE = "58000"

#: int64 range natively representable by a QIPC long vector
_I64_MIN, _I64_MAX = -(2 ** 63), 2 ** 63 - 1

#: statements journaled for replay onto a respawned worker
_WRITE_VERBS = ("create", "drop", "alter", "insert", "update", "delete",
                "truncate")


# ---------------------------------------------------------------------------
# Result / error envelope codec (shared by coordinator and worker)
# ---------------------------------------------------------------------------


def _chars(text: str) -> QVector:
    return QVector(QType.CHAR, list(text))


def _text(value: QValue) -> str:
    if isinstance(value, QVector) and value.qtype == QType.CHAR:
        return "".join(value.items)
    raise ProtocolError("malformed shard envelope: expected a char vector")


def _tag_column(values: list) -> tuple[str, QValue]:
    """Pick the densest exact wire representation for one column.

    Uniform primitive columns ride native QIPC vectors (one batched
    ``struct.pack`` per column); anything else pickles.  Tags must be
    *exact*: a value that would not round-trip bit-identically (bools
    inside a long column, NaN payloads aside — floats round-trip via
    the ``d`` format) falls through to the pickle tag.
    """
    if values and all(
        type(v) is int and _I64_MIN <= v <= _I64_MAX for v in values
    ):
        return "j", QVector(QType.LONG, values)
    if values and all(type(v) is float for v in values):
        return "f", QVector(QType.FLOAT, values)
    if values and all(type(v) is bool for v in values):
        return "b", QVector(QType.BOOLEAN, values)
    if values and all(type(v) is str and "\x00" not in v for v in values):
        return "s", QVector(QType.SYMBOL, values)
    blob = pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)
    return "p", QVector(QType.BYTE, list(blob))


def _untag_column(tag: str, payload: QValue) -> list:
    if tag == "p":
        return pickle.loads(bytes(payload.items))
    return list(payload.items)


def encode_result(result: ResultSet) -> QList:
    """``ResultSet`` -> QIPC envelope (exact round-trip)."""
    columns = []
    for column, data in zip(result.columns, result.column_data):
        tag, payload = _tag_column(list(data))
        columns.append(QList([
            _chars(column.name),
            _chars(column.sql_type.value),
            _chars(column.type_text),
            _chars(tag),
            payload,
        ]))
    return QList([
        _chars("result"), _chars(result.command), QList(columns),
    ])


def encode_exception(exc: Exception) -> QList:
    """Exception -> envelope carrying class, message and SQLSTATE."""
    code = getattr(exc, "code", "") or ""
    message = (
        exc.backend_message
        if isinstance(exc, BackendSqlError)
        else str(exc)
    )
    return QList([
        _chars("error"),
        _chars(type(exc).__name__),
        _chars(message),
        _chars(code if isinstance(code, str) else ""),
    ])


def encode_scalar(value) -> QList:
    """JSON-representable scalar -> envelope (ping/version replies)."""
    return QList([_chars("value"), _chars(json.dumps(value))])


def _rebuild_exception(class_name: str, message: str, code: str) -> Exception:
    """Reconstruct the worker's exception coordinator-side.

    Known :mod:`repro.errors` classes come back as themselves (single
    message argument; ``BackendSqlError`` keeps its SQLSTATE), so the
    retry layer's transient classification and the session's error
    rendering behave exactly as they would against an in-process engine.
    """
    if class_name == "BackendSqlError":
        return BackendSqlError(message, code=code or "XX000")
    from repro import errors as _errors

    klass = getattr(_errors, class_name, None)
    if isinstance(klass, type) and issubclass(klass, ReproError):
        try:
            return klass(message)
        except TypeError:
            pass
    return BackendSqlError(f"{class_name}: {message}", code=code or "XX000")


def decode_reply(value: QValue):
    """Envelope -> ``ResultSet`` / scalar, or raise the carried error."""
    if not isinstance(value, QList) or not value.items:
        raise ProtocolError("malformed shard worker reply")
    kind = _text(value.items[0])
    if kind == "error":
        raise _rebuild_exception(
            _text(value.items[1]), _text(value.items[2]),
            _text(value.items[3]),
        )
    if kind == "value":
        return json.loads(_text(value.items[1]))
    if kind != "result":
        raise ProtocolError(f"unknown shard envelope kind {kind!r}")
    command = _text(value.items[1])
    columns: list[Column] = []
    data: list[list] = []
    for entry in value.items[2].items:
        name = _text(entry.items[0])
        sql_type = SqlType(_text(entry.items[1]))
        type_text = _text(entry.items[2])
        tag = _text(entry.items[3])
        columns.append(Column(name, sql_type, type_text))
        data.append(_untag_column(tag, entry.items[4]))
    return ResultSet.from_columns(columns, data, command=command)


def pack_load(columns: list[Column], rows: list) -> str:
    """Bulk-load payload: pickled columns+rows as base85 text (rides the
    JSON op envelope; QIPC framing compresses large payloads itself)."""
    blob = pickle.dumps(
        (columns, [list(r) for r in rows]),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return base64.b85encode(blob).decode("ascii")


def unpack_load(text: str) -> tuple[list[Column], list[list]]:
    return pickle.loads(base64.b85decode(text.encode("ascii")))


#: per-chunk payload target for partition loads — far under the worker
#: endpoint's ``max_message_bytes`` (64 MiB), because a single frame
#: holding a wide partition (the workload's 600-column fact table tops
#: 80 MB at bench scale) would trip the reactor's frame limit and get
#: the connection fatally closed mid-load
LOAD_CHUNK_BYTES = 8 * 1024 * 1024


def iter_load_chunks(
    columns: list[Column], rows: list, target_bytes: int | None = None
):
    """Pack a partition as one or more load blobs, each sized near
    ``target_bytes``.  The row split is estimated from the whole-table
    blob (uniform row cost is a good fit for columnar fact tables); the
    safety margin to the frame limit absorbs the estimate's skew."""
    target = target_bytes or LOAD_CHUNK_BYTES
    blob = pack_load(columns, rows)
    if len(blob) <= target or len(rows) <= 1:
        yield blob
        return
    per_chunk = max(1, (len(rows) * target) // len(blob))
    for start in range(0, len(rows), per_chunk):
        yield pack_load(columns, rows[start:start + per_chunk])


# ---------------------------------------------------------------------------
# The coordinator-side backend
# ---------------------------------------------------------------------------


def _read_rss_kb(pid: int) -> int:
    """Resident set size of ``pid`` in KiB via procfs; 0 when unknown."""
    try:
        with open(f"/proc/{pid}/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return 0
    return 0


class ProcessShardBackend(ExecutionBackend):
    """One shard partition hosted in a spawned worker process.

    Implements ``ExecutionBackend`` over a QIPC connection to the
    worker.  Transport failures trigger a bounded respawn (with
    partition reload and write replay) and then surface as
    ``ConnectionError`` — a transient the per-shard
    :class:`~repro.wlm.retry.ResilientBackend` retries; a worker that
    outlives its deadline surfaces as ``DeadlineExceededError`` without
    being killed.
    """

    def __init__(self, index: int, config: ShardingConfig | None = None):
        self.index = index
        self.config = config or ShardingConfig()
        self.name = f"procshard{index}"
        self._lock = make_lock("core.procshard")
        self._proc: subprocess.Popen | None = None
        self._conn: QConnection | None = None
        self._generation = 0
        self.restarts = 0
        self._closed = False
        #: partition journal: table -> (columns, rows) for crash reload
        self._tables: dict[str, tuple[list[Column], list]] = {}
        #: replicated writes (broadcast DDL/DML) replayed after reload
        self._writes: list[str] = []
        #: test hook — SIGKILL the worker when the next statement arrives
        #: (deterministic mid-scatter crash injection)
        self.kill_next_request = False

    # -- lifecycle ---------------------------------------------------------

    def launch(self) -> None:
        """Fork the worker without waiting (warm-start pools launch every
        shard first, then barrier on :meth:`await_ready`)."""
        with self._lock:
            if self._proc is None:
                self._proc = self._spawn_locked()

    def await_ready(self) -> None:
        """Block until the launched worker accepts QIPC connections."""
        with self._lock:
            if self._conn is None:
                self._connect_locked()

    def start(self) -> None:
        self.launch()
        self.await_ready()

    def _spawn_locked(self) -> subprocess.Popen:
        import repro

        env = dict(os.environ)
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
        SHARD_PROC_SPAWNS.inc(shard=str(self.index))
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.server.shardworker",
                "--shard", str(self.index),
                "--parent", str(os.getpid()),
            ],
            stdout=subprocess.PIPE,
            env=env,
        )
        _log.info("shard_worker_spawned", shard=self.index, pid=proc.pid)
        return proc

    def _connect_locked(self) -> None:
        proc = self._proc
        if proc is None:
            proc = self._proc = self._spawn_locked()
        port = self._read_ready_port(proc)
        conn = QConnection(
            "127.0.0.1", port,
            connect_timeout=self.config.worker_startup_timeout,
        )
        conn.connect()
        self._conn = conn
        # reload the journaled partition + replayed writes (no-ops on a
        # first boot: both journals are empty)
        for table, (columns, rows) in self._tables.items():
            self._send_load_locked(table, columns, rows)
        for sql in self._writes:
            try:
                self._exchange_locked({"op": "sql", "sql": sql})
            except ReproError as exc:
                _log.warning(
                    "shard_replay_failed", shard=self.index,
                    sql=sql[:80], error=str(exc),
                )

    def _read_ready_port(self, proc: subprocess.Popen) -> int:
        """Parse ``HQ-SHARD-READY <port>`` off the worker's stdout, with
        the startup timeout as the handshake barrier."""
        timeout = self.config.worker_startup_timeout
        expires = time.monotonic() + timeout
        stream = proc.stdout
        assert stream is not None
        selector = selectors.DefaultSelector()
        selector.register(stream, selectors.EVENT_READ)
        buffer = b""
        try:
            while b"\n" not in buffer:
                if proc.poll() is not None:
                    raise ProtocolError(
                        f"shard {self.index} worker exited with "
                        f"{proc.returncode} before becoming ready"
                    )
                remaining = expires - time.monotonic()
                if remaining <= 0:
                    raise ProtocolError(
                        f"shard {self.index} worker not ready within "
                        f"{timeout:.1f}s"
                    )
                if selector.select(min(remaining, 0.25)):
                    chunk = os.read(stream.fileno(), 4096)
                    if not chunk:
                        raise ProtocolError(
                            f"shard {self.index} worker closed stdout "
                            f"before becoming ready"
                        )
                    buffer += chunk
        finally:
            selector.close()
        line = buffer.split(b"\n", 1)[0].decode("ascii", "replace").strip()
        prefix, _, port_text = line.partition(" ")
        if prefix != READY_PREFIX:
            raise ProtocolError(
                f"shard {self.index} worker printed {line!r}, expected "
                f"'{READY_PREFIX} <port>'"
            )
        return int(port_text)

    # -- respawn -----------------------------------------------------------

    def _respawn(self, generation: int, cause: str) -> None:
        """Bounded automatic respawn; a concurrent statement that already
        respawned this generation makes this a no-op."""
        with self._lock:
            if self._closed or generation != self._generation:
                return
            self._generation += 1
            if self.restarts >= self.config.max_respawns:
                raise BackendSqlError(
                    f"shard {self.index} worker exceeded its respawn "
                    f"budget ({self.config.max_respawns}) after: {cause}",
                    code=RESPAWN_EXHAUSTED_SQLSTATE,
                )
            self.restarts += 1
            SHARD_PROC_RESTARTS.inc(shard=str(self.index))
            _log.warning(
                "shard_worker_respawn", shard=self.index,
                restarts=self.restarts, cause=cause[:120],
            )
            self._teardown_locked(graceful=False)
            self._connect_locked()

    def _reconnect(self, generation: int) -> None:
        """Fresh socket to a *live* worker (the old stream is desynced
        after an abandoned read); never respawns."""
        with self._lock:
            if self._closed or generation != self._generation:
                return
            self._generation += 1
            conn, self._conn = self._conn, None
            if conn is not None:
                conn.close()
            self._connect_locked()

    def _teardown_locked(self, graceful: bool) -> None:
        conn, self._conn = self._conn, None
        proc, self._proc = self._proc, None
        if conn is not None:
            if graceful:
                try:
                    conn.query_async(json.dumps({"op": "shutdown"}))
                except TRANSPORT_FAILURES:
                    pass  # already dead: nothing to drain
            conn.close()
        if proc is None:
            return
        if proc.stdout is not None:
            proc.stdout.close()
        try:
            proc.wait(
                timeout=self.config.worker_drain_timeout if graceful else 0
            )
        except subprocess.TimeoutExpired:
            proc.terminate()
            try:
                proc.wait(timeout=self.config.worker_drain_timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    # -- request plumbing --------------------------------------------------

    def _exchange_locked(self, envelope: dict, timeout: float | None = None):
        reply = self._conn.query(json.dumps(envelope), timeout=timeout)
        return decode_reply(reply)

    def _request(self, envelope: dict, timeout: float | None = None):
        with self._lock:
            if self._closed:
                raise ProtocolError(
                    f"shard {self.index} worker backend is closed"
                )
            if self._conn is None:
                self._connect_locked()
            generation = self._generation
            conn, proc = self._conn, self._proc
        if (
            self.kill_next_request
            and proc is not None
            and envelope.get("op") == "sql"
        ):
            # deterministic crash injection: the worker dies exactly as
            # this statement reaches it (mid-scatter for fanout plans)
            self.kill_next_request = False
            proc.kill()
        try:
            reply = conn.query(json.dumps(envelope), timeout=timeout)
        except TimeoutError:
            if proc is not None and proc.poll() is None:
                self._reconnect(generation)
                raise DeadlineExceededError(
                    f"shard {self.index} worker read timed out",
                    what=f"procshard{self.index}.recv",
                ) from None
            self._respawn(generation, "worker died during a timed read")
            raise ConnectionError(
                f"shard {self.index} worker died mid-statement; respawned"
            ) from None
        except TRANSPORT_FAILURES as exc:
            self._respawn(generation, str(exc))
            raise ConnectionError(
                f"shard {self.index} worker connection failed "
                f"({type(exc).__name__}: {exc}); worker respawned"
            ) from exc
        return decode_reply(reply)

    # -- ExecutionBackend --------------------------------------------------

    def run_sql(self, sql: str) -> ResultSet:
        deadline = current_deadline()
        envelope: dict = {"op": "sql", "sql": sql}
        timeout = None
        if deadline is not None:
            deadline.check(f"procshard{self.index}.send")
            remaining = max(deadline.remaining(), 0.001)
            envelope["deadline_ms"] = remaining * 1000.0
            timeout = remaining
        result = self._request(envelope, timeout=timeout)
        if self._is_write(sql):
            with self._lock:
                self._writes.append(sql)
        return result

    @staticmethod
    def _is_write(sql: str) -> bool:
        return sql.lstrip().lower().startswith(_WRITE_VERBS)

    def catalog_version(self) -> int:
        try:
            return int(self._request({"op": "version"}))
        except ConnectionError:
            # the failed probe already triggered a respawn; version reads
            # are idempotent and sit on the metadata path, which has no
            # retry layer above it, so ask the fresh worker directly
            return int(self._request({"op": "version"}))

    def ping(self) -> bool:
        with self._lock:
            if self._closed or self._proc is None:
                return False
            if self._proc.poll() is not None:
                return False
            conn = self._conn
        if conn is None:
            return False
        try:
            reply = conn.query(
                json.dumps({"op": "ping"}),
                timeout=self.config.worker_ping_timeout,
            )
            return decode_reply(reply) == "pong"
        except (TimeoutError, *TRANSPORT_FAILURES):
            return False

    def close(self) -> None:
        """Graceful drain: shutdown message, bounded wait, escalate."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._teardown_locked(graceful=True)

    # -- data plane --------------------------------------------------------

    def load_columns(
        self, name: str, columns: list[Column], rows: list
    ) -> None:
        """Bulk-load hook ``ShardHandle.load_table`` discovers; the load
        is journaled so a respawn can restore the partition."""
        with self._lock:
            if self._closed:
                raise ProtocolError(
                    f"shard {self.index} worker backend is closed"
                )
            if self._conn is None:
                self._connect_locked()
            self._send_load_locked(name, columns, rows)
            self._tables[name] = (list(columns), [list(r) for r in rows])

    def _send_load_locked(
        self, name: str, columns: list[Column], rows: list
    ) -> None:
        try:
            for seq, blob in enumerate(iter_load_chunks(columns, rows)):
                self._exchange_locked({
                    "op": "load", "table": name, "blob": blob, "seq": seq,
                })
        except TRANSPORT_FAILURES as exc:
            raise ConnectionError(
                f"shard {self.index} worker lost during partition load of "
                f"{name!r} ({type(exc).__name__}: {exc})"
            ) from exc

    # -- admin -------------------------------------------------------------

    def process_info(self) -> dict:
        """Row payload for the ``shards[]`` admin command."""
        proc = self._proc
        pid = proc.pid if proc is not None else -1
        alive = proc is not None and proc.poll() is None
        return {
            "mode": "process",
            "pid": pid,
            "restarts": self.restarts,
            "rss_kb": _read_rss_kb(pid) if alive else 0,
            "alive": alive,
        }


#: transport failures that mean "the worker (or its socket) is gone"
TRANSPORT_FAILURES = (OSError, ConnectionError, EOFError, ProtocolError)


def spawn_process_shards(
    count: int, config: ShardingConfig | None = None
) -> list[ProcessShardBackend]:
    """Warm-start a pool of ``count`` shard workers.

    Every child is launched before any is awaited (parallel boot), then
    the handshake barrier confirms each worker accepts QIPC connections.
    A partial failure tears the whole pool down.
    """
    config = config or ShardingConfig()
    shards = [ProcessShardBackend(i, config) for i in range(count)]
    try:
        for shard in shards:
            shard.launch()
        for shard in shards:
            shard.await_ready()
    except BaseException:
        for shard in shards:
            try:
                shard.close()
            except TRANSPORT_FAILURES as exc:
                _log.warning(
                    "shard_pool_cleanup_failed", shard=shard.index,
                    error=str(exc),
                )
        raise
    return shards
