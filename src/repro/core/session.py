"""HyperQSession: orchestration over the translation pipeline (Figure 1).

A session owns a session-level variable scope, a metadata interface, one
:class:`~repro.core.pipeline.TranslationPipeline` (built once; the active
scope is passed per statement), the translation cache, the Protocol
Translator, and the eager-materialization machinery.  ``execute`` runs Q
text end-to-end against the backend; ``translate`` stops after
serialization and returns the SQL (plus stage timings), which is what the
evaluation section measures.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.cache import QueryExecutor, ResultCache, TempDataTier
from repro.config import HyperQConfig, MaterializationMode
from repro.core.algebrizer.binder import BoundScalar, BoundTable
from repro.core.crosscompiler import (
    ProtocolTranslator,
    pivot_result,
)
from repro.core.materialize import MaterializationStep, Materializer
from repro.core.metadata import BackendPort, MetadataInterface
from repro.core.pipeline import (
    StageTimings,
    TranslationCache,
    TranslationPipeline,
    TranslationResult,
    stage_span,
)
from repro.core.scopes import (
    LocalScope,
    Scope,
    ServerScope,
    SessionScope,
    VarKind,
)
from repro.errors import (
    QNameError,
    QNotSupportedError,
    QRankError,
    QTypeError,
    TranslationError,
)
from repro.obs import configure as obs_configure
from repro.obs import get_logger, metrics, tracing
from repro.qlang import ast
from repro.qlang.parser import parse
from repro.qlang.values import QValue
from repro.wlm import WorkloadManager, classify_program, request_scope

#: Q messages run through sessions, labelled mode=execute|translate
RUNS_TOTAL = metrics.counter(
    "hyperq_runs_total", "Q messages processed by Hyper-Q sessions"
)

_log = get_logger("core.session")


@dataclass
class ExecutionOutcome:
    """Result of running one Q message through Hyper-Q."""

    value: QValue | None
    sql_statements: list[str] = field(default_factory=list)
    timings: StageTimings = field(default_factory=StageTimings)
    rule_applications: dict[str, int] = field(default_factory=dict)
    #: messages answered from the translation cache (no pipeline run)
    cache_hits: int = 0
    #: pure-translation result of the last statement, feeding the cache;
    #: cleared whenever a statement takes a side-effecting path
    _last_translation: TranslationResult | None = field(
        default=None, repr=False
    )
    _cacheable: bool = field(default=True, repr=False)

    def mark_uncacheable(self) -> None:
        self._cacheable = False
        self._last_translation = None


class HyperQSession:
    def __init__(
        self,
        backend: BackendPort,
        server_scope: ServerScope | None = None,
        config: HyperQConfig | None = None,
        mdi: MetadataInterface | None = None,
        translation_cache: TranslationCache | None = None,
        wlm: WorkloadManager | None = None,
        result_cache: ResultCache | None = None,
    ):
        self.config = config or HyperQConfig()
        obs_configure(self.config.observability)
        # workload management: a server passes its shared manager (one
        # admission domain per deployment) along with an already-wrapped
        # backend; a standalone session builds a private manager and wraps
        # the backend itself so retries/breaker/faults apply to everything
        # it executes.
        if wlm is None and self.config.wlm.enabled:
            wlm = WorkloadManager(self.config.wlm)
            backend = wlm.wrap_backend(backend)
        self.wlm = wlm
        self.backend = backend
        self.mdi = mdi or MetadataInterface(backend, self.config.metadata_cache)
        self.server_scope = server_scope or ServerScope()
        self.session_scope = SessionScope(self.server_scope)
        # one pipeline per session (satellite of the Figure-1 refactor:
        # no per-statement translator reconstruction); scope per call
        self.pipeline = TranslationPipeline(self.mdi, self.config)
        self.serializer = self.pipeline.serializer
        # the cache is usually shared across sessions (HyperQ/HyperQServer
        # pass one in); a standalone session gets a private one
        self.translation_cache = (
            translation_cache
            if translation_cache is not None
            else TranslationCache(self.config.translation_cache)
        )
        self.materializer = Materializer(
            self.mdi, self.config, self.pipeline.serializer
        )
        # result cache: deployment-shared when the platform/server passes
        # one in, private otherwise; temp tier: always session-private
        # (temp relations are).  The executor is the only path to the
        # backend from here down (lint rule HQ009).
        self.result_cache = (
            result_cache
            if result_cache is not None
            else ResultCache(self.config.result_cache)
        )
        self.temp_tier = TempDataTier(self.config.temp_tier)
        self.executor = QueryExecutor(
            self.backend,
            self.mdi,
            self.result_cache,
            self.temp_tier,
            self.config,
        )
        self.pt = ProtocolTranslator(self.executor.execute)
        self._materialized: list[tuple[str, str]] = []  # (relation, kind)
        self._closed = False

    @property
    def xformer(self):
        """The pipeline's Xformer; assigning swaps it for the session
        (ablation benches reconfigure rules this way)."""
        return self.pipeline.xformer

    @xformer.setter
    def xformer(self, value) -> None:
        self.pipeline.xformer = value

    # -- public API ------------------------------------------------------------

    def execute(self, q_text: str) -> QValue | None:
        """Run a Q query message end-to-end; return the final Q value."""
        return self.run(q_text).value

    def run(self, q_text: str) -> ExecutionOutcome:
        return self._run(q_text, execute=True)

    def translate(self, q_text: str) -> ExecutionOutcome:
        """Translate without touching backend data (DDL is *not* executed;
        materialization is recorded logically so later statements bind)."""
        return self._run(q_text, execute=False)

    def close(self) -> list[str]:
        """Destroy the session scope: session variables are promoted to
        the server scope (paper Figure 3) and temp tables dropped.

        A promoted variable backed by a session temp table is persisted
        into a permanent relation first — in PG the pg_temp relation would
        vanish with the session.
        """
        if self._closed:
            return []
        from repro.core.serializer import quote_ident

        promoted_defs = {
            name: definition
            for name, definition in self.session_scope.local_entries().items()
        }
        keep: set[str] = set()
        for name, definition in promoted_defs.items():
            if definition.kind == VarKind.TABLE and definition.relation:
                relation = definition.relation
                if any(r == relation and k == "temp_table"
                       for r, k in self._materialized):
                    permanent = f"hq_global_{name}"
                    try:
                        # a still-lazy tier handle must exist for real
                        # before the promotion CTAS can read it
                        self.executor.materialize_temp(relation)
                        self.executor.run_sql(
                            f"DROP TABLE IF EXISTS {quote_ident(permanent)}",
                            invalidates=[permanent],
                        )
                        self.executor.run_sql(
                            f"CREATE TABLE {quote_ident(permanent)} AS "
                            f"SELECT * FROM {quote_ident(relation)}",
                            invalidates=[permanent],
                        )
                        definition.relation = permanent
                        if definition.meta is not None:
                            definition.meta.name = permanent
                            definition.meta.schema = "public"
                        self.mdi.invalidate(permanent)
                    except Exception as exc:
                        _log.warning(
                            "session_promote_failed",
                            relation=relation,
                            error=str(exc),
                        )
                        keep.add(relation)
        promoted = self.session_scope.destroy()
        for relation, kind in self._materialized:
            if relation in keep:
                continue
            # a handle the tier still holds lazily was never written to
            # the backend — nothing to drop there
            if kind == "temp_table" and self.temp_tier.discard(relation):
                self.mdi.invalidate(relation)
                continue
            try:
                if kind == "view":
                    self.executor.run_sql(
                        f"DROP VIEW IF EXISTS {quote_ident(relation)}"
                    )
                else:
                    self.executor.run_sql(
                        f"DROP TABLE IF EXISTS {quote_ident(relation)}"
                    )
                self.mdi.invalidate(relation)
            except Exception as exc:
                # best-effort cleanup, but never silent (lint rule HQ002):
                # an undroppable temp table is worth a log line
                _log.warning(
                    "session_drop_failed",
                    relation=relation,
                    kind=kind,
                    error=str(exc),
                )
        self._materialized.clear()
        self._closed = True
        return promoted

    # -- the query life cycle ------------------------------------------------------

    def _run(self, q_text: str, execute: bool, scope: Scope | None = None,
             outcome: ExecutionOutcome | None = None) -> ExecutionOutcome:
        outcome = outcome or ExecutionOutcome(value=None)
        scope = scope or self.session_scope
        mode = "execute" if execute else "translate"
        RUNS_TOTAL.inc(mode=mode)

        cache = self.translation_cache
        key: tuple | None = None
        with tracing.span("hyperq.run", mode=mode) as run_span:
            if cache.enabled:
                key = cache.key_for(q_text, scope, self.mdi, self.xformer)
                cached = cache.get(key)
                if cached is not None:
                    # cache hits skip parse/classify; the entry remembers
                    # its class so the replay bills the right quota
                    with self._wlm_scope(cached.query_class, run_span):
                        return self._replay(cached, execute, outcome)

            with stage_span(outcome.timings, "parse"):
                program = parse(q_text)

            qclass = (
                classify_program(program.statements).value
                if self.wlm is not None
                else "analytical"
            )
            with self._wlm_scope(qclass, run_span):
                for statement in program.statements:
                    outcome.value = self._run_statement(
                        statement, scope, execute, outcome
                    )

            if (
                key is not None
                and outcome._cacheable
                and outcome._last_translation is not None
                and len(program.statements) == 1
            ):
                cache.put(key, outcome._last_translation)
        return outcome

    @contextmanager
    def _wlm_scope(self, query_class: str, run_span):
        """Admission + deadline + span attribution for one request.

        The request scope (with its deadline) is installed *before*
        admission so time spent queued counts against the deadline and a
        queued request whose deadline expires is shed, not started.
        """
        if self.wlm is None:
            yield
            return
        deadline = self.wlm.deadline_for_request()
        with request_scope(deadline, query_class) as context:
            run_span.attrs["wlm.class"] = query_class
            with self.wlm.admit(query_class) as queued_seconds:
                context.queued_seconds = queued_seconds
                run_span.attrs["wlm.queued_ms"] = round(
                    queued_seconds * 1e3, 3
                )
                try:
                    yield
                finally:
                    run_span.attrs["wlm.retries"] = context.retries

    def _replay(
        self, cached: TranslationResult, execute: bool,
        outcome: ExecutionOutcome,
    ) -> ExecutionOutcome:
        """Answer a message from the translation cache: the SQL, shape
        and rule counts are replayed; parse/bind/xform/serialize are
        skipped entirely (execution, if requested, still runs)."""
        outcome.cache_hits += 1
        outcome.sql_statements.append(cached.sql)
        for rule, count in cached.rule_applications.items():
            outcome.rule_applications[rule] = (
                outcome.rule_applications.get(rule, 0) + count
            )
        if execute:
            outcome.value = self.pt.respond(cached)
        return outcome

    def _run_statement(
        self,
        statement: ast.Node,
        scope: Scope,
        execute: bool,
        outcome: ExecutionOutcome,
    ) -> QValue | None:
        if isinstance(statement, ast.Assign):
            outcome.mark_uncacheable()
            self._run_assign(statement, scope, execute, outcome)
            return None
        if isinstance(statement, ast.Return):
            return self._run_statement(statement.value, scope, execute, outcome)
        call = self._as_function_call(statement, scope)
        if call is not None:
            outcome.mark_uncacheable()
            return self._invoke_function(call, scope, execute, outcome)
        admin = self._try_admin(statement, scope, execute)
        if admin is not None:
            outcome.mark_uncacheable()
            return admin
        if (
            isinstance(statement, ast.BinOp)
            and statement.op in ("insert", "upsert")
        ):
            outcome.mark_uncacheable()
            return self._run_insert(statement, scope, execute, outcome)
        translation = self.pipeline.translate(
            statement, scope, outcome.timings
        ).to_result()
        outcome._last_translation = translation
        outcome.sql_statements.append(translation.sql)
        for rule, count in translation.rule_applications.items():
            outcome.rule_applications[rule] = (
                outcome.rule_applications.get(rule, 0) + count
            )
        if not execute:
            return None
        return self.pt.respond(translation)

    # -- management utilities --------------------------------------------------------

    def _try_admin(self, statement: ast.Node, scope: Scope, execute: bool):
        """kdb+-style management utilities, answered from Hyper-Q's own
        metadata layer (the enterprise-tooling angle of Sections 2.1/5):

        * ``tables[]``  — list backend tables as a symbol vector;
        * ``cols t``    — column names of a table;
        * ``meta t``    — per-column name and q type character;
        * ``metrics[]`` — the observability snapshot as a Q dict of
          ``sample name -> value`` (see docs/OBSERVABILITY.md);
        * ``check "<q>"`` — run the qcheck analyzer over the quoted Q
          source against the current scope and return the findings as a
          table; ``check[]`` lists the rule catalog (docs/ANALYSIS.md);
        * ``wlm[]`` — live workload-management state (queue depths,
          breaker states, shed counts) as a Q table (docs/WLM.md);
        * ``shards[]`` — per-shard health of a sharded backend (breaker
          state, query/error/hedge counts, mean latency);
        * ``rcache[]`` — result-cache and temp-tier counters
          (docs/CACHING.md).
        """
        from repro.qlang.qtypes import QType
        from repro.qlang.values import QTable, QVector

        if not execute:
            return None
        if (
            isinstance(statement, ast.Apply)
            and isinstance(statement.func, ast.Name)
            and statement.func.name == "check"
        ):
            check = self._try_check(statement, scope)
            if check is not None:
                return check
        if (
            isinstance(statement, ast.Apply)
            and isinstance(statement.func, ast.Name)
            and statement.func.name == "metrics"
            and not [a for a in statement.args if a is not None]
        ):
            return _metrics_qdict()
        if (
            isinstance(statement, ast.Apply)
            and isinstance(statement.func, ast.Name)
            and statement.func.name == "wlm"
            and not [a for a in statement.args if a is not None]
        ):
            return self._wlm_qtable()
        if (
            isinstance(statement, ast.Apply)
            and isinstance(statement.func, ast.Name)
            and statement.func.name == "shards"
            and not [a for a in statement.args if a is not None]
        ):
            return self._shards_qtable()
        if (
            isinstance(statement, ast.Apply)
            and isinstance(statement.func, ast.Name)
            and statement.func.name == "rcache"
            and not [a for a in statement.args if a is not None]
        ):
            return self._rcache_qtable()
        if (
            isinstance(statement, ast.Apply)
            and isinstance(statement.func, ast.Name)
            and statement.func.name == "tables"
            and not [a for a in statement.args if a is not None]
        ):
            result = self.executor.run_sql(
                "SELECT tablename FROM pg_tables ORDER BY tablename"
            )
            names = [
                row[0]
                for row in result.rows
                if not row[0].startswith(("hq_temp_", "hq_view_", "hq_global_"))
            ]
            return QVector(QType.SYMBOL, names)

        target = self._admin_target(statement, ("cols", "meta"))
        if target is None:
            return None
        verb, table_name = target
        definition = scope.lookup(table_name)
        if definition is not None and definition.meta is not None:
            meta = definition.meta
        else:
            meta = self.mdi.lookup_table(table_name)
        if meta is None:
            raise QNameError(
                f"{verb}: table {table_name!r} does not exist (searched "
                f"local, session and server scopes, then the backend catalog)"
            )
        data_columns = meta.data_columns
        if verb == "cols":
            return QVector(QType.SYMBOL, [c.name for c in data_columns])
        chars = [
            _QTYPE_CHARS.get(c.sql_type, " ") for c in data_columns
        ]
        return QTable(
            ["c", "t"],
            [
                QVector(QType.SYMBOL, [c.name for c in data_columns]),
                QVector(QType.CHAR, chars),
            ],
        )

    def _wlm_qtable(self):
        """``wlm[]`` — workload-management state as one Q table.

        One row per admission class (``kind=`class``: quota, live
        active/queued depth, admitted/shed totals), per circuit breaker
        (``kind=`breaker``: state, consecutive failures, transition
        count) and per fired fault point (``kind=`fault``).  An empty
        table means workload management is disabled.
        """
        from repro.core.admin import admin_table
        from repro.qlang.qtypes import QType

        rows: list[tuple] = []
        if self.wlm is not None:
            snapshot = self.wlm.snapshot()
            for name, stats in snapshot["classes"].items():
                rows.append((
                    name, "class", "ok", stats["limit"], stats["active"],
                    stats["queued"], stats["admitted"], stats["shed"],
                ))
            for name, stats in snapshot["breakers"].items():
                rows.append((
                    name, "breaker", stats["state"],
                    self.wlm.config.breaker.failure_threshold,
                    stats["failures"], 0, stats["transitions"], 0,
                ))
            for point, count in snapshot["faults"].items():
                rows.append((point, "fault", "armed", 0, count, 0, 0, 0))
        return admin_table(
            [
                ("name", QType.SYMBOL), ("kind", QType.SYMBOL),
                ("state", QType.SYMBOL), ("limit", QType.LONG),
                ("active", QType.LONG), ("queued", QType.LONG),
                ("admitted", QType.LONG), ("shed", QType.LONG),
            ],
            rows,
        )

    def _shards_qtable(self):
        """``shards[]`` — per-shard health of a sharded backend.

        One row per shard: breaker state, statements executed, failures,
        hedged reads fired, mean statement latency in milliseconds, plus
        the shard transport — ``mode`` is ``thread`` for in-process
        engines and ``process`` for spawned QIPC workers, in which case
        pid/restarts/rss_kb describe the worker process.  An empty table
        means the backend is not sharded.
        """
        from repro.core.admin import admin_table
        from repro.qlang.qtypes import QType

        snapshot_fn = None
        node = self.backend
        for __ in range(8):  # unwrap resilience layers to the backend
            if node is None:
                break
            snapshot_fn = getattr(node, "shard_snapshot", None)
            if snapshot_fn is not None:
                break
            node = getattr(node, "inner", None)
        snapshot = snapshot_fn() if snapshot_fn is not None else []
        return admin_table(
            [
                ("shard", QType.LONG), ("state", QType.SYMBOL),
                ("queries", QType.LONG), ("errors", QType.LONG),
                ("hedges", QType.LONG), ("mean_ms", QType.FLOAT),
                ("mode", QType.SYMBOL), ("pid", QType.LONG),
                ("restarts", QType.LONG), ("rss_kb", QType.LONG),
            ],
            [
                (r["shard"], r["state"], r["queries"], r["errors"],
                 r["hedges"], r["mean_ms"], r.get("mode", "thread"),
                 r.get("pid", 0), r.get("restarts", 0),
                 r.get("rss_kb", 0))
                for r in snapshot
            ],
        )

    def _rcache_qtable(self):
        """``rcache[]`` — result-cache and temp-tier counters.

        One ``(layer, stat, value)`` row per counter: the shared result
        cache's lookups/hits/misses/evictions/bytes plus this session's
        temp-tier handle and serve counts (docs/CACHING.md).
        """
        from repro.core.admin import admin_table
        from repro.qlang.qtypes import QType

        rows = [
            ("rcache", name, value)
            for name, value in self.result_cache.snapshot().as_rows()
        ] + [
            ("temptier", name, value)
            for name, value in self.temp_tier.snapshot()
        ]
        return admin_table(
            [
                ("layer", QType.SYMBOL), ("stat", QType.SYMBOL),
                ("value", QType.LONG),
            ],
            rows,
        )

    def _try_check(self, statement: ast.Apply, scope: Scope):
        """``check "<q source>"`` — findings as a Q table; ``check[]`` —
        the registered rule catalog.  Any other shape falls through to the
        normal pipeline (so a user-defined ``check`` still binds)."""
        from repro.qlang.qtypes import QType
        from repro.qlang.values import QTable, QVector

        args = [a for a in statement.args if a is not None]
        analyzer = self.pipeline.analyzer
        if not args:
            rules = analyzer.rules
            return QTable(
                ["code", "name", "severity", "purpose"],
                [
                    QVector(QType.SYMBOL, [r.code for r in rules]),
                    QVector(QType.SYMBOL, [r.name for r in rules]),
                    QVector(
                        QType.SYMBOL,
                        [r.default_severity.label for r in rules],
                    ),
                    QVector(QType.SYMBOL, [r.purpose for r in rules]),
                ],
            )
        if (
            len(args) == 1
            and isinstance(args[0], ast.Literal)
            and isinstance(args[0].value, QVector)
            and args[0].value.qtype == QType.CHAR
        ):
            source = "".join(args[0].value.items)
            findings = analyzer.analyze_source(source, scope)
            return QTable(
                ["code", "severity", "rule", "pos", "message"],
                [
                    QVector(QType.SYMBOL, [f.code for f in findings]),
                    QVector(
                        QType.SYMBOL, [f.severity.label for f in findings]
                    ),
                    QVector(QType.SYMBOL, [f.rule for f in findings]),
                    QVector(QType.LONG, [f.pos for f in findings]),
                    QVector(QType.SYMBOL, [f.message for f in findings]),
                ],
            )
        return None

    @staticmethod
    def _admin_target(statement: ast.Node, verbs: tuple[str, ...]):
        if (
            isinstance(statement, ast.Apply)
            and isinstance(statement.func, ast.Name)
            and statement.func.name in verbs
        ):
            args = [a for a in statement.args if a is not None]
            if len(args) == 1 and isinstance(args[0], ast.Name):
                return statement.func.name, args[0].name
        if isinstance(statement, ast.UnOp) and statement.op in verbs:
            if isinstance(statement.operand, ast.Name):
                return statement.op, statement.operand.name
        return None

    # -- the write path: `t insert rows --------------------------------------------

    def _run_insert(
        self,
        statement: ast.Assign | ast.BinOp,
        scope: Scope,
        execute: bool,
        outcome: ExecutionOutcome,
    ) -> QValue | None:
        """``\\`t insert rows`` / ``upsert`` — append through the backend.

        The appended rows continue the target's implicit order column:
        ``ordcol = 1 + max(existing) + row_number() over the new rows``.
        """
        from repro.core.algebrizer.binder import _const_value
        from repro.core.serializer import quote_ident
        from repro.qlang.qtypes import QType
        from repro.qlang.values import QAtom, QVector

        target_value = _const_value(statement.left)
        if not (
            isinstance(target_value, QAtom)
            and target_value.qtype == QType.SYMBOL
        ):
            raise QNotSupportedError(
                "insert expects a literal table name symbol on the left"
            )
        table_name = target_value.value
        definition = scope.lookup(table_name)
        relation = (
            definition.relation
            if definition is not None and definition.relation
            else table_name
        )
        # inserting into a lazily-held assignment: the relation must
        # exist in the backend before the counts and the INSERT run
        if execute:
            self.executor.materialize_temp(relation)
        meta = self.mdi.require_table(relation)

        with stage_span(outcome.timings, "algebrize"):
            bound = self.pipeline.bind(statement.right, scope)
        if not isinstance(bound, BoundTable):
            raise QTypeError("insert expects a table of new rows")
        self.pipeline.transform(bound)

        target_columns = [c.name for c in meta.data_columns]
        source_columns = [
            c.name for c in bound.op.visible_columns
        ]
        if set(source_columns) != set(target_columns):
            raise QTypeError(
                f"insert columns {source_columns} do not match table "
                f"{table_name!r} columns {target_columns}"
            )

        inner_sql = self.serializer.serialize(bound.op)
        quoted_target = quote_ident(relation)
        select_list = ", ".join(quote_ident(c) for c in target_columns)
        insert_sql = (
            f"INSERT INTO {quoted_target} ({select_list}, "
            f'{quote_ident("ordcol")}) '
            f"SELECT {select_list}, "
            f"(SELECT coalesce(max({quote_ident('ordcol')}), -1) "
            f"FROM {quoted_target}) + row_number() OVER () "
            f"FROM ({inner_sql}) AS hq_ins"
        )
        outcome.sql_statements.append(insert_sql)
        if not execute:
            return None
        before = self.executor.run_sql(
            f"SELECT count(*) FROM {quoted_target}"
        ).scalar()
        self.executor.run_sql(insert_sql, invalidates=[relation])
        after = self.executor.run_sql(
            f"SELECT count(*) FROM {quoted_target}"
        ).scalar()
        return QVector(QType.LONG, list(range(before, after)))

    # -- assignments & materialization ---------------------------------------------

    def _run_assign(
        self,
        statement: ast.Assign,
        scope: Scope,
        execute: bool,
        outcome: ExecutionOutcome,
    ) -> None:
        if statement.indices:
            raise QNotSupportedError(
                "indexed amend through Hyper-Q is not in the supported surface"
            )
        if statement.op is not None:
            raise QNotSupportedError(
                "compound assignment through Hyper-Q is not in the supported "
                "surface"
            )
        target_scope: Scope = scope
        if statement.global_scope:
            target_scope = self.session_scope

        # function definition: store source text, re-algebrized on call
        if isinstance(statement.value, ast.Lambda):
            self.materializer.store_function(
                statement.target, statement.value.source, target_scope
            )
            return

        with stage_span(outcome.timings, "algebrize"):
            bound = self.pipeline.bind(statement.value, scope)

        if isinstance(bound, BoundScalar):
            value = self._scalar_value(bound, execute)
            self.materializer.store_scalar(statement.target, value, target_scope)
            return

        assert isinstance(bound, BoundTable)
        with stage_span(outcome.timings, "optimize"):
            self.pipeline.transform(bound)

        # function-local assignments must be physically snapshotted; the
        # paper's Example 3 materializes dt as a temporary table
        mode = self.config.materialization
        if isinstance(scope, LocalScope):
            mode = MaterializationMode.PHYSICAL
        with stage_span(outcome.timings, "serialize"):
            step = self.materializer.materialize_table(
                statement.target, bound, target_scope, mode
            )
        outcome.sql_statements.append(step.sql)
        if execute:
            self._execute_materialization(step)

    def _execute_materialization(self, step: MaterializationStep) -> None:
        """Run (or lazily defer) one materialization step.

        Physical temp tables go to the interactive temp-data tier when
        it is enabled: the *defining SELECT* runs now — so the snapshot
        has exactly the eager CTAS's point-in-time semantics — but the
        backend write is deferred until an access pattern needs it
        (docs/CACHING.md).  A defining SELECT that is itself a simple
        read over another lazy handle is served tier-to-tier without
        touching the backend at all.
        """
        tier = self.temp_tier
        if (
            step.kind == "temp_table"
            and tier.enabled
            and step.inner_sql
            and step.meta is not None
        ):
            snapshot = tier.try_serve(step.inner_sql)
            if snapshot is None:
                self._materialize_lazy_refs(step.inner_sql)
                snapshot = self.executor.run_sql(step.inner_sql)
            tier.register(step.relation, step.sql, step.meta, snapshot)
        else:
            self._materialize_lazy_refs(step.sql)
            self.executor.run_sql(step.sql)
        self.mdi.invalidate(step.relation)
        self._materialized.append((step.relation, step.kind))

    def _materialize_lazy_refs(self, sql: str) -> None:
        """Backend-run SQL may read relations the tier still holds
        lazily; they must exist for real first."""
        for relation in self.temp_tier.lazy_names():
            if f'"{relation}"' in sql:
                self.executor.materialize_temp(relation)

    def _scalar_value(self, bound: BoundScalar, execute: bool) -> QValue:
        from repro.core.xtra.scalars import SConst

        scalar = bound.scalar
        if isinstance(scalar, SConst):
            return _const_to_qvalue(scalar)
        sql = self.serializer.serialize_scalar_statement(scalar)
        if not execute:
            raise QNotSupportedError(
                "translate-only mode cannot evaluate non-literal scalar "
                "assignments"
            )
        result = self.executor.run_sql(sql)
        return pivot_result(result, "atom", [])

    # -- function unrolling ------------------------------------------------------------

    def _as_function_call(self, statement: ast.Node, scope: Scope):
        """Detect ``f[args...]`` where f is a stored FUNCTION variable."""
        if not isinstance(statement, ast.Apply):
            return None
        if not isinstance(statement.func, ast.Name):
            return None
        definition = scope.lookup(statement.func.name)
        if definition is None or definition.kind != VarKind.FUNCTION:
            return None
        return (definition, statement)

    def _invoke_function(
        self, call, scope: Scope, execute: bool, outcome: ExecutionOutcome
    ) -> QValue | None:
        definition, statement = call
        with stage_span(outcome.timings, "parse"):
            program = parse(definition.source or "")
        if len(program.statements) != 1 or not isinstance(
            program.statements[0], ast.Lambda
        ):
            raise TranslationError(
                f"stored function {definition.name!r} failed to re-parse"
            )
        lam: ast.Lambda = program.statements[0]
        args = [a for a in statement.args if a is not None]
        if len(args) != len(lam.params) and args:
            raise QRankError(
                f"function {definition.name!r} of rank {len(lam.params)} "
                f"applied to {len(args)} arguments"
            )

        local = LocalScope(scope)
        for param, arg in zip(lam.params, args):
            bound = self.pipeline.bind(arg, scope)
            if isinstance(bound, BoundScalar):
                value = self._scalar_value(bound, execute)
                self.materializer.store_scalar(param, value, local)
            else:
                mode = MaterializationMode.PHYSICAL
                step = self.materializer.materialize_table(
                    param, bound, local, mode
                )
                outcome.sql_statements.append(step.sql)
                if execute:
                    self._execute_materialization(step)

        result: QValue | None = None
        for body_statement in lam.body:
            result = self._run_statement(body_statement, local, execute, outcome)
            if isinstance(body_statement, ast.Return):
                break
        return result


#: SQL type -> q type character (as `meta` shows it)
from repro.sqlengine.types import SqlType as _SqlType  # noqa: E402

_QTYPE_CHARS = {
    _SqlType.BOOLEAN: "b",
    _SqlType.SMALLINT: "h",
    _SqlType.INTEGER: "i",
    _SqlType.BIGINT: "j",
    _SqlType.REAL: "e",
    _SqlType.DOUBLE: "f",
    _SqlType.NUMERIC: "f",
    _SqlType.VARCHAR: "s",
    _SqlType.TEXT: "s",
    _SqlType.CHAR: "c",
    _SqlType.DATE: "d",
    _SqlType.TIME: "t",
    _SqlType.TIMESTAMP: "p",
    _SqlType.INTERVAL: "n",
    _SqlType.UUID: "g",
}


def _metrics_qdict() -> QValue:
    """The process-wide metrics snapshot as a Q dict (admin command).

    Flat sample names (``name{label=value}``) key a float vector, so a Q
    client reads e.g. ``(metrics[])[`server_queries_total]`` — counters
    and gauges report their value, histograms their ``_count``/``_sum``.
    """
    from repro.qlang.qtypes import QType
    from repro.qlang.values import QDict, QVector

    flat = metrics.get_registry().flat()
    names = list(flat.keys())
    return QDict(
        QVector(QType.SYMBOL, names),
        QVector(QType.FLOAT, [float(flat[name]) for name in names]),
    )


def _const_to_qvalue(scalar) -> QValue:
    """Convert a bound literal back to its Q value for the variable store."""
    from repro.core.crosscompiler import _SQL_TO_QTYPE
    from repro.qlang.values import QAtom

    qtype = _SQL_TO_QTYPE.get(scalar.type_)
    if qtype is None:
        raise QTypeError(f"cannot store literal of type {scalar.type_}")
    if scalar.value is None:
        return QAtom(qtype, qtype.null_value())
    return QAtom(qtype, scalar.value)
