"""The translation pipeline: Figure 1 as an explicit compiler-pass manager.

The paper describes Hyper-Q as a staged compiler — parse, bind
(Algebrizer), transform (Xformer), serialize — in front of an
interchangeable execution target.  This module makes those stages
first-class:

* :class:`TranslationUnit` is the intermediate representation that flows
  through the stages: Q text -> AST -> bound XTRA -> transformed XTRA ->
  SQL, carrying per-stage spans, rule applications, and diagnostics;
* :class:`TranslationPipeline` is the pass manager.  Passes are
  registered by name, ordered, and individually traceable (each run is a
  ``pass.<name>`` tracing span plus a :class:`StageRecord` on the unit);
* :class:`TranslationCache` memoizes finished translations keyed on the
  normalized Q source, a fingerprint of the visible variable scopes, the
  backend catalog version, and the Xformer configuration — repeat
  statements skip parse/bind/xform/serialize entirely.

Layering rule (enforced by ``scripts/mini_lint.py``, rule HQ001): the
pipeline is the only production module allowed to construct a
:class:`~repro.core.algebrizer.binder.Binder` or a
:class:`~repro.core.serializer.Serializer` — every other layer goes
through a pipeline instance.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.analysis.concurrency.locks import make_lock
from repro.analysis.framework import QueryAnalyzer
from repro.analysis.invariants import check_operator_tree
from repro.config import HyperQConfig, TranslationCacheConfig
from repro.core.algebrizer.binder import Binder, BoundScalar
from repro.core.metadata import MetadataInterface
from repro.core.scopes import Scope
from repro.core.serializer import Serializer
from repro.core.xformer.framework import Xformer
from repro.errors import InvariantError, TranslationError, UntranslatableError
from repro.obs import metrics, tracing
from repro.qlang import ast
from repro.wlm.classifier import classify_statement
from repro.wlm.deadline import current_context, current_deadline

#: per-stage translation latency (Figure 7), labelled stage=parse|
#: algebrize|optimize|serialize; shared with the session's parse stage
STAGE_SECONDS = metrics.histogram(
    "hyperq_stage_seconds",
    "Wall-clock seconds spent per translation stage",
)

#: translation-cache telemetry (mirrors the MDI cache families)
TRANSLATION_CACHE_HITS = metrics.counter(
    "hyperq_translation_cache_hits_total",
    "Translations served from the translation cache",
)
TRANSLATION_CACHE_MISSES = metrics.counter(
    "hyperq_translation_cache_misses_total",
    "Translations that ran the full pipeline",
)
TRANSLATION_CACHE_EVICTIONS = metrics.counter(
    "hyperq_translation_cache_evictions_total",
    "Cache entries evicted by the LRU bound",
)
TRANSLATION_CACHE_ENTRIES = metrics.gauge(
    "hyperq_translation_cache_entries",
    "Entries currently held by the translation cache",
)

#: static-analysis telemetry, labelled by rule code (QC0xx / XI00x)
ANALYSIS_FINDINGS = metrics.counter(
    "analysis_findings_total",
    "qcheck findings reported by the analyze pass",
)
ANALYSIS_INVARIANT_VIOLATIONS = metrics.counter(
    "analysis_invariant_violations_total",
    "XTRA invariant violations detected after pipeline passes",
)


@dataclass
class StageTimings:
    """Per-stage wall-clock seconds for one translation (Figure 7).

    ``analyze`` bills the opt-in static-analysis pass; it stays 0.0 in
    the paper's four-stage split when analysis is disabled.
    """

    parse: float = 0.0
    analyze: float = 0.0
    algebrize: float = 0.0
    optimize: float = 0.0
    serialize: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.parse
            + self.analyze
            + self.algebrize
            + self.optimize
            + self.serialize
        )

    def add(self, other: "StageTimings") -> None:
        self.parse += other.parse
        self.analyze += other.analyze
        self.algebrize += other.algebrize
        self.optimize += other.optimize
        self.serialize += other.serialize


@contextmanager
def stage_span(timings: StageTimings, stage: str):
    """Time one pipeline stage through the tracer.

    One measurement feeds all three consumers: the ``stage.<name>`` trace
    span, the ``hyperq_stage_seconds`` histogram, and the corresponding
    :class:`StageTimings` field — so timings and spans agree exactly.
    """
    with tracing.span(f"stage.{stage}") as span:
        yield span
    setattr(timings, stage, getattr(timings, stage) + span.duration)
    STAGE_SECONDS.observe(span.duration, stage=stage)


@dataclass
class TranslationResult:
    """Everything the pipeline produces for one Q statement."""

    sql: str
    shape: str
    keys: list[str]
    timings: StageTimings
    rule_applications: dict[str, int] = field(default_factory=dict)
    #: admission class of the statement (repro/wlm/classifier.py);
    #: cached entries replay it so cache hits bill the right quota
    query_class: str = "analytical"
    #: backend relations the statement reads (XtraGet scans, collected
    #: at serialize time) — the result cache keys on their versions
    tables: list[str] = field(default_factory=list)


@dataclass
class StageRecord:
    """One pass execution on one unit (name + wall-clock seconds)."""

    name: str
    seconds: float


@dataclass
class TranslationUnit:
    """The IR that flows through the pipeline for one Q statement.

    Each pass reads the fields its predecessors filled and writes its
    own: ``statement`` (AST, from the parser) -> ``bound`` (XTRA, from
    the bind pass) -> ``bound`` rewritten in place (xform pass) ->
    ``sql``/``shape``/``keys`` (serialize pass).
    """

    statement: ast.Node
    scope: Scope
    timings: StageTimings
    #: normalized source text, when the statement came from cacheable text
    source: str | None = None
    bound: object | None = None
    sql: str | None = None
    shape: str | None = None
    keys: list[str] = field(default_factory=list)
    #: relations scanned by the bound tree (filled by the serialize pass)
    tables: list[str] = field(default_factory=list)
    rule_applications: dict[str, int] = field(default_factory=dict)
    #: free-form notes passes leave for diagnostics / error reporting
    diagnostics: list[str] = field(default_factory=list)
    #: per-pass execution trace, in run order
    stages: list[StageRecord] = field(default_factory=list)
    cache_hit: bool = False
    #: admission class (repro/wlm): inherited from the request context
    #: when one is active, else classified from the statement AST
    query_class: str = "analytical"

    def to_result(self) -> TranslationResult:
        if self.sql is None or self.shape is None:
            raise TranslationError(
                "translation unit did not reach the serialize pass "
                f"(stages run: {[s.name for s in self.stages]})"
            )
        return TranslationResult(
            sql=self.sql,
            shape=self.shape,
            keys=list(self.keys),
            timings=self.timings,
            rule_applications=dict(self.rule_applications),
            query_class=self.query_class,
            tables=list(self.tables),
        )


def referenced_tables(op) -> list[str]:
    """Backend relations scanned by a bound XTRA tree, sorted unique.

    Walked at serialize time so every :class:`TranslationResult` carries
    the read set its SQL depends on — the result cache keys on the
    per-table version vector over exactly these names.
    """
    from repro.core.xtra.ops import XtraGet, walk

    return sorted({
        node.table for node in walk(op) if isinstance(node, XtraGet)
    })


class Pass:
    """One named, ordered pipeline stage; subclasses override :meth:`run`.

    ``stage`` names the :class:`StageTimings` bucket the pass bills its
    wall-clock time to (the Figure-7 stage split).
    """

    name = "pass"
    stage = "optimize"

    def run(self, unit: TranslationUnit, pipeline: "TranslationPipeline") -> None:
        raise NotImplementedError


class AnalyzePass(Pass):
    """Pre-bind static analysis: run the qcheck rules over the AST.

    Findings are recorded on the unit's diagnostics and the
    ``analysis_findings_total`` metric; only fatal QC004 findings
    (constructs with no XTRA mapping) abort the translation, as a
    structured :class:`~repro.errors.UntranslatableError` raised before
    the binder ever runs.
    """

    name = "analyze"
    stage = "analyze"

    def run(self, unit: TranslationUnit, pipeline: "TranslationPipeline") -> None:
        findings = pipeline.analyzer.analyze_statement(
            unit.statement, unit.scope
        )
        for finding in findings:
            ANALYSIS_FINDINGS.inc(rule=finding.code)
            unit.diagnostics.append(finding.render())
        if not pipeline.config.analysis.raise_on_untranslatable:
            return
        for finding in findings:
            if finding.fatal:
                raise UntranslatableError(
                    finding.message,
                    category=finding.category or "missing-feature",
                    construct=finding.rule,
                )


class BindPass(Pass):
    """Algebrize: AST -> bound XTRA through the scope chain + MDI."""

    name = "bind"
    stage = "algebrize"

    def run(self, unit: TranslationUnit, pipeline: "TranslationPipeline") -> None:
        unit.bound = pipeline.binder(unit.scope).bind(unit.statement)


class XformPass(Pass):
    """Transform: apply the configured Xformer rules, record rule hits."""

    name = "xform"
    stage = "optimize"

    def run(self, unit: TranslationUnit, pipeline: "TranslationPipeline") -> None:
        bound = unit.bound
        if bound is None:
            raise TranslationError("xform pass ran before the bind pass")
        if isinstance(bound, BoundScalar):
            return  # scalars carry no relational tree to rewrite
        op, ctx = pipeline.xformer.transform(bound.op, bound.shape)
        bound.op = op
        unit.rule_applications = dict(ctx.applications)


class SerializePass(Pass):
    """Serialize: transformed XTRA -> final PG SQL text."""

    name = "serialize"
    stage = "serialize"

    def run(self, unit: TranslationUnit, pipeline: "TranslationPipeline") -> None:
        bound = unit.bound
        if bound is None:
            raise TranslationError("serialize pass ran before the bind pass")
        if isinstance(bound, BoundScalar):
            unit.sql = pipeline.serializer.serialize_scalar_statement(
                bound.scalar
            )
            unit.shape = "atom"
            unit.keys = []
            unit.tables = []
        else:
            unit.sql = pipeline.serializer.serialize(bound.op)
            unit.shape = bound.shape
            unit.keys = list(bound.keys)
            unit.tables = referenced_tables(bound.op)


def default_passes() -> list[Pass]:
    return [BindPass(), XformPass(), SerializePass()]


class TranslationPipeline:
    """The pass manager: owns the Binder/Xformer/Serializer machinery and
    drives a :class:`TranslationUnit` through the registered passes.

    Built once per session; the active scope is passed per call, so the
    pipeline itself holds no per-statement state.
    """

    def __init__(
        self,
        mdi: MetadataInterface,
        config: HyperQConfig | None = None,
        xformer: Xformer | None = None,
        passes: list[Pass] | None = None,
    ):
        self.mdi = mdi
        self.config = config or HyperQConfig()
        self.xformer = xformer or Xformer(self.config.xformer)
        self.serializer = Serializer()
        self.analyzer = QueryAnalyzer(mdi=mdi, config=self.config)
        self._passes: list[Pass] = []
        if passes is None:
            passes = default_passes()
            if self.config.analysis.enabled and self.config.analysis.qcheck:
                passes.insert(0, AnalyzePass())
            # the distributed-rewrite pass is always registered; it
            # no-ops unless the MDI carries a partition map (import is
            # deferred: distributed.py subclasses Pass from this module)
            from repro.core.xformer.distributed import DistributePass

            passes.append(DistributePass())
        for p in passes:
            self.register_pass(p)

    # -- pass registry ---------------------------------------------------------

    @property
    def passes(self) -> list[Pass]:
        return list(self._passes)

    @property
    def pass_names(self) -> list[str]:
        return [p.name for p in self._passes]

    def register_pass(
        self,
        new_pass: Pass,
        before: str | None = None,
        after: str | None = None,
    ) -> None:
        """Insert a pass; default position is the end of the order."""
        if new_pass.name in self.pass_names:
            raise TranslationError(
                f"pipeline already has a pass named {new_pass.name!r}"
            )
        if before is not None and after is not None:
            raise TranslationError("register_pass takes before= or after=, not both")
        anchor = before or after
        if anchor is None:
            self._passes.append(new_pass)
            return
        names = self.pass_names
        if anchor not in names:
            raise TranslationError(f"no pass named {anchor!r} to anchor on")
        index = names.index(anchor) + (0 if before else 1)
        self._passes.insert(index, new_pass)

    # -- construction choke points (layering rule HQ001) -----------------------

    def binder(self, scope: Scope) -> Binder:
        """The one place production code builds a Binder (fresh per bind:
        the binder carries per-statement name-generation state)."""
        return Binder(self.mdi, scope, self.config)

    # -- driving ---------------------------------------------------------------

    def translate(
        self,
        statement: ast.Node,
        scope: Scope,
        timings: StageTimings | None = None,
        source: str | None = None,
    ) -> TranslationUnit:
        """Run one statement AST through every registered pass."""
        unit = TranslationUnit(
            statement=statement,
            scope=scope,
            timings=timings if timings is not None else StageTimings(),
            source=source,
        )
        context = current_context()
        if context is not None:
            unit.query_class = context.query_class
        else:
            unit.query_class = classify_statement(statement).value
        check_invariants = (
            self.config.analysis.enabled
            and self.config.analysis.check_invariants
        )
        deadline = current_deadline()
        for p in self._passes:
            if deadline is not None:
                deadline.check(f"pass.{p.name}")
            with tracing.span(f"pass.{p.name}") as span:
                with stage_span(unit.timings, p.stage):
                    p.run(unit, self)
                if check_invariants:
                    self._check_invariants(unit, p.name, span)
            unit.stages.append(StageRecord(p.name, span.duration))
        return unit

    @staticmethod
    def _check_invariants(unit: TranslationUnit, pass_name: str, span) -> None:
        """Verify XTRA invariants on the tree ``pass_name`` just produced.

        Attribution is the point: the error and the trace span both name
        the pass whose *output* is broken, so a buggy xformer rule shows
        up as ``xform``, not as a mysterious serializer failure later.
        """
        bound = unit.bound
        op = getattr(bound, "op", None)
        if op is None:
            return  # nothing bound yet, or a scalar-only statement
        violations = check_operator_tree(op)
        if not violations:
            return
        span.attrs["invariant_violations"] = len(violations)
        span.attrs["violating_pass"] = pass_name
        for violation in violations:
            ANALYSIS_INVARIANT_VIOLATIONS.inc(rule=violation.code)
        rendered = "; ".join(v.render() for v in violations)
        raise InvariantError(
            f"pass {pass_name!r} produced an XTRA tree violating "
            f"{len(violations)} invariant(s): {rendered}",
            pass_name=pass_name,
            violations=violations,
        )

    def bind(self, node: ast.Node, scope: Scope):
        """Bind without transforming/serializing (materialization path)."""
        return self.binder(scope).bind(node)

    def transform(self, bound):
        """Apply the Xformer to an already-bound table expression;
        returns the rule-application counts."""
        op, ctx = self.xformer.transform(bound.op, bound.shape)
        bound.op = op
        return dict(ctx.applications)


# ---------------------------------------------------------------------------
# The translation cache
# ---------------------------------------------------------------------------


def normalize_q_source(text: str) -> str:
    """Collapse insignificant whitespace in Q text, preserving strings.

    Runs of whitespace outside double-quoted string literals become a
    single space; quoted content (including ``\\"`` escapes) is kept
    verbatim, so two sources normalize equal only if they tokenize the
    same way.
    """
    out: list[str] = []
    in_string = False
    pending_space = False
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            out.append(ch)
            if ch == "\\" and i + 1 < len(text):
                out.append(text[i + 1])
                i += 2
                continue
            if ch == '"':
                in_string = False
            i += 1
            continue
        if ch == '"':
            if pending_space and out:
                out.append(" ")
            pending_space = False
            in_string = True
            out.append(ch)
            i += 1
            continue
        if ch.isspace():
            pending_space = True
            i += 1
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        out.append(ch)
        i += 1
    return "".join(out)


def scope_fingerprint(scope: Scope) -> tuple:
    """A hashable digest of every variable binding visible from ``scope``.

    Two scope states fingerprint equal only when every visible definition
    (name, kind, backing relation, function source, scalar value) agrees
    — the condition under which a cached translation stays valid.
    """
    parts: list[tuple] = []
    level: Scope | None = scope
    while level is not None:
        for name, definition in sorted(level.local_entries().items()):
            parts.append(
                (
                    level.level_name,
                    name,
                    definition.kind.value,
                    definition.relation or "",
                    definition.source or "",
                    repr(definition.value) if definition.value is not None else "",
                )
            )
        level = level.parent
    return tuple(parts)


class TranslationCache:
    """LRU cache of finished translations (the plan cache of the staged-
    optimizer literature, applied to cross-compilation).

    Keys combine the normalized Q source with everything else a
    translation depends on: the scope fingerprint, the backend catalog
    version (DDL anywhere invalidates, through the existing
    ``MetadataInterface`` catalog-version plumbing), the Xformer
    fingerprint, and the MDI's keyed-table annotations.
    """

    def __init__(self, config: TranslationCacheConfig | None = None):
        self.config = config or TranslationCacheConfig()
        self._lock = make_lock("core.translation_cache")
        self._entries: OrderedDict[tuple, TranslationResult] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def key_for(
        self,
        q_text: str,
        scope: Scope,
        mdi: MetadataInterface,
        xformer: Xformer,
    ) -> tuple:
        return (
            normalize_q_source(q_text),
            scope_fingerprint(scope),
            mdi.catalog_version(),
            xformer.fingerprint(),
            tuple(sorted(
                (table, tuple(keys))
                for table, keys in mdi.key_annotations.items()
            )),
            # topology digest: a plan scattered for one shard layout must
            # never be replayed against another
            mdi.partition_fingerprint(),
        )

    def get(self, key: tuple) -> TranslationResult | None:
        if not self.config.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                TRANSLATION_CACHE_MISSES.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            TRANSLATION_CACHE_HITS.inc()
            return entry

    def put(self, key: tuple, result: TranslationResult) -> None:
        if not self.config.enabled:
            return
        # store an entry detached from the live outcome's mutable state
        entry = TranslationResult(
            sql=result.sql,
            shape=result.shape,
            keys=list(result.keys),
            timings=StageTimings(),
            rule_applications=dict(result.rule_applications),
            query_class=result.query_class,
            tables=list(result.tables),
        )
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.config.max_entries:
                self._entries.popitem(last=False)
                TRANSLATION_CACHE_EVICTIONS.inc()
            TRANSLATION_CACHE_ENTRIES.set(len(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            TRANSLATION_CACHE_ENTRIES.set(0)
