"""Hierarchy of variable scopes (paper Figure 3).

Hyper-Q resolves Q variable references through three scopes:

1. **local** — function-body variables; upserts never escape this scope;
2. **session** — variables defined at the top level of a session;
3. **server** — global variables, backed by the PG database; session
   variables are *promoted* to server variables when the session scope is
   destroyed.

A variable definition is one of: a backend TABLE (materialized, carries the
backing relation name), a SCALAR (a Q value held in the variable store —
the paper's "logical materialization" for scalars), a FUNCTION (stored as
plain source text, re-algebrized on every invocation — Section 4.3), or a
VIEW (logically materialized table definition).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.metadata import TableMeta
from repro.qlang.values import QValue


class VarKind(Enum):
    TABLE = "table"  # backed by a physical backend relation
    VIEW = "view"  # backed by a backend view (logical materialization)
    SCALAR = "scalar"  # a Q value held in Hyper-Q's variable store
    FUNCTION = "function"  # Q source text, interpreted on invocation


@dataclass
class VariableDef:
    name: str
    kind: VarKind
    #: backend relation name for TABLE/VIEW entries
    relation: str | None = None
    #: cached table metadata (columns, keys, ordcol)
    meta: TableMeta | None = None
    #: Q value for SCALAR entries
    value: QValue | None = None
    #: source text for FUNCTION entries (the paper stores functions as text)
    source: str | None = None


class Scope:
    """One level of the hierarchy; lookups fall through to the parent."""

    level_name = "scope"

    def __init__(self, parent: "Scope | None" = None):
        self.parent = parent
        self._vars: dict[str, VariableDef] = {}

    def lookup(self, name: str) -> VariableDef | None:
        if name in self._vars:
            return self._vars[name]
        if self.parent is not None:
            return self.parent.lookup(name)
        return None

    def upsert(self, definition: VariableDef) -> None:
        """Define or redefine a variable *in this scope* (paper: local
        upserts never get promoted to higher scopes)."""
        self._vars[definition.name] = definition

    def delete(self, name: str) -> bool:
        return self._vars.pop(name, None) is not None

    def names(self) -> list[str]:
        return sorted(self._vars)

    def local_entries(self) -> dict[str, VariableDef]:
        return dict(self._vars)


class ServerScope(Scope):
    """Bottom of the hierarchy; global variables visible to all clients."""

    level_name = "server"

    def __init__(self):
        super().__init__(parent=None)


class SessionScope(Scope):
    """Session variables; promoted to the server scope on destruction."""

    level_name = "session"

    def __init__(self, server: ServerScope):
        super().__init__(parent=server)
        self.server = server

    def destroy(self) -> list[str]:
        """Promote session variables to the server scope (paper Section
        3.2.3: 'Session variables are promoted to global (server)
        variables ... as part of the session scope destruction')."""
        promoted = []
        for name, definition in self._vars.items():
            self.server.upsert(definition)
            promoted.append(name)
        self._vars.clear()
        return promoted


class LocalScope(Scope):
    """Function-body scope; shadows session/server, never promotes."""

    level_name = "local"

    def __init__(self, parent: Scope):
        super().__init__(parent=parent)
