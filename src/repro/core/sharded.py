"""Sharded scatter-gather execution backend.

:class:`ShardedBackend` implements :class:`~repro.core.backends.ExecutionBackend`
over N child backends, each holding one partition of every partitioned
table (and a full copy of every replicated table).  The distributed plan
is decided upstream by the pipeline's
:class:`~repro.core.xformer.distributed.DistributePass` and arrives as an
annotation on the SQL text; this module executes it:

* ``single``  — route the statement to one shard;
* ``scatter`` — fan the statement out on a bounded worker pool (the PR-6
  ``WorkerPool`` discipline), then merge the per-shard *columnar* results
  by the plan's sort keys without ever pivoting to rows;
* ``partial``/``gather`` — fan subplans out, load the gathered rows into
  a private coordinator engine, execute the merge SQL there.

Per-shard resilience: every child is wrapped in the PR-4
:class:`~repro.wlm.retry.ResilientBackend` with its *own* circuit breaker,
slow shards are hedged against a configurable replica after
``ShardingConfig.hedge_delay`` (idempotent reads only, first response
wins), and the active request deadline propagates into every worker so
one slow shard surfaces as a named ``DeadlineExceededError`` instead of a
silently blown budget.

Statements without a plan annotation (metadata probes, DDL, anything the
planner could not split) take conservative routes: catalog reads go to
shard 0, DDL broadcasts, and reads touching partitioned tables run
against a lazily-populated coordinator *mirror* — slow, but always
correct.

Layering (lint rule HQ007): partition-key routing lives here and in the
distributed-rewrite pass only.
"""

from __future__ import annotations

import functools
import re
import threading
import time

from repro.analysis.concurrency.locks import make_lock
from repro.config import ShardingConfig
from repro.core.backends import ExecutionBackend
from repro.core.metadata import PartitionMap
from repro.core.xformer.distributed import extract_plan
from repro.errors import BackendSqlError
from repro.obs import get_logger, metrics, tracing
from repro.server.reactor import WorkerPool
from repro.sqlengine.catalog import Column
from repro.sqlengine.engine import Engine
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import SqlType
from repro.wlm import WorkloadManager
from repro.wlm.deadline import current_context, current_deadline, request_scope
from repro.wlm.retry import ResilientBackend, is_idempotent

_log = get_logger("core.sharded")

SHARD_FANOUT = metrics.counter(
    "shard_fanout_total", "Subplans fanned out to shards"
)
SHARD_QUERIES = metrics.counter(
    "shard_queries_total", "Statements executed per shard"
)
SHARD_ERRORS = metrics.counter(
    "shard_errors_total", "Statement failures per shard"
)
SHARD_LATENCY = metrics.histogram(
    "shard_latency_seconds", "Per-shard statement latency"
)
SHARD_HEDGES = metrics.counter(
    "shard_hedges_total", "Hedged reads fired against shard replicas"
)
SHARD_MERGE_ROWS = metrics.counter(
    "shard_merge_rows_total", "Rows flowing through coordinator merges"
)
SHARD_MIRROR = metrics.counter(
    "shard_mirror_total", "Unplanned statements served by the mirror fallback"
)

_WRITE_VERBS = ("create", "drop", "alter", "insert", "update", "delete",
                "truncate")

_CTAS_RE = re.compile(
    r'^\s*create\s+(?:temp(?:orary)?\s+)?table\s+'
    r'(?:"(?P<quoted>(?:[^"]|"")+)"|(?P<plain>\w+))\s+as\s+(?P<select>.+)$',
    re.IGNORECASE | re.DOTALL,
)

_MISSING_RELATION_RE = re.compile(r'relation "([^"]+)" does not exist')


# ---------------------------------------------------------------------------
# Futures for the scatter boundary
# ---------------------------------------------------------------------------


class _Future:
    """Result slot filled by a worker; ``signal`` wakes first-wins waits."""

    __slots__ = ("_done", "value", "error", "signal")

    def __init__(self, signal: threading.Event | None = None):
        self._done = threading.Event()
        self.value = None
        self.error: Exception | None = None
        self.signal = signal

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def set(self, value) -> None:
        self.value = value
        self._done.set()
        if self.signal is not None:
            self.signal.set()

    def fail(self, error: Exception) -> None:
        self.error = error
        self._done.set()
        if self.signal is not None:
            self.signal.set()

    def wait(self, timeout: float | None) -> bool:
        return self._done.wait(timeout)


def _find_engine(backend) -> Engine | None:
    """Unwrap resilience layers to a direct in-process engine, if any."""
    seen = 0
    node = backend
    while node is not None and seen < 8:
        engine = getattr(node, "engine", None)
        if isinstance(engine, Engine):
            return engine
        node = getattr(node, "inner", None)
        seen += 1
    return None


class ShardHandle:
    """One shard: resilient primary, optional replica, health counters."""

    def __init__(
        self,
        index: int,
        primary: ExecutionBackend,
        replica: ExecutionBackend | None,
        wlm: WorkloadManager,
    ):
        self.index = index
        self.primary = ResilientBackend(
            primary,
            policy=wlm.retry_policy,
            breaker=wlm.breaker_for(f"shard{index}"),
            faults=wlm.faults,
            name=f"shard{index}",
        )
        self.replica = (
            ResilientBackend(
                replica,
                policy=wlm.retry_policy,
                breaker=wlm.breaker_for(f"shard{index}-replica"),
                faults=None,  # faults are injected on primaries only
                name=f"shard{index}-replica",
            )
            if replica is not None
            else None
        )
        self._stats_lock = make_lock("shard.stats")
        self.queries = 0
        self.errors = 0
        self.hedges = 0
        self.latency_total = 0.0

    def record(self, seconds: float, failed: bool) -> None:
        with self._stats_lock:
            self.queries += 1
            self.latency_total += seconds
            if failed:
                self.errors += 1

    def record_hedge(self) -> None:
        with self._stats_lock:
            self.hedges += 1

    def load_table(self, name: str, columns: list[Column], rows: list) -> None:
        """Data-plane load of one table onto primary (and replica)."""
        for target in (self.primary, self.replica):
            if target is None:
                continue
            engine = _find_engine(target)
            if engine is not None:
                if engine.catalog.exists(name):
                    engine.catalog.drop(name)
                engine.create_table_from_columns(
                    name, columns, [list(r) for r in rows]
                )
                continue
            loader = None
            node = target
            for __ in range(8):
                loader = getattr(node, "load_columns", None)
                if loader is not None or node is None:
                    break
                node = getattr(node, "inner", None)
            if loader is None:
                raise BackendSqlError(
                    f"shard {self.index} backend has no bulk-load path"
                )
            loader(name, columns, rows)

    def _process_info(self) -> dict:
        """Transport-level row fields: a process-backed shard reports its
        worker pid/restarts/rss; an in-process shard reports thread mode."""
        node = self.primary
        for __ in range(8):
            if node is None:
                break
            probe = getattr(node, "process_info", None)
            if probe is not None:
                return probe()
            node = getattr(node, "inner", None)
        return {"mode": "thread", "pid": 0, "restarts": 0, "rss_kb": 0}

    def snapshot(self) -> dict:
        with self._stats_lock:
            queries, errors = self.queries, self.errors
            hedges, latency = self.hedges, self.latency_total
        info = self._process_info()
        return {
            "shard": self.index,
            "state": self.primary.breaker.snapshot()["state"],
            "queries": queries,
            "errors": errors,
            "hedges": hedges,
            "mean_ms": (latency / queries * 1000.0) if queries else 0.0,
            "mode": info.get("mode", "thread"),
            "pid": int(info.get("pid", 0)),
            "restarts": int(info.get("restarts", 0)),
            "rss_kb": int(info.get("rss_kb", 0)),
        }

    def close(self) -> None:
        for target in (self.primary, self.replica):
            if target is None:
                continue
            close = getattr(target.inner, "close", None)
            if close is not None:
                try:
                    close()
                except Exception as exc:
                    _log.warning(
                        "shard_close_failed", shard=self.index, error=str(exc)
                    )


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


class ShardedBackend(ExecutionBackend):
    """Scatter-gather execution across N partitioned child backends."""

    #: duck-typed marker: WorkloadManager.wrap_backend must not re-wrap a
    #: sharded backend (its children are already individually resilient)
    is_sharded = True

    def __init__(
        self,
        children: list[ExecutionBackend],
        partition_map: PartitionMap,
        config: ShardingConfig | None = None,
        wlm: WorkloadManager | None = None,
        replicas: list[ExecutionBackend] | None = None,
        name: str = "sharded",
    ):
        if len(children) != partition_map.shard_count:
            raise ValueError(
                f"partition map expects {partition_map.shard_count} shards, "
                f"got {len(children)} children"
            )
        if replicas is not None and len(replicas) != len(children):
            raise ValueError("replicas must match children one-to-one")
        self.name = name
        self.partition_map = partition_map
        self.config = config or ShardingConfig()
        self._wlm = wlm or WorkloadManager()
        self._shards = [
            ShardHandle(
                i,
                child,
                replicas[i] if replicas is not None else None,
                self._wlm,
            )
            for i, child in enumerate(children)
        ]
        size = self.config.max_parallel or len(children)
        self._pool = WorkerPool(size, label=name)
        # mirror fallback state: a coordinator engine lazily populated
        # with full copies of backend tables, rebuilt when DDL moves the
        # topology-wide catalog version
        self._mirror_lock = make_lock("shard.mirror")
        self._mirror_engine: Engine | None = None
        self._mirror_version: int | None = None
        self._mirrored: set[str] = set()
        self._closed = False

    # -- ExecutionBackend ------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def run_sql(self, sql: str):
        plan, body = extract_plan(sql)
        if plan is not None:
            return self._run_plan(plan, body)
        return self._run_unplanned(body)

    def catalog_version(self) -> int:
        """Sum of child versions: monotone, and DDL on *any* shard moves
        it, so cached translations and the mirror invalidate correctly."""
        total = 0
        for shard in self._shards:
            version = shard.primary.inner.catalog_version()
            if version > 0:
                total += version
        return total

    def ping(self) -> bool:
        return any(shard.primary.inner.ping() for shard in self._shards)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(join_timeout=2.0)
        for shard in self._shards:
            shard.close()

    # -- health / admin --------------------------------------------------------

    def shard_snapshot(self) -> list[dict]:
        """Per-shard health rows (the ``shards[]`` admin command)."""
        return [shard.snapshot() for shard in self._shards]

    # -- data plane (loaders) --------------------------------------------------

    def route_rows(
        self, table: str, columns: list[Column], rows: list
    ) -> list[list]:
        """Split rows into per-shard buckets per the partition map.

        Replicated tables return the full row list for every shard.  The
        one place outside the planner that consults partition keys — and
        it lives here so loaders never inspect them (lint rule HQ007).
        """
        spec = self.partition_map.lookup(table)
        if spec is None:
            return [rows for __ in self._shards]
        key_index = next(
            i for i, c in enumerate(columns) if c.name == spec.key
        )
        buckets: list[list] = [[] for __ in self._shards]
        count = self.shard_count
        for row in rows:
            buckets[spec.shard_for(row[key_index], count)].append(row)
        return buckets

    def load_table(self, name: str, columns: list[Column], rows: list) -> None:
        """Load one table across the topology (partitioned or replicated)."""
        for shard, bucket in zip(self._shards, self.route_rows(name, columns, rows)):
            shard.load_table(name, columns, bucket)

    # -- plan execution --------------------------------------------------------

    def _run_plan(self, plan: dict, body: str):
        mode = plan["mode"]
        if mode == "single":
            return self._execute_on_shard(self._shards[plan["shard"]], body)
        targets = plan["targets"]
        with tracing.span("shard.scatter") as span:
            span.attrs["shard.fanout"] = len(targets)
            span.attrs["shard.mode"] = mode
            if mode == "scatter":
                results = self._fanout(targets, plan["sql"])
                return self._merge_scatter(results, plan)
            if mode in ("partial", "gather"):
                return self._run_merge_plan(plan, targets)
        raise BackendSqlError(f"unknown shard plan mode {mode!r}")

    def _execute_on_shard(self, shard: ShardHandle, sql: str):
        """One statement on one shard, hedged when it lags."""
        outcome = self._collect(
            {shard.index: self._submit(shard, shard.primary, sql)}, sql
        )
        return outcome[shard.index]

    def _fanout(self, targets: list[int], sql: str) -> list:
        """Run ``sql`` on every target shard; results in target order."""
        SHARD_FANOUT.inc(len(targets))
        futures = {
            i: self._submit(self._shards[i], self._shards[i].primary, sql)
            for i in targets
        }
        outcome = self._collect(futures, sql)
        return [outcome[i] for i in targets]

    def _submit(
        self, shard: ShardHandle, backend: ExecutionBackend, sql: str,
        signal: threading.Event | None = None,
    ) -> _Future:
        future = _Future(signal)
        context = current_context()
        label = str(shard.index)

        def job() -> None:
            start = time.monotonic()
            try:
                if context is not None:
                    with request_scope(context.deadline, context.query_class):
                        result = backend.run_sql(sql)
                else:
                    result = backend.run_sql(sql)
            except Exception as exc:
                shard.record(time.monotonic() - start, failed=True)
                SHARD_ERRORS.inc(shard=label)
                future.fail(exc)
                return
            elapsed = time.monotonic() - start
            shard.record(elapsed, failed=False)
            SHARD_QUERIES.inc(shard=label)
            SHARD_LATENCY.observe(elapsed, shard=label)
            with tracing.span("shard.task") as span:
                span.attrs["shard.id"] = shard.index
            future.set(result)

        self._pool.submit(job)
        return future

    def _collect(self, futures: dict, sql: str) -> dict:
        """Wait for every shard's result, hedging laggards.

        A shard that has not answered within ``hedge_delay`` gets its
        statement re-sent to the replica (idempotent reads only); the
        first response wins.  Waits are capped by the request deadline,
        and expiry names the shards still outstanding.
        """
        deadline = current_deadline()
        hedge_delay = self.config.hedge_delay
        hedgeable = hedge_delay > 0 and is_idempotent(sql)
        start = time.monotonic()
        hedges: dict[int, _Future] = {}
        results: dict[int, object] = {}

        def remaining() -> float | None:
            return None if deadline is None else deadline.remaining()

        # phase 1: give primaries the hedge window
        if hedgeable and any(
            self._shards[i].replica is not None for i in futures
        ):
            for index, future in futures.items():
                elapsed = time.monotonic() - start
                budget = max(0.0, hedge_delay - elapsed)
                cap = remaining()
                if cap is not None:
                    budget = min(budget, max(0.0, cap))
                future.wait(budget)
            for index, future in futures.items():
                shard = self._shards[index]
                if future.done or shard.replica is None:
                    continue
                shard.record_hedge()
                SHARD_HEDGES.inc(shard=str(index))
                signal = threading.Event()
                future.signal = signal
                if future.done:  # finished between the check and now
                    continue
                hedges[index] = self._submit(
                    shard, shard.replica, sql, signal
                )
                hedges[index].signal = signal

        # phase 2: first response wins per shard
        for index, future in futures.items():
            hedge = hedges.get(index)
            while True:
                if future.done and future.error is None:
                    results[index] = future.value
                    break
                if hedge is not None and hedge.done and hedge.error is None:
                    results[index] = hedge.value
                    break
                if future.done and (hedge is None or hedge.done):
                    raise future.error
                cap = remaining()
                if cap is not None and cap <= 0 and deadline is not None:
                    deadline.check(f"shard{index}.gather")
                wait_for = 0.25 if cap is None else min(0.25, max(cap, 0.01))
                if hedge is not None and future.signal is not None:
                    future.signal.wait(wait_for)
                    future.signal.clear()
                else:
                    future.wait(wait_for)
        return results

    # -- merging ---------------------------------------------------------------

    @staticmethod
    def _plan_columns(spec: list) -> list[Column]:
        return [Column(name, SqlType(type_text)) for name, type_text, *__ in spec]

    def _merge_scatter(self, results: list, plan: dict) -> ResultSet:
        """Ordered columnar concat of per-shard results (no row pivot)."""
        columns = self._plan_columns(plan["columns"])
        names = [c.name for c in columns]
        shard_data = [r.column_data for r in results]
        counts = [len(d[0]) if d else 0 for d in shard_data]
        total = sum(counts)
        SHARD_MERGE_ROWS.inc(total)
        if not columns:
            return ResultSet.from_columns(columns, [], command="SELECT")
        merge_keys = plan.get("merge_keys") or []
        key_refs = [(names.index(k), desc) for k, desc in merge_keys]
        refs = [
            (s, r) for s, count in enumerate(counts) for r in range(count)
        ]

        def compare(a, b):
            for column_index, descending in key_refs:
                va = shard_data[a[0]][column_index][a[1]]
                vb = shard_data[b[0]][column_index][b[1]]
                if va is None or vb is None:
                    if va is not None:  # NULLs sort first (Q: null smallest)
                        order = 1
                    elif vb is not None:
                        order = -1
                    else:
                        continue
                elif va < vb:
                    order = -1
                elif vb < va:
                    order = 1
                else:
                    continue
                return -order if descending else order
            return 0

        refs.sort(key=functools.cmp_to_key(compare))
        merged = [
            [shard_data[s][ci][r] for s, r in refs]
            for ci in range(len(columns))
        ]
        return ResultSet.from_columns(columns, merged, command="SELECT")

    def _run_merge_plan(self, plan: dict, targets: list[int]) -> ResultSet:
        """Gather subplan results into a per-query coordinator engine and
        execute the merge SQL over them."""
        coordinator = Engine()
        gathered_rows = 0
        for task in plan["tasks"]:
            task_targets = task.get("targets", targets)
            results = self._fanout(task_targets, task["sql"])
            columns = self._plan_columns(task["columns"])
            names = [c.name for c in columns]
            data: list[list] = [[] for __ in columns]
            for result in results:
                for ci, values in enumerate(result.column_data):
                    data[ci].extend(values)
            order_col = task.get("order_col")
            if order_col is not None and order_col in names and data:
                # restore global base order (ordcol is globally unique)
                order_values = data[names.index(order_col)]
                permutation = sorted(
                    range(len(order_values)), key=order_values.__getitem__
                )
                data = [
                    [values[i] for i in permutation] for values in data
                ]
            rows = list(zip(*data)) if columns else []
            gathered_rows += len(rows)
            coordinator.create_table_from_columns(
                task["table"], columns, [list(r) for r in rows]
            )
        SHARD_MERGE_ROWS.inc(gathered_rows)
        return coordinator.execute(plan["merge_sql"])

    # -- unplanned statements --------------------------------------------------

    def _run_unplanned(self, body: str):
        lowered = body.lower()
        if "information_schema" in lowered or "pg_tables" in lowered or (
            "pg_catalog" in lowered
        ):
            # catalog probes: schemas are identical on every shard
            return self._execute_on_shard(self._shards[0], body)
        referenced = self._referenced_partitioned(body)
        if self._is_write(lowered):
            if referenced:
                ctas = _CTAS_RE.match(body)
                if ctas is None:
                    raise BackendSqlError(
                        "writes touching partitioned tables "
                        f"({', '.join(sorted(referenced))}) must go through "
                        "the sharded load path",
                        code="0A000",
                    )
                return self._broadcast_ctas(ctas)
            return self._broadcast(body)
        if not referenced:
            return self._execute_on_shard(self._shards[0], body)
        return self._mirror(body)

    @staticmethod
    def _is_write(lowered: str) -> bool:
        stripped = lowered.lstrip()
        return stripped.startswith(_WRITE_VERBS)

    def _referenced_partitioned(self, body: str) -> set[str]:
        found = set()
        for table in self.partition_map.tables:
            if re.search(rf'\b{re.escape(table)}\b', body):
                found.add(table)
        return found

    def _broadcast(self, body: str):
        """A write on replicated state runs identically on every shard."""
        result = None
        for shard in self._shards:
            result = self._execute_on_shard(shard, body)
        # DML (INSERT/UPDATE/DELETE on a replicated table) does not move
        # the catalog version, so the mirror's version check alone would
        # keep serving pre-write copies: drop the mirror outright
        self._invalidate_mirror()
        return result

    def _invalidate_mirror(self) -> None:
        with self._mirror_lock:
            self._mirror_engine = None
            self._mirror_version = None
            self._mirrored = set()

    def _broadcast_ctas(self, match: re.Match):
        """CREATE TABLE ... AS over partitioned inputs: compute the
        global result once on the mirror, then replicate it everywhere
        (the materialized table behaves as a broadcast dimension)."""
        name = match.group("quoted") or match.group("plain")
        name = name.replace('""', '"')
        selected = self._mirror(match.group("select"))
        columns = list(selected.columns)
        self.load_table(name, columns, [list(r) for r in selected.rows])
        return ResultSet([], [], command="CREATE TABLE")

    # -- mirror fallback -------------------------------------------------------

    def _mirror(self, body: str) -> ResultSet:
        """Execute against a coordinator engine holding full table copies.

        Tables are copied lazily on first reference (detected via the
        engine's missing-relation error) and kept until DDL moves the
        topology catalog version.  Partitioned tables are gathered from
        all shards and restored to global ``ordcol`` order, so results
        are byte-identical to a single-node run.
        """
        SHARD_MIRROR.inc()
        with self._mirror_lock:
            version = self.catalog_version()
            if self._mirror_engine is None or self._mirror_version != version:
                self._mirror_engine = Engine()
                self._mirror_version = version
                self._mirrored = set()
            engine = self._mirror_engine
            for __ in range(32):  # bounded lazy-copy loop
                try:
                    return engine.execute(body)
                except Exception as exc:
                    missing = self._missing_relation(exc)
                    if missing is None or missing in self._mirrored:
                        raise
                    self._copy_to_mirror(engine, missing)
                    self._mirrored.add(missing)
            raise BackendSqlError("mirror fallback did not converge")

    @staticmethod
    def _missing_relation(exc: Exception) -> str | None:
        match = _MISSING_RELATION_RE.search(str(exc))
        return match.group(1) if match else None

    def _copy_to_mirror(self, engine: Engine, table: str) -> None:
        quoted = '"' + table.replace('"', '""') + '"'
        sql = f"SELECT * FROM {quoted}"
        if self.partition_map.is_partitioned(table):
            results = self._fanout(list(range(self.shard_count)), sql)
        else:
            results = [self._execute_on_shard(self._shards[0], sql)]
        columns = list(results[0].columns)
        names = [c.name for c in columns]
        rows: list = []
        for result in results:
            rows.extend(list(r) for r in result.rows)
        if "ordcol" in names:
            order_index = names.index("ordcol")
            rows.sort(key=lambda row: row[order_index])
        engine.create_table_from_columns(table, columns, rows)
