"""Plugin registry for system-specific endpoints and gateways.

Hyper-Q "virtualizes access to different databases by adopting a
plugin-based architecture and using version-aware system components"
(paper Section 3).  The registry maps a (system, version) pair to the
endpoint (application-side protocol handler) and gateway (backend-side
protocol handler) implementations; components ask for the most specific
version available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError


class PluginError(ReproError):
    pass


@dataclass(frozen=True)
class PluginKey:
    system: str  # e.g. 'kdb', 'postgres', 'greenplum'
    version: str  # e.g. '3.0'; '*' matches any


@dataclass
class Plugin:
    key: PluginKey
    role: str  # 'endpoint' | 'gateway'
    factory: Callable


class PluginRegistry:
    def __init__(self):
        self._plugins: dict[tuple[str, str, str], Plugin] = {}

    def register(
        self, system: str, version: str, role: str, factory: Callable
    ) -> None:
        key = (system, version, role)
        if key in self._plugins:
            raise PluginError(
                f"{role} plugin for {system} {version} already registered"
            )
        self._plugins[key] = Plugin(PluginKey(system, version), role, factory)

    def resolve(self, system: str, version: str, role: str) -> Plugin:
        """Most specific match: exact version, then the '*' wildcard."""
        plugin = self._plugins.get((system, version, role))
        if plugin is None:
            plugin = self._plugins.get((system, "*", role))
        if plugin is None:
            raise PluginError(
                f"no {role} plugin registered for {system} {version}"
            )
        return plugin

    def create(self, system: str, version: str, role: str, *args, **kwargs):
        return self.resolve(system, version, role).factory(*args, **kwargs)

    def systems(self) -> list[tuple[str, str, str]]:
        return sorted(self._plugins)


#: process-wide default registry; servers register their plugins here
default_registry = PluginRegistry()
