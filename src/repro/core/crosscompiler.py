"""Cross Compiler (XC): query and result translation driver (Figure 4).

The XC couples two components:

* the **Query Translator (QT)** drives Q text through the translation
  pipeline — parse, bind (Algebrizer), transform (Xformer), serialize —
  and measures each stage (the stage split is the paper's Figure 7);
* the **Protocol Translator (PT)** turns backend row sets back into the
  column-oriented values a Q application expects (Figure 5's pivot),
  buffering the full result before forming the QIPC message.

Both are modeled as FSMs per the paper's design.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.fsm import Fsm
from repro.core.serializer import Serializer
from repro.core.xformer.framework import Xformer
from repro.errors import TranslationError
from repro.obs import metrics, tracing
from repro.qlang.qtypes import QType
from repro.qlang.values import (
    QDict,
    QKeyedTable,
    QList,
    QTable,
    QValue,
    QVector,
)
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import SqlType

#: per-stage translation latency (Figure 7), labelled stage=parse|
#: algebrize|optimize|serialize; shared with the session's parse stage
STAGE_SECONDS = metrics.histogram(
    "hyperq_stage_seconds",
    "Wall-clock seconds spent per translation stage",
)


@dataclass
class StageTimings:
    """Per-stage wall-clock seconds for one translation (Figure 7)."""

    parse: float = 0.0
    algebrize: float = 0.0
    optimize: float = 0.0
    serialize: float = 0.0

    @property
    def total(self) -> float:
        return self.parse + self.algebrize + self.optimize + self.serialize

    def add(self, other: "StageTimings") -> None:
        self.parse += other.parse
        self.algebrize += other.algebrize
        self.optimize += other.optimize
        self.serialize += other.serialize


@contextmanager
def stage_span(timings: StageTimings, stage: str):
    """Time one pipeline stage through the tracer.

    One measurement feeds all three consumers: the ``stage.<name>`` trace
    span, the ``hyperq_stage_seconds`` histogram, and the corresponding
    :class:`StageTimings` field — so timings and spans agree exactly.
    """
    with tracing.span(f"stage.{stage}") as span:
        yield span
    setattr(timings, stage, getattr(timings, stage) + span.duration)
    STAGE_SECONDS.observe(span.duration, stage=stage)


@dataclass
class TranslationResult:
    """Everything QT produces for one Q statement."""

    sql: str
    shape: str
    keys: list[str]
    timings: StageTimings
    rule_applications: dict[str, int] = field(default_factory=dict)


class QueryTranslator:
    """QT: drives bind -> transform -> serialize as an FSM."""

    def __init__(self, binder_factory, xformer: Xformer, serializer: Serializer):
        self._binder_factory = binder_factory
        self.xformer = xformer
        self.serializer = serializer

    def _build_fsm(self, work: dict) -> Fsm:
        fsm = Fsm("query-translator", "idle")
        for state in ("binding", "transforming", "serializing", "done"):
            fsm.add_state(state)

        def do_bind(machine: Fsm, payload) -> None:
            with stage_span(work["timings"], "algebrize"):
                binder = self._binder_factory()
                work["bound"] = binder.bind(work["ast"])
            machine.fire("bound")

        def do_transform(machine: Fsm, payload) -> None:
            from repro.core.algebrizer.binder import BoundScalar

            with stage_span(work["timings"], "optimize"):
                bound = work["bound"]
                if isinstance(bound, BoundScalar):
                    work["xformed"] = bound
                    work["rules"] = {}
                else:
                    op, ctx = self.xformer.transform(bound.op, bound.shape)
                    bound.op = op
                    work["xformed"] = bound
                    work["rules"] = dict(ctx.applications)
            machine.fire("transformed")

        def do_serialize(machine: Fsm, payload) -> None:
            from repro.core.algebrizer.binder import BoundScalar

            with stage_span(work["timings"], "serialize"):
                bound = work["xformed"]
                if isinstance(bound, BoundScalar):
                    work["sql"] = self.serializer.serialize_scalar_statement(
                        bound.scalar
                    )
                    work["shape"] = "atom"
                    work["keys"] = []
                else:
                    work["sql"] = self.serializer.serialize(bound.op)
                    work["shape"] = bound.shape
                    work["keys"] = list(bound.keys)
            machine.fire("serialized")

        fsm.add_state("binding", on_enter=do_bind)
        fsm.add_state("transforming", on_enter=do_transform)
        fsm.add_state("serializing", on_enter=do_serialize)
        fsm.add_transition("idle", "translate", "binding")
        fsm.add_transition("binding", "bound", "transforming")
        fsm.add_transition("transforming", "transformed", "serializing")
        fsm.add_transition("serializing", "serialized", "done")
        return fsm

    def translate(self, ast_node, timings: StageTimings) -> TranslationResult:
        work: dict = {"ast": ast_node, "timings": timings}
        fsm = self._build_fsm(work)
        fsm.fire("translate")
        if fsm.state != "done":
            raise TranslationError(
                f"query translator stalled in state {fsm.state!r}"
            )
        return TranslationResult(
            sql=work["sql"],
            shape=work["shape"],
            keys=work["keys"],
            timings=timings,
            rule_applications=work.get("rules", {}),
        )

    def bound_for(self, ast_node):
        """Bind without serializing (used by materialization)."""
        binder = self._binder_factory()
        return binder.bind(ast_node)


# ---------------------------------------------------------------------------
# Result pivoting (PT's response path, Figure 5)
# ---------------------------------------------------------------------------

_SQL_TO_QTYPE = {
    SqlType.BOOLEAN: QType.BOOLEAN,
    SqlType.SMALLINT: QType.SHORT,
    SqlType.INTEGER: QType.INT,
    SqlType.BIGINT: QType.LONG,
    SqlType.REAL: QType.REAL,
    SqlType.DOUBLE: QType.FLOAT,
    SqlType.NUMERIC: QType.FLOAT,
    SqlType.VARCHAR: QType.SYMBOL,
    SqlType.TEXT: QType.SYMBOL,
    SqlType.CHAR: QType.CHAR,
    SqlType.DATE: QType.DATE,
    SqlType.TIME: QType.TIME,
    SqlType.TIMESTAMP: QType.TIMESTAMP,
    SqlType.INTERVAL: QType.TIMESPAN,
    SqlType.NULL: QType.LONG,
    SqlType.UUID: QType.GUID,
}


def _is_internal(name: str) -> bool:
    return name == "ordcol" or name.startswith("hq_")


def _column_to_vector(values: list, sql_type: SqlType) -> QVector:
    qtype = _SQL_TO_QTYPE.get(sql_type, QType.FLOAT)
    null = qtype.null_value()
    raws = []
    for value in values:
        if value is None:
            raws.append(null)
        elif qtype == QType.BOOLEAN:
            raws.append(bool(value))
        elif qtype in (QType.FLOAT, QType.REAL):
            raws.append(float(value))
        elif qtype in (QType.SYMBOL, QType.CHAR):
            raws.append(str(value))
        else:
            raws.append(int(value))
    return QVector(qtype, raws)


def pivot_result(result: ResultSet, shape: str, keys: list[str]) -> QValue:
    """Pivot a row-oriented SQL result into the column-oriented Q value.

    This is the QIPC-side of Figure 5: PG streams rows; Hyper-Q buffers
    them (the ResultSet *is* the buffered set) and flips to columns.
    """
    visible = [
        (i, col)
        for i, col in enumerate(result.columns)
        if not _is_internal(col.name)
    ]
    column_values = {
        col.name: [row[i] for row in result.rows] for i, col in visible
    }
    vectors = {
        col.name: _column_to_vector(column_values[col.name], col.sql_type)
        for __, col in visible
    }
    names = [col.name for __, col in visible]

    if shape == "atom":
        if len(names) != 1 or len(result.rows) != 1:
            raise TranslationError(
                f"atom-shaped result has {len(names)} columns x "
                f"{len(result.rows)} rows"
            )
        return vectors[names[0]].atom_at(0)
    if shape == "vector":
        if len(names) != 1:
            raise TranslationError("vector-shaped result needs one column")
        return vectors[names[0]]
    if shape == "dict":
        return QDict(
            QVector(QType.SYMBOL, names),
            QList([vectors[n] for n in names]),
        )
    if shape == "dict_keyed":
        key_names = [n for n in names if n in keys]
        value_names = [n for n in names if n not in keys]
        if len(key_names) == 1 and len(value_names) == 1:
            return QDict(vectors[key_names[0]], vectors[value_names[0]])
        key_table = QTable(key_names, [vectors[n] for n in key_names])
        value_table = QTable(value_names, [vectors[n] for n in value_names])
        return QKeyedTable(key_table, value_table)
    if shape == "keyed" and keys:
        key_names = [n for n in names if n in keys]
        value_names = [n for n in names if n not in keys]
        key_table = QTable(key_names, [vectors[n] for n in key_names])
        value_table = QTable(value_names, [vectors[n] for n in value_names])
        return QKeyedTable(key_table, value_table)
    return QTable(names, [vectors[n] for n in names])


class ProtocolTranslator:
    """PT: an FSM walking one request through execute-and-pivot."""

    def __init__(self, run_sql):
        self._run_sql = run_sql

    def respond(self, translation: TranslationResult) -> QValue:
        work: dict = {}
        fsm = Fsm("protocol-translator", "idle")
        fsm.add_state("executing")
        fsm.add_state("pivoting")
        fsm.add_state("responding")

        def do_execute(machine: Fsm, payload) -> None:
            with tracing.span("pt.execute"):
                work["result"] = self._run_sql(translation.sql)
            machine.fire("results_ready")

        def do_pivot(machine: Fsm, payload) -> None:
            with tracing.span("pt.pivot"):
                work["value"] = pivot_result(
                    work["result"], translation.shape, translation.keys
                )
            machine.fire("pivoted")

        fsm.add_state("executing", on_enter=do_execute)
        fsm.add_state("pivoting", on_enter=do_pivot)
        fsm.add_transition("idle", "query_ready", "executing")
        fsm.add_transition("executing", "results_ready", "pivoting")
        fsm.add_transition("pivoting", "pivoted", "responding")
        fsm.fire("query_ready")
        return work["value"]
