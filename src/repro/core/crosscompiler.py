"""Cross Compiler (XC): query and result translation driver (Figure 4).

The XC couples two components:

* the **Query Translator (QT)** drives Q statements through the staged
  pipeline — bind (Algebrizer), transform (Xformer), serialize — which
  now lives in :mod:`repro.core.pipeline` as an explicit pass manager;
  :class:`QueryTranslator` here is the thin per-session facade over it
  (built once; the active scope is passed per call);
* the **Protocol Translator (PT)** turns backend row sets back into the
  column-oriented values a Q application expects (Figure 5's pivot),
  buffering the full result before forming the QIPC message.  The PT is
  modeled as an FSM per the paper's design.

``StageTimings``/``stage_span``/``TranslationResult`` moved to
:mod:`repro.core.pipeline` with the stage machinery; they are re-exported
here for compatibility.
"""

from __future__ import annotations

from repro.core.fsm import Fsm
from repro.core.pipeline import (
    STAGE_SECONDS,
    StageTimings,
    TranslationPipeline,
    TranslationResult,
    stage_span,
)
from repro.core.scopes import Scope
from repro.errors import TranslationError
from repro.obs import tracing
from repro.qlang.qtypes import QType
from repro.qlang.values import (
    QDict,
    QKeyedTable,
    QList,
    QTable,
    QValue,
    QVector,
)
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.types import SqlType

__all__ = [
    "STAGE_SECONDS",
    "ProtocolTranslator",
    "QueryTranslator",
    "StageTimings",
    "TranslationResult",
    "pivot_result",
    "stage_span",
]


class QueryTranslator:
    """QT: facade over the pass pipeline (one per session)."""

    def __init__(self, pipeline: TranslationPipeline):
        self.pipeline = pipeline

    def translate(
        self, ast_node, scope: Scope, timings: StageTimings
    ) -> TranslationResult:
        return self.pipeline.translate(ast_node, scope, timings).to_result()

    def bound_for(self, ast_node, scope: Scope):
        """Bind without serializing (used by materialization)."""
        return self.pipeline.bind(ast_node, scope)


# ---------------------------------------------------------------------------
# Result pivoting (PT's response path, Figure 5)
# ---------------------------------------------------------------------------

_SQL_TO_QTYPE = {
    SqlType.BOOLEAN: QType.BOOLEAN,
    SqlType.SMALLINT: QType.SHORT,
    SqlType.INTEGER: QType.INT,
    SqlType.BIGINT: QType.LONG,
    SqlType.REAL: QType.REAL,
    SqlType.DOUBLE: QType.FLOAT,
    SqlType.NUMERIC: QType.FLOAT,
    SqlType.VARCHAR: QType.SYMBOL,
    SqlType.TEXT: QType.SYMBOL,
    SqlType.CHAR: QType.CHAR,
    SqlType.DATE: QType.DATE,
    SqlType.TIME: QType.TIME,
    SqlType.TIMESTAMP: QType.TIMESTAMP,
    SqlType.INTERVAL: QType.TIMESPAN,
    SqlType.NULL: QType.LONG,
    SqlType.UUID: QType.GUID,
}


def _is_internal(name: str) -> bool:
    return name == "ordcol" or name.startswith("hq_")


def _converter_for(qtype: QType):
    if qtype == QType.BOOLEAN:
        return bool
    if qtype in (QType.REAL, QType.FLOAT):
        return float
    if qtype in (QType.SYMBOL, QType.CHAR):
        return str
    return int


#: Q-type -> per-value coercion, resolved once per column instead of an
#: if/elif dispatch per cell
_QTYPE_CONVERTERS = {
    qtype: _converter_for(qtype) for qtype in set(_SQL_TO_QTYPE.values())
}


def _column_to_vector(values: list, sql_type: SqlType) -> QVector:
    qtype = _SQL_TO_QTYPE.get(sql_type, QType.FLOAT)
    null = qtype.null_value()
    convert = _QTYPE_CONVERTERS.get(qtype, float)
    raws = [null if value is None else convert(value) for value in values]
    return QVector(qtype, raws)


def pivot_result(result: ResultSet, shape: str, keys: list[str]) -> QValue:
    """Pivot a SQL result into the column-oriented Q value it maps to.

    This is the QIPC side of Figure 5: PG streams rows; Hyper-Q buffers
    them (the ResultSet *is* the buffered set) and ships columns.  A
    gateway result already carries columnar data, so this is a cheap
    wrap — no transpose; engine-built row results transpose once inside
    ``ResultSet.column_data``.
    """
    data = result.column_data
    row_count = len(data[0]) if data else 0
    visible = [
        (i, col)
        for i, col in enumerate(result.columns)
        if not _is_internal(col.name)
    ]
    vectors = {
        col.name: _column_to_vector(data[i], col.sql_type)
        for i, col in visible
    }
    names = [col.name for __, col in visible]

    if shape == "atom":
        if len(names) != 1 or row_count != 1:
            raise TranslationError(
                f"atom-shaped result has {len(names)} columns x "
                f"{row_count} rows"
            )
        return vectors[names[0]].atom_at(0)
    if shape == "vector":
        if len(names) != 1:
            raise TranslationError("vector-shaped result needs one column")
        return vectors[names[0]]
    if shape == "dict":
        return QDict(
            QVector(QType.SYMBOL, names),
            QList([vectors[n] for n in names]),
        )
    if shape == "dict_keyed":
        key_names = [n for n in names if n in keys]
        value_names = [n for n in names if n not in keys]
        if len(key_names) == 1 and len(value_names) == 1:
            return QDict(vectors[key_names[0]], vectors[value_names[0]])
        key_table = QTable(key_names, [vectors[n] for n in key_names])
        value_table = QTable(value_names, [vectors[n] for n in value_names])
        return QKeyedTable(key_table, value_table)
    if shape == "keyed" and keys:
        key_names = [n for n in names if n in keys]
        value_names = [n for n in names if n not in keys]
        key_table = QTable(key_names, [vectors[n] for n in key_names])
        value_table = QTable(value_names, [vectors[n] for n in value_names])
        return QKeyedTable(key_table, value_table)
    return QTable(names, [vectors[n] for n in names])


class ProtocolTranslator:
    """PT: an FSM walking one request through execute-and-pivot.

    ``execute`` receives the whole :class:`TranslationResult` (not bare
    SQL): the executor behind it needs the statement's read set and
    admission class to drive the result cache and temp-data tier.
    """

    def __init__(self, execute):
        self._execute = execute

    def respond(self, translation: TranslationResult) -> QValue:
        work: dict = {}
        fsm = Fsm("protocol-translator", "idle")
        fsm.add_state("executing")
        fsm.add_state("pivoting")
        fsm.add_state("responding")

        def do_execute(machine: Fsm, payload) -> None:
            with tracing.span("pt.execute"):
                work["result"] = self._execute(translation)
            machine.fire("results_ready")

        def do_pivot(machine: Fsm, payload) -> None:
            with tracing.span("pt.pivot"):
                work["value"] = pivot_result(
                    work["result"], translation.shape, translation.keys
                )
            machine.fire("pivoted")

        fsm.add_state("executing", on_enter=do_execute)
        fsm.add_state("pivoting", on_enter=do_pivot)
        fsm.add_transition("idle", "query_ready", "executing")
        fsm.add_transition("executing", "results_ready", "pivoting")
        fsm.add_transition("pivoting", "pivoted", "responding")
        fsm.fire("query_ready")
        return work["value"]
