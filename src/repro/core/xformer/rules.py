"""The stock Xformer rules, one per purpose the paper names.

* :class:`TwoValuedLogicRule` — **correctness**: strict equalities on
  nullable operands become ``IS [NOT] DISTINCT FROM`` so Q's two-valued
  null semantics survive translation (Section 3.3, first bullet).
* :class:`ColumnPruningRule` — **performance**: keep only the columns each
  node actually needs, "to avoid bloating the serialized SQL with
  unnecessary columns" (second bullet).
* :class:`OrderElisionRule` — **transparency**: drop ordering requirements
  under order-insensitive parents, e.g. a scalar aggregation over a nested
  query (third bullet).
* :class:`OrderInjectionRule` — **transparency**: guarantee the final
  result carries and is sorted by an implicit order column, injecting a
  ``row_number`` window when the input has none.
* :class:`ConstantFoldingRule` — housekeeping: folds literal arithmetic.
"""

from __future__ import annotations

from repro.core.xformer.framework import Rule, XformContext
from repro.core.xtra import scalars as sc
from repro.core.xtra.ops import (
    ORDCOL,
    XtraConstTable,
    XtraDistinct,
    XtraFilter,
    XtraGet,
    XtraGroupAgg,
    XtraJoin,
    XtraLimit,
    XtraOp,
    XtraProject,
    XtraSort,
    XtraUnionAll,
    XtraWindow,
)
from repro.core.xtra.scalars import scalar_columns
from repro.sqlengine.types import SqlType

#: aggregates whose result depends on input order; sorts feeding them
#: cannot be elided
_ORDER_SENSITIVE_AGGS = {"first", "last", "array_agg", "string_agg"}


def default_rules() -> list[Rule]:
    return [
        ConstantFoldingRule(),
        TwoValuedLogicRule(),
        FilterMergeRule(),
        OrderElisionRule(),
        ColumnPruningRule(),
        OrderInjectionRule(),
    ]


# ---------------------------------------------------------------------------
# scalar rewriting helpers
# ---------------------------------------------------------------------------


def _map_pairs(pairs, fn):
    """Apply fn to the scalar of each (name, scalar) pair, preserving
    identity when nothing changes (avoids invalidating property caches)."""
    out = []
    changed = False
    for name, scalar in pairs:
        rewritten = fn(scalar)
        changed = changed or rewritten is not scalar
        out.append((name, rewritten))
    return (out, True) if changed else (pairs, False)


def rewrite_scalars(op: XtraOp, fn) -> XtraOp:
    """Apply ``fn`` to every scalar expression of ``op`` (not recursive
    over the relational tree).  Returns ``op`` itself when unchanged."""
    if isinstance(op, XtraProject):
        pairs, changed = _map_pairs(op.projections, fn)
        return XtraProject(op.child, pairs) if changed else op
    if isinstance(op, XtraFilter):
        predicate = fn(op.predicate)
        return XtraFilter(op.child, predicate) if predicate is not op.predicate else op
    if isinstance(op, XtraJoin):
        if op.condition is None:
            return op
        condition = fn(op.condition)
        if condition is op.condition:
            return op
        return XtraJoin(op.kind, op.left, op.right, condition)
    if isinstance(op, XtraGroupAgg):
        keys, keys_changed = _map_pairs(op.group_keys, fn)
        aggs, aggs_changed = _map_pairs(op.aggregates, fn)
        if not (keys_changed or aggs_changed):
            return op
        return XtraGroupAgg(op.child, keys, aggs)
    if isinstance(op, XtraWindow):
        windows, changed = _map_pairs(op.windows, fn)
        return XtraWindow(op.child, windows) if changed else op
    if isinstance(op, XtraSort):
        items = [(fn(s), d) for s, d in op.sort_items]
        if all(a is b for (a, __), (b, __) in zip(items, op.sort_items)):
            return op
        return XtraSort(op.child, items)
    return op


def map_tree(op: XtraOp, fn) -> XtraOp:
    """Bottom-up relational-tree rewrite; preserves node identity (and so
    the per-node property caches) along unchanged branches."""
    children = op.children()
    new_children = [map_tree(c, fn) for c in children]
    if any(a is not b for a, b in zip(children, new_children)):
        op = _rebuild_with_children(op, new_children)
    return fn(op)


def _rebuild_with_children(op: XtraOp, children: list[XtraOp]) -> XtraOp:
    if not children:
        return op
    if isinstance(op, XtraProject):
        return XtraProject(children[0], op.projections)
    if isinstance(op, XtraFilter):
        return XtraFilter(children[0], op.predicate)
    if isinstance(op, XtraJoin):
        return XtraJoin(op.kind, children[0], children[1], op.condition)
    if isinstance(op, XtraGroupAgg):
        return XtraGroupAgg(children[0], op.group_keys, op.aggregates)
    if isinstance(op, XtraWindow):
        return XtraWindow(children[0], op.windows)
    if isinstance(op, XtraSort):
        return XtraSort(children[0], op.sort_items)
    if isinstance(op, XtraLimit):
        return XtraLimit(children[0], op.count, op.offset)
    if isinstance(op, XtraUnionAll):
        return XtraUnionAll(children[0], children[1])
    if isinstance(op, XtraDistinct):
        return XtraDistinct(children[0])
    return op


def rewrite_scalar_tree(scalar: sc.Scalar, fn) -> sc.Scalar:
    """Bottom-up scalar-tree rewrite.  Nodes whose subtrees are unchanged
    are passed to ``fn`` as-is, so an identity ``fn`` costs no allocation —
    important on 500-column projections."""
    if isinstance(scalar, (sc.SConst, sc.SColRef)):
        return fn(scalar)

    node = scalar
    if isinstance(scalar, sc.SArith):
        left = rewrite_scalar_tree(scalar.left, fn)
        right = rewrite_scalar_tree(scalar.right, fn)
        if left is not scalar.left or right is not scalar.right:
            node = sc.SArith(scalar.op, left, right, type_=scalar.type_)
    elif isinstance(scalar, sc.SCmp):
        left = rewrite_scalar_tree(scalar.left, fn)
        right = rewrite_scalar_tree(scalar.right, fn)
        if left is not scalar.left or right is not scalar.right:
            node = sc.SCmp(scalar.op, left, right, null_safe=scalar.null_safe)
    elif isinstance(scalar, sc.SBool):
        args = [rewrite_scalar_tree(a, fn) for a in scalar.args]
        if any(a is not b for a, b in zip(args, scalar.args)):
            node = sc.SBool(scalar.op, args)
    elif isinstance(scalar, sc.SFunc):
        args = [rewrite_scalar_tree(a, fn) for a in scalar.args]
        if any(a is not b for a, b in zip(args, scalar.args)):
            node = sc.SFunc(scalar.name, args, type_=scalar.type_)
    elif isinstance(scalar, sc.SAgg):
        arg = rewrite_scalar_tree(scalar.arg, fn) if scalar.arg else None
        if arg is not scalar.arg:
            node = sc.SAgg(
                scalar.name, arg, type_=scalar.type_, distinct=scalar.distinct
            )
    elif isinstance(scalar, sc.SWindow):
        args = [rewrite_scalar_tree(a, fn) for a in scalar.args]
        partition = [rewrite_scalar_tree(p, fn) for p in scalar.partition_by]
        order = [(rewrite_scalar_tree(e, fn), d) for e, d in scalar.order_by]
        changed = (
            any(a is not b for a, b in zip(args, scalar.args))
            or any(a is not b for a, b in zip(partition, scalar.partition_by))
            or any(a is not b for (a, __), (b, __) in zip(order, scalar.order_by))
        )
        if changed:
            node = sc.SWindow(
                scalar.name, args, partition_by=partition, order_by=order,
                frame=scalar.frame, type_=scalar.type_,
            )
    elif isinstance(scalar, sc.SCast):
        arg = rewrite_scalar_tree(scalar.arg, fn)
        if arg is not scalar.arg:
            node = sc.SCast(arg, scalar.type_)
    elif isinstance(scalar, sc.SCase):
        branches = [
            (rewrite_scalar_tree(c, fn), rewrite_scalar_tree(r, fn))
            for c, r in scalar.branches
        ]
        default = (
            rewrite_scalar_tree(scalar.default, fn) if scalar.default else None
        )
        changed = default is not scalar.default or any(
            a is not c or b is not r
            for (a, b), (c, r) in zip(branches, scalar.branches)
        )
        if changed:
            node = sc.SCase(branches, default, type_=scalar.type_)
    elif isinstance(scalar, sc.SIsNull):
        arg = rewrite_scalar_tree(scalar.arg, fn)
        if arg is not scalar.arg:
            node = sc.SIsNull(arg, scalar.negated)
    elif isinstance(scalar, sc.SIn):
        arg = rewrite_scalar_tree(scalar.arg, fn)
        items = [rewrite_scalar_tree(i, fn) for i in scalar.items]
        if arg is not scalar.arg or any(
            a is not b for a, b in zip(items, scalar.items)
        ):
            node = sc.SIn(arg, items, scalar.negated)
    elif isinstance(scalar, sc.SBetween):
        arg = rewrite_scalar_tree(scalar.arg, fn)
        low = rewrite_scalar_tree(scalar.low, fn)
        high = rewrite_scalar_tree(scalar.high, fn)
        if arg is not scalar.arg or low is not scalar.low or high is not scalar.high:
            node = sc.SBetween(arg, low, high)
    elif isinstance(scalar, sc.SLike):
        arg = rewrite_scalar_tree(scalar.arg, fn)
        if arg is not scalar.arg:
            node = sc.SLike(arg, scalar.pattern)
    return fn(node)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


class TwoValuedLogicRule(Rule):
    """= / <> on nullable operands -> IS [NOT] DISTINCT FROM."""

    name = "two_valued_logic"
    purpose = "correctness"

    def apply(self, op: XtraOp, ctx: XformContext) -> XtraOp:
        def fix_scalar(scalar: sc.Scalar) -> sc.Scalar:
            if (
                isinstance(scalar, sc.SCmp)
                and scalar.op in ("=", "<>")
                and not scalar.null_safe
                and (scalar.left.nullable or scalar.right.nullable)
            ):
                ctx.record(self.name)
                return sc.SCmp(
                    scalar.op, scalar.left, scalar.right, null_safe=True
                )
            return scalar

        def fix_op(node: XtraOp) -> XtraOp:
            return rewrite_scalars(
                node, lambda s: rewrite_scalar_tree(s, fix_scalar)
            )

        return map_tree(op, fix_op)


class ConstantFoldingRule(Rule):
    """Fold arithmetic on literal constants."""

    name = "constant_folding"
    purpose = "performance"

    def apply(self, op: XtraOp, ctx: XformContext) -> XtraOp:
        def fold(scalar: sc.Scalar) -> sc.Scalar:
            if (
                isinstance(scalar, sc.SArith)
                and isinstance(scalar.left, sc.SConst)
                and isinstance(scalar.right, sc.SConst)
                and scalar.left.value is not None
                and scalar.right.value is not None
            ):
                left, right = scalar.left.value, scalar.right.value
                try:
                    if scalar.op == "+":
                        value = left + right
                    elif scalar.op == "-":
                        value = left - right
                    elif scalar.op == "*":
                        value = left * right
                    elif scalar.op == "%":
                        value = left / right
                    else:
                        return scalar
                except (TypeError, ZeroDivisionError):
                    return scalar
                ctx.record(self.name)
                return sc.SConst(value, scalar.type_)
            return scalar

        def fix_op(node: XtraOp) -> XtraOp:
            return rewrite_scalars(
                node, lambda s: rewrite_scalar_tree(s, fold)
            )

        return map_tree(op, fix_op)


class FilterMergeRule(Rule):
    """Collapse adjacent filters into one AND-ed predicate.

    Q's sequential where-conjuncts bind as a chain of xtra_filter nodes;
    for row-level predicates the chain is equivalent to a conjunction, and
    merging it halves the subquery nesting in the serialized SQL.
    """

    name = "filter_merge"
    purpose = "performance"

    def apply(self, op: XtraOp, ctx: XformContext) -> XtraOp:
        def fix(node: XtraOp) -> XtraOp:
            if isinstance(node, XtraFilter) and isinstance(node.child, XtraFilter):
                ctx.record(self.name)
                inner = node.child
                combined = sc.SBool("AND", [inner.predicate, node.predicate])
                return fix(XtraFilter(inner.child, combined))
            return node

        return map_tree(op, fix)


class OrderElisionRule(Rule):
    """Remove sorts feeding order-insensitive aggregations."""

    name = "order_elision"
    purpose = "transparency"

    def apply(self, op: XtraOp, ctx: XformContext) -> XtraOp:
        def strip_sorts(node: XtraOp) -> XtraOp:
            """Remove sorts below an order-insensitive parent, walking
            through order-preserving unary operators."""
            if isinstance(node, XtraSort):
                ctx.record(self.name)
                return strip_sorts(node.child)
            if isinstance(node, XtraProject):
                return XtraProject(strip_sorts(node.child), node.projections)
            if isinstance(node, XtraFilter):
                return XtraFilter(strip_sorts(node.child), node.predicate)
            return node

        def fix(node: XtraOp) -> XtraOp:
            if isinstance(node, XtraGroupAgg):
                sensitive = any(
                    isinstance(s, sc.SAgg) and s.name in _ORDER_SENSITIVE_AGGS
                    for __, s in node.aggregates
                ) or any(
                    w.name in _ORDER_SENSITIVE_AGGS
                    for w in _window_nodes(node)
                )
                if not sensitive:
                    return XtraGroupAgg(
                        strip_sorts(node.child), node.group_keys, node.aggregates
                    )
            if isinstance(node, XtraSort) and isinstance(node.child, XtraSort):
                # outer sort fully determines order: drop the inner one
                ctx.record(self.name)
                return XtraSort(node.child.child, node.sort_items)
            return node

        return map_tree(op, fix)


def _window_nodes(op: XtraGroupAgg) -> list[sc.SWindow]:
    found: list[sc.SWindow] = []

    def walk(scalar: sc.Scalar) -> None:
        if isinstance(scalar, sc.SWindow):
            found.append(scalar)
        for child in scalar.children():
            walk(child)

    for __, scalar in op.group_keys + op.aggregates:
        walk(scalar)
    return found


class ColumnPruningRule(Rule):
    """Prune unused columns top-down (the paper's performance example)."""

    name = "column_pruning"
    purpose = "performance"

    def apply(self, op: XtraOp, ctx: XformContext) -> XtraOp:
        required = {c.name for c in op.columns}
        return self._prune(op, required, ctx)

    def _prune(self, op: XtraOp, required: set[str], ctx: XformContext) -> XtraOp:
        if isinstance(op, XtraGet):
            kept = [c for c in op.output if c.name in required]
            if len(kept) < len(op.output):
                ctx.record(self.name, len(op.output) - len(kept))
            ordcol = op.ordcol if any(c.name == op.ordcol for c in kept) else None
            # keys must stay a subset of the output columns (invariant
            # XI006), so pruned key columns leave the key list too
            kept_names = {c.name for c in kept}
            keys = [k for k in op.keys if k in kept_names]
            return XtraGet(op.table, kept, ordcol=ordcol, keys=keys)
        if isinstance(op, XtraConstTable):
            keep_idx = [
                i for i, c in enumerate(op.output) if c.name in required
            ]
            if len(keep_idx) < len(op.output):
                ctx.record(self.name, len(op.output) - len(keep_idx))
            return XtraConstTable(
                [op.output[i] for i in keep_idx],
                [[row[i] for i in keep_idx] for row in op.rows],
            )
        if isinstance(op, XtraProject):
            kept = [
                (name, scalar)
                for name, scalar in op.projections
                if name in required
            ]
            if len(kept) < len(op.projections):
                ctx.record(self.name, len(op.projections) - len(kept))
            child_required: set[str] = set()
            for __, scalar in kept:
                child_required |= scalar_columns(scalar)
            child = self._prune(op.child, child_required, ctx)
            return XtraProject(child, kept)
        if isinstance(op, XtraFilter):
            child_required = required | scalar_columns(op.predicate)
            return XtraFilter(
                self._prune(op.child, child_required, ctx), op.predicate
            )
        if isinstance(op, XtraJoin):
            needed = set(required)
            if op.condition is not None:
                needed |= scalar_columns(op.condition)
            left_needed = {
                name for name in needed if op.left.has_column(name)
            }
            right_needed = {
                name for name in needed if op.right.has_column(name)
            }
            return XtraJoin(
                op.kind,
                self._prune(op.left, left_needed, ctx),
                self._prune(op.right, right_needed, ctx),
                op.condition,
            )
        if isinstance(op, XtraGroupAgg):
            child_required = set()
            for __, scalar in op.group_keys + op.aggregates:
                child_required |= scalar_columns(scalar)
            return XtraGroupAgg(
                self._prune(op.child, child_required, ctx),
                op.group_keys,
                op.aggregates,
            )
        if isinstance(op, XtraWindow):
            kept_windows = [
                (name, scalar)
                for name, scalar in op.windows
                if name in required
            ]
            child_required = {
                name for name in required
                if not any(w == name for w, __ in op.windows)
            }
            for __, scalar in kept_windows:
                child_required |= scalar_columns(scalar)
            child = self._prune(op.child, child_required, ctx)
            return XtraWindow(child, kept_windows)
        if isinstance(op, XtraSort):
            child_required = set(required)
            for scalar, __ in op.sort_items:
                child_required |= scalar_columns(scalar)
            return XtraSort(
                self._prune(op.child, child_required, ctx), op.sort_items
            )
        if isinstance(op, XtraLimit):
            return XtraLimit(
                self._prune(op.child, required, ctx), op.count, op.offset
            )
        if isinstance(op, XtraUnionAll):
            # positional semantics: pruning through a union would desynchronize
            # the branches; require everything below
            left = self._prune(op.left, {c.name for c in op.left.columns}, ctx)
            right = self._prune(
                op.right, {c.name for c in op.right.columns}, ctx
            )
            return XtraUnionAll(left, right)
        if isinstance(op, XtraDistinct):
            return XtraDistinct(self._prune(op.child, required, ctx))
        return op


class OrderInjectionRule(Rule):
    """Guarantee a deterministic final order (Q's ordered-list contract)."""

    name = "order_injection"
    purpose = "transparency"

    def apply(self, op: XtraOp, ctx: XformContext) -> XtraOp:
        if isinstance(op, (XtraSort, XtraLimit)):
            return op
        order = op.order_column
        if order is not None and op.has_column(order):
            ctx.record(self.name)
            col = op.column(order)
            return XtraSort(op, [(sc.SColRef(col.name, col.sql_type), False)])
        if isinstance(op, XtraGroupAgg) and op.is_scalar_agg:
            return op  # single row; no ordering needed
        # no implicit order column: inject a row_number window
        ctx.record(self.name)
        row_number = sc.SWindow("row_number", [], type_=SqlType.BIGINT)
        windowed = XtraWindow(op, [(ORDCOL, row_number)])
        return XtraSort(
            windowed, [(sc.SColRef(ORDCOL, SqlType.BIGINT, False), False)]
        )
