"""The distributed-rewrite pass: topology-aware plan splitting.

Runs after the serialize pass, only when the session's
:class:`~repro.core.metadata.MetadataInterface` carries a
:class:`~repro.core.metadata.PartitionMap` (i.e. the backend is a
``ShardedBackend``).  The pass never touches the bound XTRA tree — it
*reads* it, decides how the statement distributes, and prefixes the
serialized SQL with a machine-readable plan annotation::

    /*hq-shard:v1 {"mode": "partial", ...}*/SELECT ...

Plain single-node backends execute the annotated statement unchanged (the
plan is a SQL comment); ``ShardedBackend`` strips the annotation and
executes the distributed plan.  Because the plan rides inside the SQL
text, cached translations replay distributed plans for free, and the
translation-cache key's ``partition_fingerprint`` component guarantees a
plan never leaks across topologies.

Plan modes, in decreasing order of preference:

* ``single``  — the tree only touches replicated tables, or a partition-
  key predicate pins every row to one shard (point-lookup routing);
* ``scatter`` — the tree is shard-local end to end: every shard runs the
  full statement over its partition and the coordinator performs an
  ordered columnar merge;
* ``partial`` — ``[Sort](GroupAgg(local child))``: shards compute partial
  aggregates (``sum``/``count``/``min``/``max`` decompose directly,
  ``avg`` becomes exact-sum + count, float sums use the engine's
  ``sum_exact`` so the merged result is bit-identical to a single-node
  run), the coordinator merges;
* ``gather``  — distinct-sensitive or otherwise non-decomposable trees:
  maximal shard-local subtrees are cut out and gathered, the coordinator
  executes the remainder of the tree over the gathered rows.

Statements the planner cannot handle are left unannotated; the backend
falls back to a full mirror execution (slow, always correct).

Layering (lint rule HQ007): partition-key routing logic lives here and in
``repro/core/sharded.py`` only — servers and serializers never inspect
partition keys.
"""

from __future__ import annotations

import json

from repro.core.algebrizer.binder import BoundScalar
from repro.core.metadata import PartitionMap
from repro.core.pipeline import Pass, TranslationPipeline, TranslationUnit
from repro.core.xtra import scalars as sc
from repro.core.xtra.ops import (
    XtraColumn,
    XtraConstTable,
    XtraDistinct,
    XtraFilter,
    XtraGet,
    XtraGroupAgg,
    XtraJoin,
    XtraLimit,
    XtraOp,
    XtraProject,
    XtraSort,
    XtraUnionAll,
    XtraWindow,
    walk,
)
from repro.obs import get_logger, metrics
from repro.sqlengine.types import SqlType

_log = get_logger("core.distributed")

SHARD_PLANS = metrics.counter(
    "shard_plans_total", "Distributed plans produced, labelled by mode"
)

#: plan annotation delimiters (a SQL comment, ignored by plain backends)
PLAN_PREFIX = "/*hq-shard:v1 "
PLAN_SUFFIX = "*/"

#: synthetic coordinator-side table names for gathered task results
GATHER_TABLE = "hq_gather_{index}"
PARTIAL_TABLE = "hq_partials"

# locality of an operator's output rows with respect to the topology
REPLICATED = "replicated"  # every shard computes the identical full result
LOCAL = "local"  # the global result is the disjoint union of shard results
NONE = "none"  # neither: requires coordination


class NotDecomposable(Exception):
    """An aggregate cannot be split into partial + merge."""


def annotate_sql(plan: dict, sql: str) -> str:
    """Prefix ``sql`` with the plan annotation comment."""
    text = json.dumps(plan, separators=(",", ":"))
    # "*/" inside JSON strings would close the comment early; "\/" is a
    # valid JSON escape for "/" and decodes to the same text
    text = text.replace("*/", "*\\/")
    return f"{PLAN_PREFIX}{text}{PLAN_SUFFIX}{sql}"


def extract_plan(sql: str) -> tuple[dict | None, str]:
    """Split an annotated statement into (plan, original SQL).

    Returns ``(None, sql)`` unchanged for unannotated statements.
    """
    if not sql.startswith(PLAN_PREFIX):
        return None, sql
    end = sql.index(PLAN_SUFFIX, len(PLAN_PREFIX))
    plan = json.loads(sql[len(PLAN_PREFIX):end])
    return plan, sql[end + len(PLAN_SUFFIX):]


# ---------------------------------------------------------------------------
# Locality analysis
# ---------------------------------------------------------------------------


class Locality:
    """Locality of one operator plus the output name of its partition
    column (when it survives projection — needed for co-partition joins
    and point-lookup routing)."""

    __slots__ = ("kind", "partition_column")

    def __init__(self, kind: str, partition_column: str | None = None):
        self.kind = kind
        self.partition_column = partition_column


def _condition_equates(condition, left_col: str, right_col: str) -> bool:
    """True when the join condition contains an equality between the two
    partition columns (directly or as an AND conjunct)."""
    if condition is None:
        return False
    conjuncts = [condition]
    if isinstance(condition, sc.SBool) and condition.op == "AND":
        conjuncts = list(condition.args)
    for part in conjuncts:
        if not (isinstance(part, sc.SCmp) and part.op == "="):
            continue
        if isinstance(part.left, sc.SColRef) and isinstance(part.right, sc.SColRef):
            names = {part.left.name, part.right.name}
            if names == {left_col, right_col}:
                return True
    return False


def _window_nodes(scalar):
    """All SWindow nodes nested anywhere inside one scalar expression."""
    stack = [scalar]
    while stack:
        node = stack.pop()
        if isinstance(node, sc.SWindow):
            yield node
        stack.extend(node.children())


def _windows_shard_local(windows, partition_column: str | None) -> bool:
    """A window function is shard-local only when it partitions by the
    table's partition column — then each shard's frame is complete."""
    if partition_column is None:
        return not any(True for __ in windows)
    for window in windows:
        if not any(
            isinstance(p, sc.SColRef) and p.name == partition_column
            for p in window.partition_by
        ):
            return False
    return True


def analyze_locality(op: XtraOp, pmap: PartitionMap) -> Locality:
    """Bottom-up locality derivation for one operator tree."""
    if isinstance(op, XtraGet):
        spec = pmap.lookup(op.table)
        if spec is None:
            return Locality(REPLICATED)
        partcol = spec.key if op.has_column(spec.key) else None
        return Locality(LOCAL, partcol)
    if isinstance(op, XtraConstTable):
        return Locality(REPLICATED)
    if isinstance(op, XtraFilter):
        return analyze_locality(op.child, pmap)
    if isinstance(op, XtraProject):
        child = analyze_locality(op.child, pmap)
        if child.kind != LOCAL:
            return child
        # window functions ride as scalars inside projections: they see
        # only their shard's frame, so unless partitioned by the table's
        # partition column the shard-local result is wrong
        nested = [
            w for __, scalar in op.projections
            for w in _window_nodes(scalar)
        ]
        if nested and not _windows_shard_local(nested, child.partition_column):
            return Locality(NONE)
        partcol = None
        if child.partition_column is not None:
            for name, scalar in op.projections:
                if (
                    isinstance(scalar, sc.SColRef)
                    and scalar.name == child.partition_column
                ):
                    partcol = name
                    break
        return Locality(LOCAL, partcol)
    if isinstance(op, XtraWindow):
        child = analyze_locality(op.child, pmap)
        if child.kind == REPLICATED:
            return child
        if child.kind == LOCAL and child.partition_column is not None:
            # a window partitioned by the partition key sees exactly the
            # rows its shard holds — shard-local computation is exact
            windows = [scalar for __, scalar in op.windows]
            if _windows_shard_local(windows, child.partition_column):
                return Locality(LOCAL, child.partition_column)
            return Locality(NONE)
        return Locality(NONE)
    if isinstance(op, XtraJoin):
        left = analyze_locality(op.left, pmap)
        right = analyze_locality(op.right, pmap)
        if left.kind == REPLICATED and right.kind == REPLICATED:
            return Locality(REPLICATED)
        if op.kind == "cross":
            if left.kind == LOCAL and right.kind == REPLICATED:
                return Locality(LOCAL, left.partition_column)
            if left.kind == REPLICATED and right.kind == LOCAL:
                return Locality(LOCAL, right.partition_column)
            return Locality(NONE)
        if left.kind == LOCAL and right.kind == REPLICATED:
            # every left row finds its full match set on its own shard;
            # holds for inner and for left outer (unmatched rows surface
            # exactly once, on the shard that owns them)
            return Locality(LOCAL, left.partition_column)
        if left.kind == REPLICATED and right.kind == LOCAL:
            if op.kind == "inner":
                return Locality(LOCAL, right.partition_column)
            return Locality(NONE)  # left outer over split right: not local
        if left.kind == LOCAL and right.kind == LOCAL:
            if (
                left.partition_column is not None
                and right.partition_column is not None
                and _condition_equates(
                    op.condition, left.partition_column, right.partition_column
                )
            ):
                # co-partitioned equi-join: matching keys are colocated
                return Locality(LOCAL, left.partition_column)
            return Locality(NONE)
        return Locality(NONE)
    if isinstance(op, XtraSort):
        return analyze_locality(op.child, pmap)
    if isinstance(op, XtraGroupAgg):
        child = analyze_locality(op.child, pmap)
        if child.kind == REPLICATED:
            return Locality(REPLICATED)
        return Locality(NONE)  # handled by partial/gather at the top level
    if isinstance(op, XtraLimit):
        child = analyze_locality(op.child, pmap)
        if child.kind == REPLICATED:
            return child
        return Locality(NONE)
    if isinstance(op, XtraUnionAll):
        left = analyze_locality(op.left, pmap)
        right = analyze_locality(op.right, pmap)
        if left.kind == REPLICATED and right.kind == REPLICATED:
            return Locality(REPLICATED)
        return Locality(NONE)
    if isinstance(op, XtraDistinct):
        child = analyze_locality(op.child, pmap)
        if child.kind == REPLICATED:
            return child
        return Locality(NONE)
    return Locality(NONE)


# ---------------------------------------------------------------------------
# Point-lookup routing: partition-key predicates -> shard target sets
# ---------------------------------------------------------------------------


def _constants_for(predicate, column: str) -> set | None:
    """Values ``column`` is constrained to by ``predicate``; None if the
    predicate does not pin the column to a finite constant set."""
    if isinstance(predicate, sc.SBool) and predicate.op == "AND":
        combined: set | None = None
        for arg in predicate.args:
            values = _constants_for(arg, column)
            if values is None:
                continue
            combined = values if combined is None else (combined & values)
        return combined
    if isinstance(predicate, sc.SCmp) and predicate.op == "=":
        left, right = predicate.left, predicate.right
        if isinstance(left, sc.SConst) and isinstance(right, sc.SColRef):
            left, right = right, left
        if (
            isinstance(left, sc.SColRef)
            and left.name == column
            and isinstance(right, sc.SConst)
        ):
            return {right.value}
    if (
        isinstance(predicate, sc.SIn)
        and not predicate.negated
        and isinstance(predicate.arg, sc.SColRef)
        and predicate.arg.name == column
        and all(isinstance(i, sc.SConst) for i in predicate.items)
    ):
        return {i.value for i in predicate.items}
    return None


def shard_targets(op: XtraOp, pmap: PartitionMap) -> list[int]:
    """Shards that can contribute rows, given partition-key predicates.

    Walks every filter whose input is shard-local with a live partition
    column; each constraining predicate narrows the target set.  With no
    constraining predicate, every shard is a target.

    Intersecting constraints from *every* filter in the tree is only
    sound when they are conjunctive — which holds exactly when ``op``
    itself is LOCAL (filters are then chained, or linked through a
    co-partitioned equi-join that equates the partition columns).  Trees
    with independent sibling subtrees (UNION ALL branches, non-co-
    partitioned join inputs) must derive targets per subtree instead:
    the gather planner calls this on each cut node, never the whole tree.
    """
    targets = set(range(pmap.shard_count))
    for node in walk(op):
        if not isinstance(node, XtraFilter):
            continue
        child = analyze_locality(node.child, pmap)
        if child.kind != LOCAL or child.partition_column is None:
            continue
        # the partition column name at this level maps back to a single
        # partitioned base table below: find its spec for hashing
        spec = None
        for below in walk(node.child):
            if isinstance(below, XtraGet) and pmap.is_partitioned(below.table):
                spec = pmap.lookup(below.table)
                break
        if spec is None:
            continue
        values = _constants_for(node.predicate, child.partition_column)
        if values is None:
            continue
        targets &= {spec.shard_for(v, pmap.shard_count) for v in values}
    return sorted(targets) if targets else []


# ---------------------------------------------------------------------------
# Partial-aggregate decomposition
# ---------------------------------------------------------------------------

_FLOATISH = (SqlType.DOUBLE, SqlType.REAL, SqlType.NUMERIC)


class _Decomposer:
    """Rewrites aggregate scalars into per-shard partials + a merge
    expression over the partial columns."""

    def __init__(self):
        self.partials: list[tuple[str, sc.Scalar]] = []

    def _add_partial(self, scalar: sc.SAgg) -> str:
        name = f"hq_p{len(self.partials)}"
        self.partials.append((name, scalar))
        return name

    def rewrite(self, scalar: sc.Scalar) -> sc.Scalar:
        if isinstance(scalar, sc.SAgg):
            return self._rewrite_agg(scalar)
        if isinstance(scalar, sc.SWindow):
            raise NotDecomposable("window inside aggregate expression")
        return self._rebuild(scalar)

    def _rebuild(self, scalar: sc.Scalar) -> sc.Scalar:
        """Recurse through compound scalars (e.g. wavg's sum/sum)."""
        if isinstance(scalar, (sc.SConst, sc.SColRef)):
            return scalar
        if isinstance(scalar, sc.SArith):
            return sc.SArith(
                scalar.op,
                self.rewrite(scalar.left),
                self.rewrite(scalar.right),
                scalar.type_,
            )
        if isinstance(scalar, sc.SCmp):
            return sc.SCmp(
                scalar.op,
                self.rewrite(scalar.left),
                self.rewrite(scalar.right),
                scalar.null_safe,
            )
        if isinstance(scalar, sc.SCast):
            return sc.SCast(self.rewrite(scalar.arg), scalar.type_)
        if isinstance(scalar, sc.SFunc):
            return sc.SFunc(
                scalar.name, [self.rewrite(a) for a in scalar.args], scalar.type_
            )
        if isinstance(scalar, sc.SCase):
            return sc.SCase(
                [
                    (self.rewrite(c), self.rewrite(r))
                    for c, r in scalar.branches
                ],
                self.rewrite(scalar.default) if scalar.default else None,
                scalar.type_,
            )
        raise NotDecomposable(
            f"aggregate expression contains {type(scalar).__name__}"
        )

    def _rewrite_agg(self, agg: sc.SAgg) -> sc.Scalar:
        if agg.distinct:
            raise NotDecomposable(f"{agg.name}(DISTINCT ...) is order-global")
        if agg.name == "count":
            partial = self._add_partial(
                sc.SAgg("count", agg.arg, SqlType.BIGINT)
            )
            return sc.SAgg(
                "sum", sc.SColRef(partial, SqlType.BIGINT), SqlType.BIGINT
            )
        if agg.name == "sum":
            arg_type = agg.arg.sql_type if agg.arg is not None else SqlType.BIGINT
            if agg.type_ in _FLOATISH or arg_type in _FLOATISH:
                # float sums: exact partials merged exactly, rounded once
                # (bit-identical to a single-node fsum at any shard count)
                partial = self._add_partial(
                    sc.SAgg("sum_exact", agg.arg, SqlType.NUMERIC)
                )
                return sc.SCast(
                    sc.SAgg(
                        "sum_exact",
                        sc.SColRef(partial, SqlType.NUMERIC),
                        SqlType.NUMERIC,
                    ),
                    agg.type_ if agg.type_ in _FLOATISH else SqlType.DOUBLE,
                )
            partial = self._add_partial(sc.SAgg("sum", agg.arg, agg.type_))
            return sc.SAgg("sum", sc.SColRef(partial, agg.type_), agg.type_)
        if agg.name in ("min", "max"):
            partial = self._add_partial(
                sc.SAgg(agg.name, agg.arg, agg.type_)
            )
            return sc.SAgg(
                agg.name, sc.SColRef(partial, agg.type_), agg.type_
            )
        if agg.name == "avg":
            sum_partial = self._add_partial(
                sc.SAgg("sum_exact", agg.arg, SqlType.NUMERIC)
            )
            count_partial = self._add_partial(
                sc.SAgg("count", agg.arg, SqlType.BIGINT)
            )
            merged_count = sc.SAgg(
                "sum", sc.SColRef(count_partial, SqlType.BIGINT), SqlType.BIGINT
            )
            merged_sum = sc.SCast(
                sc.SAgg(
                    "sum_exact",
                    sc.SColRef(sum_partial, SqlType.NUMERIC),
                    SqlType.NUMERIC,
                ),
                SqlType.DOUBLE,
            )
            return sc.SCase(
                [
                    (
                        sc.SCmp("=", merged_count, sc.SConst(0, SqlType.BIGINT)),
                        sc.SConst(None, SqlType.DOUBLE),
                    )
                ],
                sc.SArith(
                    "/",
                    merged_sum,
                    sc.SCast(merged_count, SqlType.DOUBLE),
                    SqlType.DOUBLE,
                ),
                SqlType.DOUBLE,
            )
        raise NotDecomposable(f"aggregate {agg.name!r} has no partial form")


def decompose_group_agg(agg: XtraGroupAgg):
    """Split a GroupAgg into (partial_tree_aggs, merged_aggs).

    Raises :class:`NotDecomposable` when any aggregate lacks a partial
    form (stddev/median/first/... or DISTINCT aggregates).
    """
    decomposer = _Decomposer()
    merged: list[tuple[str, sc.Scalar]] = []
    for name, scalar in agg.aggregates:
        merged.append((name, decomposer.rewrite(scalar)))
    return decomposer.partials, merged


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------


def _column_spec(op: XtraOp) -> list[list]:
    """JSON-able column list for a subplan's result schema."""
    return [
        [c.name, c.sql_type.value, bool(c.implicit)] for c in op.columns
    ]


def _merge_keys(op: XtraOp) -> list | None:
    """Sort keys for the coordinator's ordered merge of a scatter plan.

    Requires the per-shard output order to be fully described: a top-level
    sort over plain column references, or a surviving implicit order
    column.  The order column is always appended as the unique tiebreak so
    duplicate sort keys merge deterministically (matching the single-node
    stable sort over ordcol-ordered input).
    """
    keys: list[list] = []
    if isinstance(op, XtraSort):
        for scalar, descending in op.sort_items:
            if not isinstance(scalar, sc.SColRef):
                return None
            keys.append([scalar.name, bool(descending)])
    order = op.order_column
    if order is not None and op.has_column(order):
        if not any(name == order for name, __ in keys):
            keys.append([order, False])
    if not keys:
        return None
    return keys


def _group_key_columns(agg: XtraGroupAgg) -> list[tuple[str, SqlType]]:
    return [(name, scalar.sql_type) for name, scalar in agg.group_keys]


def _synthetic_get(table: str, columns: list[tuple[str, SqlType]]) -> XtraGet:
    return XtraGet(
        table,
        [XtraColumn(name, type_) for name, type_ in columns],
        ordcol=None,
        keys=[],
    )


def plan_distribution(
    op: XtraOp, pmap: PartitionMap, serializer
) -> dict | None:
    """Produce the distributed plan for one serialized statement, or None
    when the statement must fall back to mirror execution."""
    locality = analyze_locality(op, pmap)

    if locality.kind == REPLICATED:
        # every shard holds the full inputs; any one shard answers
        return {"mode": "single", "shard": 0}

    if locality.kind == LOCAL:
        # inside one LOCAL tree every constraining filter is conjunctive
        # (chained, or equated across a co-partitioned join), so the
        # whole-tree intersection is sound — only here
        targets = shard_targets(op, pmap)
        if not targets:
            # contradictory partition-key predicates: no shard qualifies,
            # but the statement must still produce its (empty) shape —
            # run it on one shard, which also yields zero matching rows
            targets = [0]
        if len(targets) == 1:
            # point lookup: the partition-key predicate pins one shard
            return {"mode": "single", "shard": targets[0]}
        merge_keys = _merge_keys(op)
        if merge_keys is None:
            return _plan_gather(op, pmap, serializer)
        return {
            "mode": "scatter",
            "targets": targets,
            "sql": serializer.serialize(op),
            "columns": _column_spec(op),
            "merge_keys": merge_keys,
        }

    # a grouped/scalar aggregate over a shard-local input: try partials
    sort: XtraSort | None = None
    agg: XtraGroupAgg | None = None
    if isinstance(op, XtraSort) and isinstance(op.child, XtraGroupAgg):
        sort, agg = op, op.child
    elif isinstance(op, XtraGroupAgg):
        agg = op
    if agg is not None and analyze_locality(agg.child, pmap).kind == LOCAL:
        try:
            return _plan_partial(op, sort, agg, pmap, serializer)
        except NotDecomposable as reason:
            _log.info("shard_partial_fallback", reason=str(reason))
    return _plan_gather(op, pmap, serializer)


def _plan_partial(
    op: XtraOp,
    sort: XtraSort | None,
    agg: XtraGroupAgg,
    pmap: PartitionMap,
    serializer,
) -> dict:
    partials, merged = decompose_group_agg(agg)
    partial_tree = XtraGroupAgg(agg.child, agg.group_keys, partials)
    # the aggregate's input is LOCAL, so its filters are conjunctive and
    # the intersection over that subtree is sound
    targets = shard_targets(agg.child, pmap) or [0]
    key_columns = _group_key_columns(agg)
    partial_columns = key_columns + [
        (name, scalar.sql_type) for name, scalar in partials
    ]
    get = _synthetic_get(PARTIAL_TABLE, partial_columns)
    merge_tree: XtraOp = XtraGroupAgg(
        get,
        [(name, sc.SColRef(name, type_)) for name, type_ in key_columns],
        merged,
    )
    if sort is not None:
        merge_tree = XtraSort(merge_tree, sort.sort_items)
    return {
        "mode": "partial",
        "targets": targets,
        "tasks": [
            {
                "table": PARTIAL_TABLE,
                "sql": serializer.serialize(partial_tree),
                "columns": _column_spec(partial_tree),
                "order_col": None,
                "targets": targets,
            }
        ],
        "merge_sql": serializer.serialize(merge_tree),
        "columns": _column_spec(op),
    }


def _references_tables(op: XtraOp) -> bool:
    return any(isinstance(node, XtraGet) for node in walk(op))


def _rebuild_with_children(op: XtraOp, children: list[XtraOp]) -> XtraOp:
    if isinstance(op, XtraProject):
        return XtraProject(children[0], op.projections)
    if isinstance(op, XtraFilter):
        return XtraFilter(children[0], op.predicate)
    if isinstance(op, XtraJoin):
        return XtraJoin(op.kind, children[0], children[1], op.condition)
    if isinstance(op, XtraGroupAgg):
        return XtraGroupAgg(children[0], op.group_keys, op.aggregates)
    if isinstance(op, XtraWindow):
        return XtraWindow(children[0], op.windows)
    if isinstance(op, XtraSort):
        return XtraSort(children[0], op.sort_items)
    if isinstance(op, XtraLimit):
        return XtraLimit(children[0], op.count, op.offset)
    if isinstance(op, XtraUnionAll):
        return XtraUnionAll(children[0], children[1])
    if isinstance(op, XtraDistinct):
        return XtraDistinct(children[0])
    raise NotDecomposable(f"cannot rebuild {type(op).__name__}")


def _plan_gather(
    op: XtraOp,
    pmap: PartitionMap,
    serializer,
) -> dict | None:
    """Cut maximal shard-computable subtrees into gather tasks; the
    coordinator executes the rest of the tree over the gathered rows.

    Each task's target set derives from the filters inside *its own*
    subtree only.  Sibling subtrees carry independent constraints — UNION
    ALL branches pin different shards, a non-co-partitioned join pairs a
    filtered side with an unfiltered one — so a whole-tree intersection
    would silently drop rows held on the excluded shards.
    """
    tasks: list[dict] = []

    def cut(node: XtraOp) -> XtraOp:
        locality = analyze_locality(node, pmap)
        if locality.kind in (LOCAL, REPLICATED) and _references_tables(node):
            index = len(tasks)
            table = GATHER_TABLE.format(index=index)
            order = node.order_column
            if order is not None and not node.has_column(order):
                order = None
            if locality.kind == LOCAL:
                # this subtree is LOCAL, so its own filters intersect
                # soundly; empty means contradictory predicates — one
                # shard still supplies the (empty) shape
                node_targets = shard_targets(node, pmap) or [0]
            else:
                # a replicated subtree is identical everywhere: gather
                # it from one shard only
                node_targets = [0]
            tasks.append(
                {
                    "table": table,
                    "sql": serializer.serialize(node),
                    "columns": _column_spec(node),
                    "order_col": order,
                    "targets": node_targets,
                }
            )
            columns = [(c.name, c.sql_type) for c in node.columns]
            get = _synthetic_get(table, columns)
            get.ordcol = order
            return get
        children = node.children()
        if not children:
            return node
        return _rebuild_with_children(node, [cut(c) for c in children])

    try:
        merge_tree = cut(op)
    except NotDecomposable as reason:
        _log.info("shard_gather_fallback", reason=str(reason))
        return None
    if not tasks:
        return None
    return {
        "mode": "gather",
        # union of per-task targets — informational (span fanout attrs);
        # execution uses each task's own target set
        "targets": sorted({t for task in tasks for t in task["targets"]}),
        "tasks": tasks,
        "merge_sql": serializer.serialize(merge_tree),
        "columns": _column_spec(op),
    }


# ---------------------------------------------------------------------------
# The pipeline pass
# ---------------------------------------------------------------------------


class DistributePass(Pass):
    """Annotate serialized SQL with a distributed execution plan.

    A no-op unless the MDI exposes a partition map.  Never modifies the
    bound tree (the XTRA invariant checker re-verifies the unchanged tree
    after this pass).  Planner failures are logged and leave the SQL
    unannotated — the sharded backend's mirror fallback stays correct.
    """

    name = "distribute"
    stage = "optimize"

    def run(self, unit: TranslationUnit, pipeline: TranslationPipeline) -> None:
        pmap = pipeline.mdi.partition_map
        if pmap is None or unit.sql is None:
            return
        bound = unit.bound
        if bound is None:
            return
        if isinstance(bound, BoundScalar):
            # scalar statements reference no relations: any shard answers
            unit.sql = annotate_sql({"mode": "single", "shard": 0}, unit.sql)
            return
        try:
            plan = plan_distribution(bound.op, pmap, pipeline.serializer)
        except Exception as exc:  # planner bug: fall back, never fail the query
            _log.warning("shard_plan_failed", error=str(exc))
            SHARD_PLANS.inc(mode="error")
            return
        if plan is None:
            SHARD_PLANS.inc(mode="mirror")
            return
        SHARD_PLANS.inc(mode=plan["mode"])
        unit.sql = annotate_sql(plan, unit.sql)
