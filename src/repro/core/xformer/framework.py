"""Xformer: the transformation framework (paper Section 3.3).

Transformations serve three purposes — correctness, performance, and
transparency.  Each rule is a self-contained tree rewrite; the Xformer
applies the configured rules in a fixed order and records how often each
fired (consumed by the ablation benchmarks and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import XformerConfig
from repro.core.xtra.ops import XtraOp


@dataclass
class XformContext:
    """Mutable state shared by rules during one transformation pass."""

    config: XformerConfig
    #: rule name -> number of nodes it rewrote
    applications: dict[str, int] = field(default_factory=dict)

    def record(self, rule_name: str, count: int = 1) -> None:
        self.applications[rule_name] = self.applications.get(rule_name, 0) + count


class Rule:
    """A single transformation; subclasses override :meth:`apply`."""

    #: stable identifier, also the toggle name in :class:`XformerConfig`
    name = "rule"
    #: which of the paper's three purposes this rule serves
    purpose = "correctness"

    def enabled(self, config: XformerConfig) -> bool:
        return getattr(config, self.name, True)

    def apply(self, op: XtraOp, ctx: XformContext) -> XtraOp:
        raise NotImplementedError


class Xformer:
    """Applies the rule pipeline to a bound XTRA tree."""

    def __init__(self, config: XformerConfig | None = None,
                 rules: list[Rule] | None = None):
        from repro.core.xformer.rules import default_rules

        self.config = config or XformerConfig()
        self.rules = rules if rules is not None else default_rules()

    def fingerprint(self) -> tuple:
        """Hashable digest of the rule order + toggles; part of the
        translation-cache key (a config flip must miss the cache)."""
        return (
            tuple(rule.name for rule in self.rules),
            self.config.fingerprint(),
        )

    def transform(
        self, op: XtraOp, shape: str = "table"
    ) -> tuple[XtraOp, XformContext]:
        """Run all enabled rules; returns the rewritten tree and stats."""
        ctx = XformContext(self.config)
        for rule in self.rules:
            if rule.enabled(self.config):
                op = rule.apply(op, ctx)
        return op, ctx
