"""A small finite-state-machine framework (the Erlang stand-in).

The paper's Cross Compiler designs both translator processes as FSMs that
"maintain translator internal state while providing a mechanism for code
re-entrance", with events kicking off backend processing and callbacks
firing when events occur (Section 3.4).  This module gives the
reproduction the same shape: declared states, event-driven transitions,
entry callbacks, and a synchronous event queue so callbacks may fire
further events without recursion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError


class FsmError(ReproError):
    """Invalid FSM construction or an event with no matching transition."""


@dataclass
class Transition:
    source: str
    event: str
    target: str
    action: Callable[["Fsm", object], None] | None = None


@dataclass
class _QueuedEvent:
    name: str
    payload: object


class Fsm:
    """A declarative finite state machine with an internal event queue."""

    def __init__(self, name: str, initial: str):
        self.name = name
        self.state = initial
        self.states: set[str] = {initial}
        self._transitions: dict[tuple[str, str], Transition] = {}
        self._entry_callbacks: dict[str, Callable[["Fsm", object], None]] = {}
        self._queue: deque[_QueuedEvent] = deque()
        self._running = False
        self.history: list[tuple[str, str, str]] = []  # (from, event, to)

    # -- construction -----------------------------------------------------------

    def add_state(
        self,
        name: str,
        on_enter: Callable[["Fsm", object], None] | None = None,
    ) -> "Fsm":
        self.states.add(name)
        if on_enter is not None:
            self._entry_callbacks[name] = on_enter
        return self

    def add_transition(
        self,
        source: str,
        event: str,
        target: str,
        action: Callable[["Fsm", object], None] | None = None,
    ) -> "Fsm":
        if source not in self.states or target not in self.states:
            raise FsmError(
                f"transition {source}--{event}-->{target} references an "
                f"undeclared state"
            )
        self._transitions[(source, event)] = Transition(
            source, event, target, action
        )
        return self

    # -- runtime -----------------------------------------------------------------

    def fire(self, event: str, payload: object = None) -> None:
        """Enqueue an event; process the queue unless already draining.

        Events fired from inside callbacks are appended to the queue and
        handled iteratively — the re-entrance mechanism the paper
        describes.
        """
        self._queue.append(_QueuedEvent(event, payload))
        if self._running:
            return
        self._running = True
        try:
            while self._queue:
                queued = self._queue.popleft()
                self._step(queued.name, queued.payload)
        finally:
            self._running = False

    def _step(self, event: str, payload: object) -> None:
        transition = self._transitions.get((self.state, event))
        if transition is None:
            raise FsmError(
                f"FSM {self.name!r} in state {self.state!r} has no "
                f"transition for event {event!r}"
            )
        self.history.append((self.state, event, transition.target))
        if transition.action is not None:
            transition.action(self, payload)
        self.state = transition.target
        callback = self._entry_callbacks.get(transition.target)
        if callback is not None:
            callback(self, payload)

    def can_fire(self, event: str) -> bool:
        return (self.state, event) in self._transitions
