"""Serializer: XTRA -> PostgreSQL SQL text.

The final stage of query translation (and, with optimization, the bulk of
translation time in the paper's Figure 7).  Every identifier is
double-quoted because Q identifiers are case-sensitive while PostgreSQL
folds unquoted names to lower case.
"""

from __future__ import annotations

import itertools
import threading

from repro.core.xtra import scalars as sc
from repro.core.xtra.ops import (
    XtraConstTable,
    XtraDistinct,
    XtraFilter,
    XtraGet,
    XtraGroupAgg,
    XtraJoin,
    XtraLimit,
    XtraOp,
    XtraProject,
    XtraSort,
    XtraUnionAll,
    XtraWindow,
)
from repro.errors import TranslationError
from repro.qlang.lexer import date_from_days
from repro.sqlengine.types import SqlType


def quote_ident(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def quote_string(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


class Serializer:
    """Stateless XTRA-to-SQL serializer (alias counter per serialize call).

    The alias counter is thread-local so one serializer instance — there
    is one per pipeline, shared with the materializer — can serialize
    concurrently from pooled-backend sessions without interleaving alias
    sequences.
    """

    def __init__(self) -> None:
        self._tls = threading.local()

    def serialize(self, op: XtraOp) -> str:
        self._tls.alias = itertools.count(1)
        return self._rel(op)

    def serialize_scalar_statement(self, scalar: sc.Scalar) -> str:
        self._tls.alias = itertools.count(1)
        return f"SELECT {self._scalar(scalar)} AS {quote_ident('value')}"

    # -- relational -----------------------------------------------------------

    def _next_alias(self) -> str:
        return f"hq_t{next(self._tls.alias)}"

    def _rel(self, op: XtraOp) -> str:
        method = getattr(self, f"_rel_{type(op).__name__.lower()}", None)
        if method is None:
            raise TranslationError(
                f"serializer has no rendering for {type(op).__name__}"
            )
        return method(op)

    def _subquery(self, op: XtraOp) -> str:
        return f"({self._rel(op)}) AS {self._next_alias()}"

    def _rel_xtraget(self, op: XtraGet) -> str:
        cols = ", ".join(quote_ident(c.name) for c in op.output)
        if not cols:
            cols = "1"
        return f"SELECT {cols} FROM {quote_ident(op.table)}"

    def _rel_xtraconsttable(self, op: XtraConstTable) -> str:
        if not op.rows:
            items = ", ".join(
                f"{self._literal(None, c.sql_type)} AS {quote_ident(c.name)}"
                for c in op.output
            )
            return f"SELECT {items} LIMIT 0"
        selects = []
        for i, row in enumerate(op.rows):
            items = []
            for col, value in zip(op.output, row):
                rendered = self._literal(value, col.sql_type)
                if i == 0:
                    rendered += f" AS {quote_ident(col.name)}"
                items.append(rendered)
            selects.append("SELECT " + ", ".join(items))
        return " UNION ALL ".join(selects)

    def _rel_xtraproject(self, op: XtraProject) -> str:
        items = ", ".join(
            f"{self._scalar(scalar)} AS {quote_ident(name)}"
            for name, scalar in op.projections
        )
        if not items:
            items = "1"
        return f"SELECT {items} FROM {self._subquery(op.child)}"

    def _rel_xtrafilter(self, op: XtraFilter) -> str:
        return (
            f"SELECT * FROM {self._subquery(op.child)} "
            f"WHERE {self._scalar(op.predicate)}"
        )

    def _rel_xtrajoin(self, op: XtraJoin) -> str:
        kind = {"inner": "INNER JOIN", "left": "LEFT OUTER JOIN",
                "cross": "CROSS JOIN"}.get(op.kind)
        if kind is None:
            raise TranslationError(f"join kind {op.kind!r} cannot be serialized")
        sql = (
            f"SELECT * FROM {self._subquery(op.left)} {kind} "
            f"{self._subquery(op.right)}"
        )
        if op.condition is not None:
            sql += f" ON {self._scalar(op.condition)}"
        elif op.kind != "cross":
            sql += " ON TRUE"
        return sql

    def _rel_xtragroupagg(self, op: XtraGroupAgg) -> str:
        items = [
            f"{self._scalar(scalar)} AS {quote_ident(name)}"
            for name, scalar in op.group_keys
        ]
        items += [
            f"{self._scalar(scalar)} AS {quote_ident(name)}"
            for name, scalar in op.aggregates
        ]
        sql = f"SELECT {', '.join(items)} FROM {self._subquery(op.child)}"
        if op.group_keys:
            keys = ", ".join(self._scalar(s) for __, s in op.group_keys)
            sql += f" GROUP BY {keys}"
        return sql

    def _rel_xtrawindow(self, op: XtraWindow) -> str:
        extras = ", ".join(
            f"{self._scalar(scalar)} AS {quote_ident(name)}"
            for name, scalar in op.windows
        )
        return f"SELECT *, {extras} FROM {self._subquery(op.child)}"

    def _rel_xtrasort(self, op: XtraSort) -> str:
        # Q's null ordering: nulls are the smallest values, so ascending
        # sorts put them first (PG's default is NULLS LAST for ASC)
        keys = ", ".join(
            self._scalar(scalar)
            + (" DESC NULLS LAST" if descending else " NULLS FIRST")
            for scalar, descending in op.sort_items
        )
        return f"SELECT * FROM {self._subquery(op.child)} ORDER BY {keys}"

    def _rel_xtralimit(self, op: XtraLimit) -> str:
        sql = f"SELECT * FROM {self._subquery(op.child)} LIMIT {op.count}"
        if op.offset:
            sql += f" OFFSET {op.offset}"
        return sql

    def _rel_xtraunionall(self, op: XtraUnionAll) -> str:
        return (
            f"SELECT * FROM ({self._rel(op.left)} UNION ALL "
            f"{self._rel(op.right)}) AS {self._next_alias()}"
        )

    def _rel_xtradistinct(self, op: XtraDistinct) -> str:
        return f"SELECT DISTINCT * FROM {self._subquery(op.child)}"

    # -- scalars -----------------------------------------------------------------

    def _scalar(self, scalar: sc.Scalar) -> str:
        if isinstance(scalar, sc.SConst):
            return self._literal(scalar.value, scalar.type_)
        if isinstance(scalar, sc.SColRef):
            return quote_ident(scalar.name)
        if isinstance(scalar, sc.SArith):
            left = self._scalar(scalar.left)
            right = self._scalar(scalar.right)
            if scalar.op == "%":
                # Q's % is always float division
                return f"(CAST({left} AS double precision) / {right})"
            return f"({left} {scalar.op} {right})"
        if isinstance(scalar, sc.SCmp):
            left = self._scalar(scalar.left)
            right = self._scalar(scalar.right)
            if scalar.null_safe and scalar.op == "=":
                return f"({left} IS NOT DISTINCT FROM {right})"
            if scalar.null_safe and scalar.op == "<>":
                return f"({left} IS DISTINCT FROM {right})"
            return f"({left} {scalar.op} {right})"
        if isinstance(scalar, sc.SBool):
            if scalar.op == "NOT":
                return f"(NOT {self._scalar(scalar.args[0])})"
            joined = f" {scalar.op} ".join(self._scalar(a) for a in scalar.args)
            return f"({joined})"
        if isinstance(scalar, sc.SFunc):
            args = ", ".join(self._scalar(a) for a in scalar.args)
            return f"{scalar.name}({args})"
        if isinstance(scalar, sc.SAgg):
            if scalar.arg is None:
                return "count(*)"
            inner = self._scalar(scalar.arg)
            distinct = "DISTINCT " if scalar.distinct else ""
            return f"{scalar.name}({distinct}{inner})"
        if isinstance(scalar, sc.SWindow):
            return self._window(scalar)
        if isinstance(scalar, sc.SCast):
            return f"({self._scalar(scalar.arg)})::{scalar.type_.value}"
        if isinstance(scalar, sc.SCase):
            parts = ["CASE"]
            for condition, result in scalar.branches:
                parts.append(
                    f"WHEN {self._scalar(condition)} THEN {self._scalar(result)}"
                )
            if scalar.default is not None:
                parts.append(f"ELSE {self._scalar(scalar.default)}")
            parts.append("END")
            return "(" + " ".join(parts) + ")"
        if isinstance(scalar, sc.SIsNull):
            suffix = "IS NOT NULL" if scalar.negated else "IS NULL"
            return f"({self._scalar(scalar.arg)} {suffix})"
        if isinstance(scalar, sc.SIn):
            items = ", ".join(self._scalar(i) for i in scalar.items)
            negated = "NOT " if scalar.negated else ""
            return f"({self._scalar(scalar.arg)} {negated}IN ({items}))"
        if isinstance(scalar, sc.SBetween):
            return (
                f"({self._scalar(scalar.arg)} BETWEEN "
                f"{self._scalar(scalar.low)} AND {self._scalar(scalar.high)})"
            )
        if isinstance(scalar, sc.SLike):
            return f"({self._scalar(scalar.arg)} LIKE {quote_string(scalar.pattern)})"
        raise TranslationError(
            f"serializer has no rendering for scalar {type(scalar).__name__}"
        )

    def _window(self, scalar: sc.SWindow) -> str:
        args = ", ".join(self._scalar(a) for a in scalar.args)
        over = []
        if scalar.partition_by:
            keys = ", ".join(self._scalar(p) for p in scalar.partition_by)
            over.append(f"PARTITION BY {keys}")
        if scalar.order_by:
            keys = ", ".join(
                self._scalar(e) + (" DESC" if d else "")
                for e, d in scalar.order_by
            )
            over.append(f"ORDER BY {keys}")
        if scalar.frame:
            over.append(scalar.frame.upper())
        return f"{scalar.name}({args}) OVER ({' '.join(over)})"

    # -- literals -----------------------------------------------------------------

    def _literal(self, value, sql_type: SqlType) -> str:
        if value is None:
            return f"NULL::{sql_type.value}"
        if sql_type == SqlType.BOOLEAN:
            return "TRUE" if value else "FALSE"
        if sql_type in (SqlType.VARCHAR, SqlType.TEXT, SqlType.CHAR):
            return f"{quote_string(str(value))}::{sql_type.value}"
        if sql_type == SqlType.DATE:
            y, m, d = date_from_days(int(value))
            return f"'{y:04d}-{m:02d}-{d:02d}'::date"
        if sql_type == SqlType.TIME:
            ms = int(value) % 1000
            s = int(value) // 1000
            return (
                f"'{s // 3600:02d}:{s % 3600 // 60:02d}:{s % 60:02d}."
                f"{ms:03d}'::time"
            )
        if sql_type == SqlType.TIMESTAMP:
            days, nanos = divmod(int(value), 86_400_000_000_000)
            y, m, d = date_from_days(days)
            s, frac = divmod(nanos, 1_000_000_000)
            return (
                f"'{y:04d}-{m:02d}-{d:02d} {s // 3600:02d}:"
                f"{s % 3600 // 60:02d}:{s % 60:02d}.{frac // 1000:06d}'"
                f"::timestamp"
            )
        if sql_type == SqlType.INTERVAL:
            return f"'{int(value)}'::interval"
        if isinstance(value, float):
            if value != value:
                return "NULL::double precision"
            if value in (float("inf"), float("-inf")):
                return f"'{'-' if value < 0 else ''}Infinity'::double precision"
            return repr(value)
        return str(value)
