"""Metadata interface (MDI) with configurable caching.

The binder resolves Q variable references "by looking up associated
metadata in the metadata store ... executing a query against PG catalog"
(paper Section 3.2.3).  The paper's evaluation runs with metadata caching
enabled and notes the cache has "configurable invalidation policies and
cache expiration time" (Section 6) — both are implemented here and
exercised by the metadata-cache ablation benchmark.
"""

from __future__ import annotations

import bisect
import time
import zlib
from dataclasses import dataclass, field

from repro.analysis.concurrency.locks import make_lock
from repro.config import CacheInvalidation, MetadataCacheConfig
from repro.errors import MetadataError
from repro.obs import metrics
from repro.sqlengine.types import SqlType, type_from_name

#: process-wide MDI cache telemetry (the per-instance ``CacheStats``
#: remain for programmatic access; these feed the metrics export)
CACHE_LOOKUPS = metrics.counter(
    "mdi_cache_lookups_total", "Metadata cache lookups"
)
CACHE_HITS = metrics.counter("mdi_cache_hits_total", "Metadata cache hits")
CACHE_MISSES = metrics.counter(
    "mdi_cache_misses_total", "Metadata cache misses (backend catalog round trip)"
)
CACHE_INVALIDATIONS = metrics.counter(
    "mdi_cache_invalidations_total", "Metadata cache invalidations"
)


@dataclass
class ColumnMeta:
    name: str
    sql_type: SqlType
    type_text: str = ""


@dataclass
class TableMeta:
    """Catalog description of a backend relation as seen by the binder."""

    name: str
    columns: list[ColumnMeta]
    #: key columns, when the relation backs a Q keyed table
    keys: list[str] = field(default_factory=list)
    #: name of the implicit order column, if the relation carries one
    ordcol: str | None = None
    schema: str = "public"

    def column(self, name: str) -> ColumnMeta:
        for col in self.columns:
            if col.name == name:
                return col
        raise MetadataError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    @property
    def data_columns(self) -> list[ColumnMeta]:
        return [c for c in self.columns if c.name != self.ordcol]


@dataclass(frozen=True)
class TablePartitioning:
    """How one table is spread across shards.

    ``strategy`` is ``"hash"`` (stable CRC32 of the key value's text) or
    ``"range"`` (``bounds`` are the ascending upper-exclusive split
    points; shard *i* holds values below ``bounds[i]``, the last shard
    holds the rest).  Tables absent from the :class:`PartitionMap` are
    *replicated*: every shard holds a full copy (the "broadcast small
    dimension tables" strategy — replication happens at load/DDL time, so
    joins against them are always shard-local).
    """

    table: str
    key: str
    strategy: str = "hash"
    bounds: tuple = ()

    def shard_for(self, value, shard_count: int) -> int:
        """Deterministic, process-stable shard assignment for one key
        value.  NULL keys go to shard 0 by convention."""
        if value is None:
            return 0
        if self.strategy == "range":
            return min(bisect.bisect_right(self.bounds, value), shard_count - 1)
        # hash: CRC32 over the text form — stable across processes and
        # Python runs (unlike builtin hash(), which is salted)
        return zlib.crc32(str(value).encode("utf-8")) % shard_count

    def fingerprint(self) -> tuple:
        return (self.table, self.key, self.strategy, tuple(self.bounds))


class PartitionMap:
    """table -> partition key -> shard assignment, for one topology.

    Carried through :class:`MetadataInterface` so the translation cache
    keys on it (``partition_fingerprint``): the same Q text translates to
    a *different* distributed plan under a different topology, and a
    cached plan must never leak across topologies.

    Routing logic built on this class may only be used from the
    distributed-rewrite pass and ``ShardedBackend`` (lint rule HQ007).
    """

    def __init__(self, shard_count: int, tables: list[TablePartitioning] | None = None):
        if shard_count < 1:
            raise MetadataError("a partition map needs at least one shard")
        self.shard_count = shard_count
        self._tables: dict[str, TablePartitioning] = {}
        for spec in tables or []:
            self.add(spec)

    def add(self, spec: TablePartitioning) -> None:
        self._tables[spec.table] = spec

    def hash_table(self, table: str, key: str) -> "PartitionMap":
        """Declare ``table`` hash-partitioned on ``key`` (chainable)."""
        self.add(TablePartitioning(table, key, "hash"))
        return self

    def range_table(self, table: str, key: str, bounds) -> "PartitionMap":
        self.add(TablePartitioning(table, key, "range", tuple(bounds)))
        return self

    def lookup(self, table: str) -> TablePartitioning | None:
        """Partitioning for ``table``; None means replicated everywhere."""
        return self._tables.get(table)

    def is_partitioned(self, table: str) -> bool:
        return table in self._tables

    @property
    def tables(self) -> dict[str, TablePartitioning]:
        return dict(self._tables)

    def shard_for(self, table: str, value) -> int | None:
        spec = self._tables.get(table)
        if spec is None:
            return None
        return spec.shard_for(value, self.shard_count)

    def fingerprint(self) -> tuple:
        """Hashable topology digest (translation-cache key component)."""
        return (
            self.shard_count,
            tuple(sorted(s.fingerprint() for s in self._tables.values())),
        )


class BackendPort:
    """Minimal interface the MDI needs from the backend connection.

    Implemented by the in-process gateway (direct engine calls) and the
    PG-wire gateway (network round trips).
    """

    def run_sql(self, sql: str):
        """Execute SQL, returning an object with .columns/.rows."""
        raise NotImplementedError

    def catalog_version(self) -> int:
        """Monotonic DDL version for cache invalidation; -1 if unknown."""
        return -1


class TableVersions:
    """Per-table monotonic write counters (result-cache invalidation).

    The backend catalog version only moves on DDL; DML leaves it alone.
    The result cache therefore keys on this *per-table* vector as well:
    a write to ``trades`` bumps only ``trades``, so cached results over
    ``quotes`` stay servable.  Owned by the :class:`MetadataInterface`
    (one per deployment — platform and server share their MDI across
    sessions), mutated only through the cache layer's execution choke
    point (``repro.cache.executor.QueryExecutor``).
    """

    def __init__(self):
        self._lock = make_lock("core.table_versions")
        self._versions: dict[str, int] = {}

    def version(self, table: str) -> int:
        with self._lock:
            return self._versions.get(table, 0)

    def bump(self, table: str) -> int:
        """Advance ``table``'s version; returns the new value."""
        with self._lock:
            value = self._versions.get(table, 0) + 1
            self._versions[table] = value
            return value

    def vector(self, tables) -> tuple:
        """Hashable (table, version) vector over ``tables``, sorted."""
        with self._lock:
            return tuple(
                (name, self._versions.get(name, 0))
                for name in sorted(set(tables))
            )


@dataclass
class CacheStats:
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class MetadataInterface:
    """Resolves table metadata through the backend catalog, with caching."""

    def __init__(
        self,
        port: BackendPort,
        config: MetadataCacheConfig | None = None,
        key_annotations: dict[str, list[str]] | None = None,
    ):
        self.port = port
        self.config = config or MetadataCacheConfig()
        self.stats = CacheStats()
        self._cache: dict[str, tuple[float, int, TableMeta | None]] = {}
        #: per-table DML version counters (result-cache key component)
        self.table_versions = TableVersions()
        #: key-column annotations Hyper-Q maintains itself (PG has no notion
        #: of Q keyed tables); populated by the session on xkey/load
        self._key_annotations: dict[str, list[str]] = dict(key_annotations or {})

    @property
    def key_annotations(self) -> dict[str, list[str]]:
        """Copy of the keyed-table annotations (for sharing across MDIs)."""
        return dict(self._key_annotations)

    @property
    def partition_map(self) -> PartitionMap | None:
        """The backend's partition topology, when it is sharded.

        Surfaced from the port (``ShardedBackend`` exposes one; every
        single-node backend returns None) so the distributed-rewrite pass
        and the translation-cache key see the topology through the same
        MDI they already depend on.
        """
        return getattr(self.port, "partition_map", None)

    def partition_fingerprint(self) -> tuple:
        """Topology digest for the translation-cache key; () unsharded."""
        pmap = self.partition_map
        return pmap.fingerprint() if pmap is not None else ()

    # -- public API -----------------------------------------------------------

    def lookup_table(self, name: str) -> TableMeta | None:
        """Metadata for a backend relation, or None if it does not exist."""
        self.stats.lookups += 1
        CACHE_LOOKUPS.inc()
        if self.config.enabled:
            cached = self._cache_get(name)
            if cached is not _MISS:
                self.stats.hits += 1
                CACHE_HITS.inc()
                return cached  # type: ignore[return-value]
        self.stats.misses += 1
        CACHE_MISSES.inc()
        # sample the catalog version BEFORE the fetch: a concurrent DDL
        # landing between the two port reads would otherwise stamp a
        # pre-DDL TableMeta with the post-DDL version — an entry the
        # VERSION invalidation policy can never tell is stale.  Stamping
        # the pre-fetch version errs the safe way (a DDL during the
        # fetch makes the entry *look* stale and re-fetch).
        version = self.port.catalog_version()
        meta = self._fetch(name)
        if self.config.enabled:
            self._cache[name] = (time.monotonic(), version, meta)
        return meta

    def require_table(self, name: str) -> TableMeta:
        meta = self.lookup_table(name)
        if meta is None:
            raise MetadataError(
                f"relation {name!r} does not exist in the backend catalog"
            )
        return meta

    def catalog_version(self) -> int:
        """The backend's monotonic DDL version (-1 if unknown).

        Shared plumbing for both caches: the metadata cache's VERSION
        invalidation policy and the translation-cache key both read it.
        """
        return self.port.catalog_version()

    def table_version(self, name: str) -> int:
        """Monotonic DML version for one table (0 = never written)."""
        return self.table_versions.version(name)

    def bump_table_version(self, name: str) -> int:
        """Record a write to ``name``: stale result-cache entries keyed
        on the old (table, version) pair become unreachable."""
        return self.table_versions.bump(name)

    def table_version_vector(self, tables) -> tuple:
        """Hashable per-table version vector (result-cache key part)."""
        return self.table_versions.vector(tables)

    def annotate_keys(self, table: str, keys: list[str]) -> None:
        """Record Q key columns for a backend table (kept Hyper-Q-side)."""
        self._key_annotations[table] = list(keys)
        self.invalidate(table)

    def invalidate(self, name: str | None = None) -> None:
        if name is None:
            self._cache.clear()
        else:
            self._cache.pop(name, None)
        self.stats.invalidations += 1
        CACHE_INVALIDATIONS.inc()

    # -- cache ------------------------------------------------------------------

    def _cache_get(self, name: str):
        entry = self._cache.get(name)
        if entry is None:
            return _MISS
        stamp, version, meta = entry
        if self.config.invalidation == CacheInvalidation.ALWAYS:
            return _MISS
        if time.monotonic() - stamp > self.config.expiration_seconds:
            del self._cache[name]
            return _MISS
        if self.config.invalidation == CacheInvalidation.VERSION:
            current = self.port.catalog_version()
            if current != -1 and current != version:
                del self._cache[name]
                return _MISS
        return meta

    # -- backend lookup ------------------------------------------------------------

    def _fetch(self, name: str) -> TableMeta | None:
        result = self.port.run_sql(
            "SELECT table_schema, column_name, data_type "
            "FROM information_schema.columns "
            f"WHERE table_name = '{name}' ORDER BY ordinal_position"
        )
        if not result.rows:
            return None
        schema = result.rows[0][0]
        columns = []
        ordcol = None
        for __, column_name, type_text in result.rows:
            columns.append(
                ColumnMeta(column_name, type_from_name(type_text), type_text)
            )
            if column_name == "ordcol":
                ordcol = column_name
        return TableMeta(
            name,
            columns,
            keys=list(self._key_annotations.get(name, [])),
            ordcol=ordcol,
            schema=schema,
        )


_MISS = object()
