"""Lowering of Q join verbs to XTRA.

The centerpiece is the as-of join: per the paper (Section 3.2.2, Figure 2)
``aj`` is "bound to a left outer join operator that computes a window
function on its right input.  The results need to be ordered at the end to
conform with Q ordered lists model."  Concretely the right input gains a
``lead(time)`` validity horizon per equality group, the join condition
checks ``r.time <= l.time < r.next_time``, and a final sort restores the
left table's implicit order.
"""

from __future__ import annotations

from repro.core.algebrizer.binder import (
    Binder,
    BoundTable,
    _const_value,
    _symbol_names,
)
from repro.core.xtra import scalars as sc
from repro.core.xtra.ops import (
    ORDCOL,
    XtraColumn,
    XtraJoin,
    XtraOp,
    XtraProject,
    XtraSort,
    XtraUnionAll,
    XtraWindow,
)
from repro.errors import QNotSupportedError, QRankError, QTypeError
from repro.qlang import ast
from repro.sqlengine.types import SqlType


def bind_join_call(binder: Binder, node: ast.Apply) -> BoundTable:
    name = node.func.name  # type: ignore[union-attr]
    args = [a for a in node.args if a is not None]
    if name in ("aj", "aj0"):
        if len(args) != 3:
            raise QRankError(f"{name} expects 3 arguments: columns, left, right")
        columns = _symbol_names(_const_value(args[0]), name)
        left = binder.bind_table(args[1])
        right = binder.bind_table(args[2])
        return bind_asof_join(
            binder, columns, left, right, use_right_time=(name == "aj0")
        )
    if name == "ej":
        if len(args) != 3:
            raise QRankError("ej expects 3 arguments: columns, left, right")
        columns = _symbol_names(_const_value(args[0]), "ej")
        left = binder.bind_table(args[1])
        right = binder.bind_table(args[2])
        return bind_equi_join(binder, columns, left, right)
    raise QNotSupportedError(f"join verb {name!r}")


def bind_infix_join(binder: Binder, node: ast.BinOp) -> BoundTable:
    left = binder.bind_table(node.left)
    right = binder.bind_table(node.right)
    if node.op == "uj":
        return bind_union_join(binder, left, right)
    if not right.keys:
        raise QTypeError(f"{node.op} expects a keyed table on the right")
    if node.op == "lj":
        return bind_keyed_join(binder, left, right, kind="left")
    if node.op == "ij":
        return bind_keyed_join(binder, left, right, kind="inner")
    raise QNotSupportedError(f"join verb {node.op!r}")


# ---------------------------------------------------------------------------
# as-of join
# ---------------------------------------------------------------------------


def bind_asof_join(
    binder: Binder,
    columns: list[str],
    left: BoundTable,
    right: BoundTable,
    use_right_time: bool = False,
) -> BoundTable:
    if not columns:
        raise QTypeError("aj needs at least one join column")
    eq_cols, asof_col = columns[:-1], columns[-1]
    left_op, right_op = left.op, right.op
    for name in columns:
        if not left_op.has_column(name) or not right_op.has_column(name):
            raise QTypeError(
                f"aj join column {name!r} missing from an input "
                f"(property check during binding, Section 3.2.2)"
            )

    prefix = binder.fresh_name("hq_r")
    renamed = {c.name: f"{prefix}_{c.name}" for c in right_op.columns}
    next_col = f"{prefix}__next"

    # window on the right input: validity horizon per equality group
    right_ctx = {c.name: c for c in right_op.columns}
    asof_ref = _colref(right_ctx[asof_col])
    order_by: list[tuple[sc.Scalar, bool]] = [(asof_ref, False)]
    if right_op.order_column is not None:
        order_by.append((_colref(right_ctx[right_op.order_column]), False))
    lead = sc.SWindow(
        "lead",
        [asof_ref],
        partition_by=[_colref(right_ctx[c]) for c in eq_cols],
        order_by=order_by,
        type_=asof_ref.sql_type,
    )
    windowed = XtraWindow(right_op, [(next_col, lead)])

    # rename right columns to avoid collisions with the left input
    rename_projections = [
        (renamed[c.name], _colref(c)) for c in right_op.columns
    ]
    rename_projections.append(
        (next_col, sc.SColRef(next_col, asof_ref.sql_type))
    )
    right_renamed = XtraProject(windowed, rename_projections)

    # join condition: equality on the leading columns, as-of on the last
    condition: sc.Scalar | None = None
    for name in eq_cols:
        left_col = left_op.column(name)
        clause: sc.Scalar = sc.SCmp(
            "=", _colref(left_col), sc.SColRef(renamed[name], left_col.sql_type)
        )
        condition = clause if condition is None else sc.SBool(
            "AND", [condition, clause]
        )
    left_time = _colref(left_op.column(asof_col))
    right_time = sc.SColRef(renamed[asof_col], left_time.sql_type)
    next_ref = sc.SColRef(next_col, left_time.sql_type)
    asof_clause = sc.SBool(
        "AND",
        [
            sc.SCmp("<=", right_time, left_time),
            sc.SBool(
                "OR",
                [sc.SCmp("<", left_time, next_ref), sc.SIsNull(next_ref)],
            ),
        ],
    )
    condition = asof_clause if condition is None else sc.SBool(
        "AND", [condition, asof_clause]
    )

    join = XtraJoin("left", left_op, right_renamed, condition)

    # output: left columns, then right payload columns not present in left
    projections = [(c.name, _colref(c)) for c in left_op.columns]
    for c in right_op.columns:
        if c.name in columns or left_op.has_column(c.name):
            continue
        if c.name == right_op.order_column:
            continue
        projections.append((c.name, sc.SColRef(renamed[c.name], c.sql_type)))
    if use_right_time:
        projections = [
            (name, scalar)
            if name != asof_col
            else (name, sc.SColRef(renamed[asof_col], left_time.sql_type))
            for name, scalar in projections
        ]
    project = XtraProject(join, projections)
    return BoundTable(_restore_order(project, left_op), shape="table")


# ---------------------------------------------------------------------------
# keyed joins (lj / ij)
# ---------------------------------------------------------------------------


def bind_keyed_join(
    binder: Binder, left: BoundTable, right: BoundTable, kind: str
) -> BoundTable:
    left_op, right_op = left.op, right.op
    keys = right.keys
    for name in keys:
        if not left_op.has_column(name):
            raise QTypeError(f"join key column {name!r} missing from left table")

    prefix = binder.fresh_name("hq_r")
    renamed = {c.name: f"{prefix}_{c.name}" for c in right_op.columns}
    match_col = f"{prefix}__match"
    rename_projections = [
        (renamed[c.name], _colref(c)) for c in right_op.columns
    ]
    rename_projections.append((match_col, sc.SConst(1, SqlType.INTEGER)))
    right_renamed = XtraProject(right_op, rename_projections)

    condition: sc.Scalar | None = None
    for name in keys:
        left_col = left_op.column(name)
        clause: sc.Scalar = sc.SCmp(
            "=", _colref(left_col), sc.SColRef(renamed[name], left_col.sql_type)
        )
        condition = clause if condition is None else sc.SBool(
            "AND", [condition, clause]
        )

    join = XtraJoin(kind, left_op, right_renamed, condition)

    value_columns = [
        c for c in right_op.columns
        if c.name not in keys and c.name != right_op.order_column
    ]
    value_names = {c.name for c in value_columns}
    projections: list[tuple[str, sc.Scalar]] = []
    for c in left_op.columns:
        if c.name in value_names:
            right_ref = sc.SColRef(renamed[c.name], c.sql_type)
            if kind == "left":
                # matched rows take the right value, unmatched keep the left
                match_ref = sc.SColRef(match_col, SqlType.INTEGER)
                scalar: sc.Scalar = sc.SCase(
                    [(sc.SIsNull(match_ref, negated=True), right_ref)],
                    _colref(c),
                    type_=c.sql_type,
                )
            else:
                scalar = right_ref
            projections.append((c.name, scalar))
        else:
            projections.append((c.name, _colref(c)))
    existing = {name for name, __ in projections}
    for c in value_columns:
        if c.name not in existing:
            projections.append(
                (c.name, sc.SColRef(renamed[c.name], c.sql_type))
            )
    project = XtraProject(join, projections)
    return BoundTable(_restore_order(project, left_op), shape="table")


# ---------------------------------------------------------------------------
# equi join (ej)
# ---------------------------------------------------------------------------


def bind_equi_join(
    binder: Binder, columns: list[str], left: BoundTable, right: BoundTable
) -> BoundTable:
    left_op, right_op = left.op, right.op
    for name in columns:
        if not left_op.has_column(name) or not right_op.has_column(name):
            raise QTypeError(f"ej join column {name!r} missing from an input")
    prefix = binder.fresh_name("hq_r")
    renamed = {c.name: f"{prefix}_{c.name}" for c in right_op.columns}
    right_renamed = XtraProject(
        right_op, [(renamed[c.name], _colref(c)) for c in right_op.columns]
    )
    condition: sc.Scalar | None = None
    for name in columns:
        left_col = left_op.column(name)
        clause: sc.Scalar = sc.SCmp(
            "=", _colref(left_col), sc.SColRef(renamed[name], left_col.sql_type)
        )
        condition = clause if condition is None else sc.SBool(
            "AND", [condition, clause]
        )
    join = XtraJoin("inner", left_op, right_renamed, condition)
    projections: list[tuple[str, sc.Scalar]] = []
    for c in left_op.columns:
        if c.name not in columns and right_op.has_column(c.name) and \
                c.name != right_op.order_column:
            projections.append(
                (c.name, sc.SColRef(renamed[c.name], c.sql_type))
            )
        else:
            projections.append((c.name, _colref(c)))
    existing = {name for name, __ in projections}
    for c in right_op.columns:
        if c.name in columns or c.name in existing or c.name == right_op.order_column:
            continue
        projections.append((c.name, sc.SColRef(renamed[c.name], c.sql_type)))
    project = XtraProject(join, projections)
    return BoundTable(_restore_order(project, left_op), shape="table")


# ---------------------------------------------------------------------------
# union join (uj)
# ---------------------------------------------------------------------------


def bind_union_join(
    binder: Binder, left: BoundTable, right: BoundTable
) -> BoundTable:
    left_op, right_op = left.op, right.op
    left_visible = [c for c in left_op.columns if not c.implicit]
    right_visible = [c for c in right_op.columns if not c.implicit]
    left_names = {c.name for c in left_visible}
    names = [c.name for c in left_visible] + [
        c.name for c in right_visible if c.name not in left_names
    ]
    side_col = binder.fresh_name("hq_side_")
    sub_order = binder.fresh_name("hq_sub_")

    types_by_name: dict[str, SqlType] = {}
    for c in right_visible + left_visible:  # left wins on collisions
        types_by_name[c.name] = c.sql_type

    def _type_of(name: str) -> SqlType:
        return types_by_name.get(name, SqlType.BIGINT)

    def pad(op: XtraOp, side: int) -> XtraOp:
        projections: list[tuple[str, sc.Scalar]] = []
        for name in names:
            if op.has_column(name):
                projections.append((name, _colref(op.column(name))))
            else:
                projections.append((name, sc.SConst(None, _type_of(name))))
        projections.append((side_col, sc.SConst(side, SqlType.INTEGER)))
        order = op.order_column
        if order is not None:
            projections.append((sub_order, _colref(op.column(order))))
        else:
            projections.append((sub_order, sc.SConst(0, SqlType.BIGINT)))
        return XtraProject(op, projections)

    union = XtraUnionAll(pad(left_op, 0), pad(right_op, 1))

    # regenerate the implicit order: left rows first, then right rows
    union_cols = {c.name: c for c in union.columns}
    row_number = sc.SWindow(
        "row_number",
        [],
        order_by=[
            (_colref(union_cols[side_col]), False),
            (_colref(union_cols[sub_order]), False),
        ],
        type_=SqlType.BIGINT,
    )
    windowed = XtraWindow(union, [(ORDCOL, row_number)])
    final_projections = [(ORDCOL, sc.SColRef(ORDCOL, SqlType.BIGINT, False))]
    for name in names:
        col = union_cols[name]
        final_projections.append((name, _colref(col)))
    project = XtraProject(windowed, final_projections)
    ordered = XtraSort(project, [(sc.SColRef(ORDCOL, SqlType.BIGINT), False)])
    return BoundTable(ordered, shape="table")


def _colref(col: XtraColumn) -> sc.SColRef:
    return sc.SColRef(col.name, col.sql_type, col.nullable)


def _restore_order(op: XtraOp, left_op: XtraOp) -> XtraOp:
    """Sort by the left input's implicit order column (paper: 'results need
    to be ordered at the end to conform with Q ordered lists model')."""
    order = left_op.order_column
    if order is None or not op.has_column(order):
        return op
    col = op.column(order)
    return XtraSort(op, [(sc.SColRef(col.name, col.sql_type), False)])
