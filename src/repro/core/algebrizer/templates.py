"""Binding of Q's select/exec/update/delete templates to XTRA.

The interesting mappings, all grounded in the paper:

* **where** conjuncts become a chain of xtra_filter nodes, preserving q's
  sequential constraint evaluation;
* **by** becomes grouped aggregation followed by a sort on the group keys
  (q returns by-results in ascending key order);
* aggregates mixed with per-row columns broadcast via full-partition
  window functions;
* **update ... by** becomes window functions partitioned by the group
  keys — the Xformer's "inject window functions" device (Section 3.3);
* a scalar aggregation projects a constant order column, exactly like the
  paper's generated SQL (``SELECT 1::int AS ordcol, MAX(Price) ...``).
"""

from __future__ import annotations

from repro.core.algebrizer.binder import Binder, BoundTable, ColumnContext
from repro.core.xtra import scalars as sc
from repro.core.xtra.ops import (
    ORDCOL,
    XtraFilter,
    XtraGroupAgg,
    XtraLimit,
    XtraOp,
    XtraProject,
    XtraSort,
)
from repro.errors import QNotSupportedError, QTypeError
from repro.qlang import ast
from repro.sqlengine.types import SqlType

FULL_FRAME = "rows between unbounded preceding and unbounded following"


def bind_template(binder: Binder, node: ast.Template) -> BoundTable:
    source = binder.bind_table(node.source)
    rel = source.op

    if node.kind == "delete":
        return _bind_delete(binder, node, rel, source)

    for conjunct in node.where:
        ctx = ColumnContext(rel, rel.order_column)
        predicate = binder.bind_scalar(conjunct, ctx)
        if predicate.sql_type != SqlType.BOOLEAN:
            raise QTypeError(
                "where constraint must evaluate to booleans, got "
                f"{predicate.sql_type.value}"
            )
        # window functions (fby, differ, ...) are illegal inside WHERE:
        # lift them into computed columns on the input first
        rel, predicate = _lift_windows(binder, rel, predicate)
        rel = XtraFilter(rel, predicate)

    if node.kind == "select":
        return _bind_select(binder, node, rel, source)
    if node.kind == "exec":
        return _bind_exec(binder, node, rel, source)
    if node.kind == "update":
        return _bind_update(binder, node, rel, source)
    raise QNotSupportedError(f"template kind {node.kind!r}")


def _lift_windows(binder: Binder, rel: XtraOp, predicate: sc.Scalar):
    """Replace window subexpressions of a predicate with references to
    freshly computed window columns over ``rel``."""
    from repro.core.xformer.rules import rewrite_scalar_tree
    from repro.core.xtra.ops import XtraWindow

    lifted: list[tuple[str, sc.Scalar]] = []

    def replace(scalar: sc.Scalar) -> sc.Scalar:
        if isinstance(scalar, sc.SWindow):
            name = binder.fresh_name("hq_w")
            lifted.append((name, scalar))
            return sc.SColRef(name, scalar.sql_type)
        return scalar

    rewritten = rewrite_scalar_tree(predicate, replace)
    if not lifted:
        return rel, predicate
    return XtraWindow(rel, lifted), rewritten


# ---------------------------------------------------------------------------
# select
# ---------------------------------------------------------------------------


def _bind_select(
    binder: Binder, node: ast.Template, rel: XtraOp, source: BoundTable
) -> BoundTable:
    ctx = ColumnContext(rel, rel.order_column)

    if node.by:
        result = _bind_grouped_select(binder, node, rel, ctx)
    elif not node.columns:
        result = BoundTable(rel, keys=source.keys, shape=source.shape)
    else:
        result = _bind_plain_select(binder, node, rel, ctx)

    if node.limit is not None:
        offset, count = _limit_spec(binder, node.limit)
        op = result.op
        order_name = op.order_column
        if order_name is not None:
            order_ctx = ColumnContext(op, order_name)
            if count < 0:
                # select[-n]: the last n rows — take from a descending sort,
                # then restore the ascending implicit order
                descending = XtraSort(
                    op, [(order_ctx.colref(order_name), True)]
                )
                limited = XtraLimit(descending, -count)
                limited_ctx = ColumnContext(limited, order_name)
                op = XtraSort(
                    limited, [(limited_ctx.colref(order_name), False)]
                )
                return BoundTable(op, keys=[], shape="table")
            op = XtraSort(op, [(order_ctx.colref(order_name), False)])
        if count < 0:
            raise QNotSupportedError(
                "select[-n] needs an ordered input (no implicit order column)"
            )
        result = BoundTable(
            XtraLimit(op, count, offset=offset), keys=[], shape="table"
        )
    return result


def _bind_plain_select(
    binder: Binder, node: ast.Template, rel: XtraOp, ctx: ColumnContext
) -> BoundTable:
    specs = [
        (spec.name or ast.infer_column_name(spec.expr),
         binder.bind_scalar(spec.expr, ctx))
        for spec in node.columns
    ]
    has_agg = [bool(_find_aggregates(scalar)) for __, scalar in specs]

    if all(has_agg) and specs:
        # pure scalar aggregation: one row, constant order column
        agg = XtraGroupAgg(rel, [], [(name, scalar) for name, scalar in specs])
        projections = [(ORDCOL, sc.SConst(1, SqlType.INTEGER))] + [
            (name, sc.SColRef(name, scalar.sql_type))
            for name, scalar in specs
        ]
        return BoundTable(XtraProject(_with_ordcol_name(agg), projections))

    if any(has_agg):
        # mixed: broadcast aggregates over the whole input via windows
        specs = [
            (name, _aggregates_to_windows(scalar, partition=[]))
            for name, scalar in specs
        ]

    projections = []
    if ctx.ordcol is not None:
        projections.append((ctx.ordcol, ctx.colref(ctx.ordcol)))
    projections.extend(specs)
    return BoundTable(XtraProject(rel, projections))


def _with_ordcol_name(op: XtraOp) -> XtraOp:
    return op  # scalar aggregation result has no ordcol; projection adds one


def _bind_grouped_select(
    binder: Binder, node: ast.Template, rel: XtraOp, ctx: ColumnContext
) -> BoundTable:
    group_keys = [
        (spec.name or ast.infer_column_name(spec.expr),
         binder.bind_scalar(spec.expr, ctx))
        for spec in node.by
    ]
    if node.columns:
        aggregates = []
        for spec in node.columns:
            name = spec.name or ast.infer_column_name(spec.expr)
            scalar = binder.bind_scalar(spec.expr, ctx)
            if not _find_aggregates(scalar):
                # q keeps the last value per group for non-aggregates
                scalar = sc.SAgg("last", scalar, type_=scalar.sql_type)
            aggregates.append((name, scalar))
    else:
        # `select by a from t` keeps the last row of each group
        aggregates = [
            (col.name, sc.SAgg("last", ctx.colref(col.name), type_=col.sql_type))
            for col in rel.visible_columns
            if col.name not in {name for name, __ in group_keys}
        ]
    agg = XtraGroupAgg(rel, group_keys, aggregates)
    agg_ctx = ColumnContext(agg, None)
    sort_items = [(agg_ctx.colref(name), False) for name, __ in group_keys]
    ordered = XtraSort(agg, sort_items)
    return BoundTable(
        ordered, keys=[name for name, __ in group_keys], shape="keyed"
    )


# ---------------------------------------------------------------------------
# exec
# ---------------------------------------------------------------------------


def _bind_exec(
    binder: Binder, node: ast.Template, rel: XtraOp, source: BoundTable
) -> BoundTable:
    if not node.columns:
        raise QTypeError("exec requires explicit columns")
    ctx = ColumnContext(rel, rel.order_column)
    if node.by:
        if len(node.columns) != 1:
            raise QNotSupportedError("exec ... by supports a single column")
        grouped = _bind_grouped_select(binder, node, rel, ctx)
        return BoundTable(grouped.op, keys=grouped.keys, shape="dict_keyed")
    select_node = ast.Template(
        "select", node.columns, [], node.source, [], pos=node.pos
    )
    plain = _bind_plain_select(binder, select_node, rel, ctx)
    shape = "vector" if len(node.columns) == 1 else "dict"
    if len(node.columns) == 1:
        # `exec max Price from t` yields an atom, not a 1-item vector
        probe = binder.bind_scalar(node.columns[0].expr, ctx)
        if _find_aggregates(probe):
            shape = "atom"
    return BoundTable(plain.op, shape=shape)


# ---------------------------------------------------------------------------
# update / delete
# ---------------------------------------------------------------------------


def _bind_update(
    binder: Binder, node: ast.Template, rel: XtraOp, source: BoundTable
) -> BoundTable:
    ctx = ColumnContext(rel, rel.order_column)
    partition = [binder.bind_scalar(spec.expr, ctx) for spec in node.by]

    updated: dict[str, sc.Scalar] = {}
    for spec in node.columns:
        name = spec.name or ast.infer_column_name(spec.expr)
        scalar = binder.bind_scalar(spec.expr, ctx)
        if node.by:
            scalar = _aggregates_to_windows(scalar, partition)
            scalar = _add_partitions(scalar, partition)
        elif _find_aggregates(scalar):
            scalar = _aggregates_to_windows(scalar, [])
        updated[name] = scalar

    projections: list[tuple[str, sc.Scalar]] = []
    seen = set()
    for col in rel.columns:
        if col.name in updated:
            projections.append((col.name, updated[col.name]))
        else:
            projections.append((col.name, ctx.colref(col.name)))
        seen.add(col.name)
    for name, scalar in updated.items():
        if name not in seen:
            projections.append((name, scalar))
    return BoundTable(
        XtraProject(rel, projections), keys=source.keys, shape=source.shape
    )


def _bind_delete(
    binder: Binder, node: ast.Template, rel: XtraOp, source: BoundTable
) -> BoundTable:
    if node.columns:
        doomed = {
            spec.name or ast.infer_column_name(spec.expr)
            for spec in node.columns
        }
        ctx = ColumnContext(rel, rel.order_column)
        projections = [
            (col.name, ctx.colref(col.name))
            for col in rel.columns
            if col.name not in doomed
        ]
        return BoundTable(
            XtraProject(rel, projections), keys=source.keys, shape=source.shape
        )
    if node.where:
        ctx = ColumnContext(rel, rel.order_column)
        conjuncts = [binder.bind_scalar(c, ctx) for c in node.where]
        combined = conjuncts[0]
        for extra in conjuncts[1:]:
            combined = sc.SBool("AND", [combined, extra])
        # delete keeps rows where the predicate is NOT satisfied; SQL's
        # NOT(x) drops NULL rows, so wrap with a null-safe complement
        keep = sc.SBool(
            "OR",
            [sc.SBool("NOT", [combined]), sc.SIsNull(combined)],
        )
        return BoundTable(
            XtraFilter(rel, keep), keys=source.keys, shape=source.shape
        )
    raise QNotSupportedError("delete without columns or constraints")


# ---------------------------------------------------------------------------
# aggregate handling
# ---------------------------------------------------------------------------


def _find_aggregates(scalar: sc.Scalar) -> list[sc.SAgg]:
    found: list[sc.SAgg] = []

    def walk(node: sc.Scalar, in_window: bool) -> None:
        if isinstance(node, sc.SWindow):
            for child in node.children():
                walk(child, True)
            return
        if isinstance(node, sc.SAgg):
            if not in_window:
                found.append(node)
            if node.arg is not None:
                walk(node.arg, in_window)
            return
        for child in node.children():
            walk(child, in_window)

    walk(scalar, False)
    return found


def _aggregates_to_windows(
    scalar: sc.Scalar, partition: list[sc.Scalar]
) -> sc.Scalar:
    """Replace aggregates with full-partition window equivalents so they
    broadcast over rows (q's mixed select / update-by semantics)."""
    if isinstance(scalar, sc.SAgg):
        return sc.SWindow(
            scalar.name,
            [scalar.arg] if scalar.arg is not None else [],
            partition_by=list(partition),
            frame=FULL_FRAME,
            type_=scalar.sql_type,
        )
    for attr in ("left", "right", "arg"):
        if hasattr(scalar, attr):
            child = getattr(scalar, attr)
            if isinstance(child, sc.Scalar):
                setattr(scalar, attr, _aggregates_to_windows(child, partition))
    if isinstance(scalar, (sc.SBool, sc.SFunc)):
        scalar.args = [_aggregates_to_windows(a, partition) for a in scalar.args]
    if isinstance(scalar, sc.SCase):
        scalar.branches = [
            (
                _aggregates_to_windows(c, partition),
                _aggregates_to_windows(r, partition),
            )
            for c, r in scalar.branches
        ]
        if scalar.default is not None:
            scalar.default = _aggregates_to_windows(scalar.default, partition)
    return scalar


def _add_partitions(scalar: sc.Scalar, partition: list[sc.Scalar]) -> sc.Scalar:
    """Add group-key partitions to window functions bound inside an
    ``update ... by`` (e.g. ``sums Size by Symbol``)."""
    if isinstance(scalar, sc.SWindow) and not scalar.partition_by:
        scalar.partition_by = list(partition)
    for child in scalar.children():
        _add_partitions(child, partition)
    return scalar


def _limit_spec(binder: Binder, node: ast.Node) -> tuple[int, int]:
    """Parse select[...]'s limit literal into (offset, count).

    ``select[n]`` -> (0, n); ``select[-n]`` -> (0, -n) (last-n marker);
    ``select[offset count]`` -> (offset, count).
    """
    from repro.core.algebrizer.binder import _const_value
    from repro.qlang.values import QAtom, QVector

    value = _const_value(node)
    if value is None:
        raise QNotSupportedError("select[n] limit must be a literal")
    if isinstance(value, QVector) and len(value) == 2:
        return int(value.items[0]), int(value.items[1])
    if isinstance(value, QAtom) and value.qtype.is_integral:
        return 0, int(value.value)
    raise QTypeError("select[n] limit must be an integer or a pair")


def aggregate_over_table(binder: Binder, name: str, bound: BoundTable) -> BoundTable:
    """Bind ``avg exec Price from t`` style aggregates over a bound table."""
    from repro.core.algebrizer.binder import _AGGREGATE_NAMES

    op = bound.op
    visible = op.visible_columns
    if name == "count":
        agg = XtraGroupAgg(
            op, [], [("count", sc.SAgg("count", None, type_=SqlType.BIGINT))]
        )
        return BoundTable(agg, shape="atom")
    if len(visible) != 1:
        raise QTypeError(
            f"aggregate {name!r} over a table needs exactly one column, "
            f"found {len(visible)}"
        )
    sql_name, forced = _AGGREGATE_NAMES[name]
    col = visible[0]
    scalar = sc.SAgg(
        sql_name,
        sc.SColRef(col.name, col.sql_type),
        type_=forced or col.sql_type,
    )
    agg = XtraGroupAgg(op, [], [(col.name, scalar)])
    return BoundTable(agg, shape="atom")
