"""The binder: Q AST -> XTRA (paper Section 3.2.2).

Binding is bottom-up: for each operator the binder binds the inputs,
derives and checks their properties, then maps the operator to its XTRA
representation.  Variable references resolve through the scope hierarchy
and the metadata interface; literals map to typed constants (ints to
integer types, symbols to varchar, strings to text).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.config import HyperQConfig
from repro.core.metadata import MetadataInterface, TableMeta
from repro.core.scopes import Scope, VarKind
from repro.core.xtra import scalars as sc
from repro.core.xtra.ops import (
    ORDCOL,
    XtraColumn,
    XtraConstTable,
    XtraGet,
    XtraOp,
    XtraSort,
)
from repro.errors import QNameError, QNotSupportedError, QRankError, QTypeError
from repro.qlang import ast
from repro.qlang.qtypes import QType
from repro.qlang.values import QAtom, QList, QValue, QVector
from repro.sqlengine.types import SqlType, promote


@dataclass
class BoundTable:
    """A bound relational expression."""

    op: XtraOp
    #: key column names when the Q value is a keyed table
    keys: list[str] = field(default_factory=list)
    #: how the Q application expects the result shaped:
    #: 'table' | 'keyed' | 'vector' | 'dict' | 'atom'
    shape: str = "table"


@dataclass
class BoundScalar:
    """A bound scalar expression (no relation input)."""

    scalar: sc.Scalar


Bound = BoundTable | BoundScalar


class ColumnContext:
    """Columns visible while binding a template expression."""

    def __init__(self, op: XtraOp, ordcol: str | None):
        self.op = op
        self.ordcol = ordcol
        self._types = {c.name: (c.sql_type, c.nullable) for c in op.columns}

    def has(self, name: str) -> bool:
        return name in self._types

    def colref(self, name: str) -> sc.SColRef:
        sql_type, nullable = self._types[name]
        return sc.SColRef(name, sql_type, nullable)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.op.columns]


class Binder:
    """Binds parsed Q ASTs to XTRA using scopes + MDI."""

    def __init__(
        self,
        mdi: MetadataInterface,
        scope: Scope,
        config: HyperQConfig | None = None,
    ):
        self.mdi = mdi
        self.scope = scope
        self.config = config or HyperQConfig()
        self._name_counter = itertools.count(1)

    def fresh_name(self, prefix: str = "hq_col_") -> str:
        return f"{prefix}{next(self._name_counter)}"

    # -- entry points -----------------------------------------------------------

    def bind(self, node: ast.Node) -> Bound:
        """Bind an expression statement to either a table or a scalar."""
        if _is_table_shaped(node):
            return self.bind_table(node)
        # aggregate applied to a table expression: `avg exec Price from t`
        agg_call = self._as_table_aggregate(node)
        if agg_call is not None:
            from repro.core.algebrizer.templates import aggregate_over_table

            name, operand = agg_call
            return aggregate_over_table(self, name, self.bind_table(operand))
        # try scalar first; fall back to table for variables
        if isinstance(node, ast.Name):
            definition = self.scope.lookup(node.name)
            if definition is not None and definition.kind in (
                VarKind.TABLE,
                VarKind.VIEW,
            ):
                return self.bind_table(node)
            if definition is not None and definition.kind == VarKind.SCALAR:
                return BoundScalar(self.bind_literal(definition.value))
            meta = self.mdi.lookup_table(node.name)
            if meta is not None:
                return self.bind_table(node)
            raise QNameError(
                f"undefined variable {node.name!r} (searched local, session "
                f"and server scopes, then the backend catalog)"
            )
        scalar = self.bind_scalar(node, None)
        return BoundScalar(scalar)

    # -- table expressions --------------------------------------------------------

    def bind_table(self, node: ast.Node) -> BoundTable:
        from repro.core.algebrizer import joins as join_binding
        from repro.core.algebrizer import templates as template_binding

        if isinstance(node, ast.Template):
            return template_binding.bind_template(self, node)
        if isinstance(node, ast.Name):
            return self._bind_table_name(node.name)
        if isinstance(node, ast.TableExpr):
            return self._bind_table_literal(node)
        if isinstance(node, ast.Apply) and isinstance(node.func, ast.Name):
            if node.func.name in ("aj", "aj0", "ej"):
                return join_binding.bind_join_call(self, node)
        if isinstance(node, ast.BinOp) and node.op in ("lj", "ij", "uj"):
            return join_binding.bind_infix_join(self, node)
        if isinstance(node, ast.BinOp) and node.op in ("xasc", "xdesc"):
            return self._bind_sort(node)
        if isinstance(node, ast.BinOp) and node.op == "xkey":
            return self._bind_xkey(node)
        if isinstance(node, ast.BinOp) and node.op == "!":
            return self._bind_bang_key(node)
        if isinstance(node, ast.UnOp) and node.op == "!":
            raise QNotSupportedError("monadic ! on tables")
        if isinstance(node, ast.Apply) and isinstance(node.func, ast.Name):
            name = node.func.name
            if name == "value" or name == "get":
                return self.bind_table(node.args[0])
        raise QNotSupportedError(
            f"cannot bind {ast.node_name(node)} as a table expression; "
            f"this Q construct is outside the supported surface"
        )

    def _bind_table_name(self, name: str) -> BoundTable:
        definition = self.scope.lookup(name)
        if definition is not None:
            if definition.kind in (VarKind.TABLE, VarKind.VIEW):
                meta = definition.meta or self.mdi.require_table(
                    definition.relation or name
                )
                return BoundTable(
                    _get_from_meta(meta, definition.relation or name),
                    keys=list(meta.keys),
                    shape="keyed" if meta.keys else "table",
                )
            if definition.kind == VarKind.SCALAR:
                raise QTypeError(
                    f"variable {name!r} holds a scalar, not a table"
                )
            if definition.kind == VarKind.FUNCTION:
                raise QTypeError(f"variable {name!r} is a function, not a table")
        meta = self.mdi.lookup_table(name)
        if meta is None:
            raise QNameError(
                f"undefined table {name!r} (searched local, session and "
                f"server scopes, then the backend catalog)"
            )
        return BoundTable(
            _get_from_meta(meta, name),
            keys=list(meta.keys),
            shape="keyed" if meta.keys else "table",
        )

    def _bind_table_literal(self, node: ast.TableExpr) -> BoundTable:
        all_specs = node.key_columns + node.columns
        names = [name for name, __ in all_specs]
        value_columns: list[list] = []
        sql_types: list[SqlType] = []
        length = None
        for __, expr in all_specs:
            values, sql_type = self._literal_column(expr)
            value_columns.append(values)
            sql_types.append(sql_type)
            if length is None or len(values) > length:
                length = len(values)
        length = length or 0
        rows = []
        for i in range(length):
            row = []
            for values in value_columns:
                if len(values) == 1:
                    row.append(values[0])
                elif i < len(values):
                    row.append(values[i])
                else:
                    raise QTypeError("table literal columns differ in length")
            row.append(i)  # implicit ordcol
            rows.append(row)
        columns = [
            XtraColumn(name, sql_type)
            for name, sql_type in zip(names, sql_types)
        ]
        columns.append(XtraColumn(ORDCOL, SqlType.BIGINT, False, implicit=True))
        op = XtraConstTable(columns, rows)
        keys = [name for name, __ in node.key_columns]
        return BoundTable(op, keys=keys, shape="keyed" if keys else "table")

    def _literal_column(self, expr: ast.Node) -> tuple[list, SqlType]:
        value = _const_value(expr)
        if value is None and isinstance(expr, (ast.UnOp, ast.Apply)):
            # `enlist <literal>` is a common row-construction idiom
            inner = None
            if isinstance(expr, ast.UnOp) and expr.op == "enlist":
                inner = _const_value(expr.operand)
            elif (
                isinstance(expr, ast.Apply)
                and isinstance(expr.func, ast.Name)
                and expr.func.name == "enlist"
                and len(expr.args) == 1
                and expr.args[0] is not None
            ):
                inner = _const_value(expr.args[0])
            if isinstance(inner, QAtom):
                raw, sql_type = _atom_to_sql(inner)
                return [raw], sql_type
        if value is None:
            raise QNotSupportedError(
                "table literal columns must be constant expressions"
            )
        return _qvalue_to_sql_column(value)

    def _bind_sort(self, node: ast.BinOp) -> BoundTable:
        columns = _symbol_names(_const_value(node.left), node.op)
        source = self.bind_table(node.right)
        ctx = ColumnContext(source.op, source.op.order_column)
        items: list[tuple[sc.Scalar, bool]] = []
        descending = node.op == "xdesc"
        for name in columns:
            if not ctx.has(name):
                raise QTypeError(f"{node.op} column {name!r} not in table")
            items.append((ctx.colref(name), descending))
        # keep the original order as a secondary key so equal keys stay stable
        if source.op.order_column is not None:
            items.append((ctx.colref(source.op.order_column), False))
        return BoundTable(XtraSort(source.op, items), keys=source.keys)

    def _bind_xkey(self, node: ast.BinOp) -> BoundTable:
        columns = _symbol_names(_const_value(node.left), "xkey")
        source = self.bind_table(node.right)
        for name in columns:
            if not source.op.has_column(name):
                raise QTypeError(f"xkey column {name!r} not in table")
        return BoundTable(source.op, keys=columns, shape="keyed")

    def _bind_bang_key(self, node: ast.BinOp) -> BoundTable:
        count = _const_value(node.left)
        if not isinstance(count, QAtom) or not count.qtype.is_integral:
            raise QNotSupportedError("dyadic ! is supported only as n!table")
        source = self.bind_table(node.right)
        n = int(count.value)
        if n == 0:
            return BoundTable(source.op, keys=[], shape="table")
        visible = [c.name for c in source.op.visible_columns]
        return BoundTable(source.op, keys=visible[:n], shape="keyed")

    # -- scalar expressions ---------------------------------------------------------

    def bind_scalar(self, node: ast.Node, ctx: ColumnContext | None) -> sc.Scalar:
        if isinstance(node, ast.Literal):
            return self.bind_literal(node.value)
        if isinstance(node, ast.Name):
            return self._bind_scalar_name(node.name, ctx)
        if isinstance(node, ast.BinOp):
            return self._bind_scalar_binop(node, ctx)
        if isinstance(node, ast.UnOp):
            return self._bind_monadic(node.op, node.operand, ctx)
        if isinstance(node, ast.Apply):
            return self._bind_scalar_apply(node, ctx)
        if isinstance(node, ast.Cond):
            return self._bind_cond(node, ctx)
        if isinstance(node, ast.Template):
            return self._bind_scalar_subquery(node)
        raise QNotSupportedError(
            f"cannot bind {ast.node_name(node)} in a scalar context"
        )

    def bind_literal(self, value: QValue) -> sc.Scalar:
        if isinstance(value, QAtom):
            raw, sql_type = _atom_to_sql(value)
            return sc.SConst(raw, sql_type)
        if isinstance(value, QVector) and value.qtype == QType.CHAR:
            return sc.SConst("".join(value.items), SqlType.TEXT)
        raise QTypeError(
            "list literals are only supported as the right operand of "
            "'in' or 'within'"
        )

    def _bind_scalar_name(self, name: str, ctx: ColumnContext | None) -> sc.Scalar:
        if ctx is not None and ctx.has(name):
            return ctx.colref(name)
        if ctx is not None and name == "i" and ctx.ordcol is not None:
            return ctx.colref(ctx.ordcol)
        definition = self.scope.lookup(name)
        if definition is not None and definition.kind == VarKind.SCALAR:
            return self.bind_literal(definition.value)
        if definition is not None:
            raise QTypeError(
                f"variable {name!r} is a {definition.kind.value}, "
                f"not usable in a scalar context"
            )
        if self.mdi.lookup_table(name) is not None:
            raise QTypeError(
                f"{name!r} is a table; tables are not usable in a scalar "
                f"context"
            )
        raise QNameError(
            f"undefined variable {name!r} in scalar context "
            f"(not a column of the current table, not in any scope)"
        )

    # arithmetic / comparison dyads -------------------------------------------------

    def _bind_scalar_binop(self, node: ast.BinOp, ctx) -> sc.Scalar:
        op = node.op
        if op in ("+", "-", "*", "%"):
            left = self.bind_scalar(node.left, ctx)
            right = self.bind_scalar(node.right, ctx)
            return _arith(op, left, right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            left = self.bind_scalar(node.left, ctx)
            right = self.bind_scalar(node.right, ctx)
            # strict comparison; the Xformer upgrades = / <> to 2VL form
            return sc.SCmp(op, left, right)
        if op == "in":
            return self._bind_in(node, ctx)
        if op == "within":
            return self._bind_within(node, ctx)
        if op == "like":
            return self._bind_like(node, ctx)
        if op == "&":
            return self._min_max("least", node, ctx)
        if op == "|":
            return self._min_max("greatest", node, ctx)
        if op == "and":
            return sc.SBool(
                "AND",
                [self.bind_scalar(node.left, ctx), self.bind_scalar(node.right, ctx)],
            )
        if op == "or":
            return sc.SBool(
                "OR",
                [self.bind_scalar(node.left, ctx), self.bind_scalar(node.right, ctx)],
            )
        if op == "^":
            # x ^ y: y unless null, else x  ->  coalesce(y, x)
            left = self.bind_scalar(node.left, ctx)
            right = self.bind_scalar(node.right, ctx)
            return sc.SFunc("coalesce", [right, left], type_=right.sql_type)
        if op == "xbar":
            left = self.bind_scalar(node.left, ctx)
            right = self.bind_scalar(node.right, ctx)
            bucket = _arith(
                "*",
                sc.SFunc(
                    "floor", [_arith("%", right, left)], type_=SqlType.BIGINT
                ),
                left,
            )
            return bucket
        if op == "mod":
            left = self.bind_scalar(node.left, ctx)
            right = self.bind_scalar(node.right, ctx)
            return sc.SFunc("mod", [left, right], type_=left.sql_type)
        if op == "div":
            left = self.bind_scalar(node.left, ctx)
            right = self.bind_scalar(node.right, ctx)
            return sc.SFunc(
                "floor", [_arith("%", left, right)], type_=SqlType.BIGINT
            )
        if op == "$":
            return self._bind_cast(node, ctx)
        if op in ("mavg", "msum", "mmax", "mmin", "mcount"):
            return self._bind_moving(op, node, ctx)
        if op in ("wavg", "wsum"):
            return self._bind_weighted(op, node, ctx)
        if op == "xprev":
            return self._bind_xprev(node, ctx)
        if op == "fby":
            return self._bind_fby(node, ctx)
        raise QNotSupportedError(
            f"dyadic {op!r} has no SQL translation in the supported surface"
        )

    def _bind_fby(self, node: ast.BinOp, ctx) -> sc.Scalar:
        """``(agg; data) fby group`` -> agg(data) OVER (PARTITION BY group).

        The canonical q filter-by idiom; its SQL form is exactly the
        full-partition window broadcast the paper's Xformer injects."""
        if ctx is None:
            raise QNotSupportedError("fby requires a table context")
        if not isinstance(node.left, ast.ListExpr) or len(node.left.items) != 2:
            raise QTypeError("fby expects (aggregate; data) on the left")
        fn_node, data_node = node.left.items
        if not isinstance(fn_node, ast.Name) or fn_node.name not in _AGGREGATE_NAMES:
            raise QNotSupportedError(
                "fby aggregate must be one of the built-in aggregates"
            )
        sql_name, forced = _AGGREGATE_NAMES[fn_node.name]
        data = self.bind_scalar(data_node, ctx)
        group = self.bind_scalar(node.right, ctx)
        return sc.SWindow(
            sql_name,
            [data],
            partition_by=[group],
            frame="rows between unbounded preceding and unbounded following",
            type_=forced or data.sql_type,
        )

    def _min_max(self, fn: str, node: ast.BinOp, ctx) -> sc.Scalar:
        left = self.bind_scalar(node.left, ctx)
        right = self.bind_scalar(node.right, ctx)
        if left.sql_type == SqlType.BOOLEAN and right.sql_type == SqlType.BOOLEAN:
            return sc.SBool("AND" if fn == "least" else "OR", [left, right])
        return sc.SFunc(fn, [left, right], type_=_promote_safe(left, right))

    def _bind_in(self, node: ast.BinOp, ctx) -> sc.Scalar:
        operand = self.bind_scalar(node.left, ctx)
        items_value = _const_value(node.right)
        if items_value is None:
            raise QNotSupportedError(
                "'in' requires a literal list on the right in the supported surface"
            )
        items = _qvalue_to_const_list(items_value)
        return sc.SIn(operand, items)

    def _bind_within(self, node: ast.BinOp, ctx) -> sc.Scalar:
        operand = self.bind_scalar(node.left, ctx)
        bounds_value = _const_value(node.right)
        if bounds_value is None:
            raise QNotSupportedError("'within' requires literal bounds")
        bounds = _qvalue_to_const_list(bounds_value)
        if len(bounds) != 2:
            raise QTypeError("'within' requires a 2-item bound list")
        return sc.SBetween(operand, bounds[0], bounds[1])

    def _bind_like(self, node: ast.BinOp, ctx) -> sc.Scalar:
        operand = self.bind_scalar(node.left, ctx)
        pattern_value = _const_value(node.right)
        if pattern_value is None:
            raise QNotSupportedError("'like' requires a literal pattern")
        if isinstance(pattern_value, QVector) and pattern_value.qtype == QType.CHAR:
            pattern = "".join(pattern_value.items)
        elif isinstance(pattern_value, QAtom) and pattern_value.qtype == QType.SYMBOL:
            pattern = pattern_value.value
        else:
            raise QTypeError("'like' pattern must be a string or symbol")
        sql_pattern = pattern.replace("%", r"\%").replace("*", "%").replace("?", "_")
        return sc.SLike(operand, sql_pattern)

    def _bind_cast(self, node: ast.BinOp, ctx) -> sc.Scalar:
        target_value = _const_value(node.left)
        if not isinstance(target_value, QAtom) or target_value.qtype != QType.SYMBOL:
            raise QNotSupportedError("cast target must be a symbol literal")
        mapping = {
            "long": SqlType.BIGINT,
            "int": SqlType.INTEGER,
            "short": SqlType.SMALLINT,
            "float": SqlType.DOUBLE,
            "real": SqlType.REAL,
            "boolean": SqlType.BOOLEAN,
            "symbol": SqlType.VARCHAR,
            "date": SqlType.DATE,
            "time": SqlType.TIME,
            "timestamp": SqlType.TIMESTAMP,
        }
        target = mapping.get(target_value.value)
        if target is None:
            raise QNotSupportedError(
                f"cast to `{target_value.value} has no SQL equivalent "
                f"(paper Section 5, limitation category 2)"
            )
        return sc.SCast(self.bind_scalar(node.right, ctx), target)

    # monadic keywords ----------------------------------------------------------------

    def _bind_monadic(self, op: str, operand: ast.Node, ctx) -> sc.Scalar:
        arg = None  # bound lazily; aggregates need raw node
        binding = _MONADIC_BINDINGS.get(op)
        if binding is not None:
            arg = self.bind_scalar(operand, ctx)
            return binding(arg)
        if op in _AGGREGATE_NAMES:
            return self._bind_aggregate(op, operand, ctx)
        if op in _UNIFORM_WINDOW_VERBS:
            return self._bind_uniform(op, operand, ctx)
        raise QNotSupportedError(
            f"monadic {op!r} has no SQL translation in the supported surface"
        )

    def _bind_scalar_apply(self, node: ast.Apply, ctx) -> sc.Scalar:
        if isinstance(node.func, ast.Name):
            name = node.func.name
            args = [a for a in node.args if a is not None]
            if name == "?" and len(args) == 3:
                # vector conditional ?[c;a;b] -> CASE WHEN c THEN a ELSE b
                condition = self.bind_scalar(args[0], ctx)
                then_value = self.bind_scalar(args[1], ctx)
                else_value = self.bind_scalar(args[2], ctx)
                return sc.SCase([(condition, then_value)], else_value)
            if len(args) == 1:
                return self._bind_monadic(name, args[0], ctx)
            if len(args) == 2 and name in (
                "mavg", "msum", "mmax", "mmin", "mcount", "wavg", "wsum",
                "xprev", "xbar", "mod", "div", "in", "within", "like",
            ):
                return self._bind_scalar_binop(
                    ast.BinOp(name, args[0], args[1], pos=node.pos), ctx
                )
        if isinstance(node.func, ast.AdverbApply):
            raise QNotSupportedError(
                "adverbs in scalar context are not translated to SQL"
            )
        raise QNotSupportedError(
            f"cannot bind application of {ast.node_name(node.func)} in SQL"
        )

    def _as_table_aggregate(self, node: ast.Node):
        """Recognize ``agg <table expr>`` (UnOp or juxtaposed Apply)."""
        if isinstance(node, ast.Apply) and isinstance(node.func, ast.Name):
            name = node.func.name
            args = [a for a in node.args if a is not None]
            if name in _AGGREGATE_NAMES and len(args) == 1:
                operand = args[0]
                if _is_table_shaped(operand) or self._names_a_table(operand):
                    return name, operand
        return None

    def _names_a_table(self, node: ast.Node) -> bool:
        if not isinstance(node, ast.Name):
            return False
        definition = self.scope.lookup(node.name)
        if definition is not None:
            from repro.core.scopes import VarKind as _VK

            return definition.kind in (_VK.TABLE, _VK.VIEW)
        return self.mdi.lookup_table(node.name) is not None

    def _bind_aggregate(self, name: str, operand: ast.Node, ctx) -> sc.Scalar:
        if ctx is None:
            raise QNotSupportedError(
                f"aggregate {name!r} outside a table context; aggregate "
                f"over a table expression directly (e.g. avg exec c from t)"
            )
        if name == "count":
            return sc.SAgg("count", None, type_=SqlType.BIGINT)
        arg = self.bind_scalar(operand, ctx)
        sql_name, result_type = _AGGREGATE_NAMES[name]
        if name == "wavg" or name == "wsum":
            raise QRankError(f"{name} is dyadic")
        return sc.SAgg(sql_name, arg, type_=result_type or arg.sql_type)

    def _bind_uniform(self, op: str, operand: ast.Node, ctx) -> sc.Scalar:
        """Uniform verbs become window functions over the implicit order
        (paper Section 3.3: 'The Xformer may also generate implicit order
        columns by injecting window functions')."""
        if ctx is None or ctx.ordcol is None:
            raise QNotSupportedError(
                f"{op!r} requires an ordered table context"
            )
        arg = self.bind_scalar(operand, ctx)
        order = [(ctx.colref(ctx.ordcol), False)]
        if op in ("sums", "maxs", "mins"):
            name = {"sums": "sum", "maxs": "max", "mins": "min"}[op]
            return sc.SWindow(name, [arg], order_by=order, type_=arg.sql_type)
        if op == "prev":
            return sc.SWindow("lag", [arg], order_by=order, type_=arg.sql_type)
        if op == "next":
            return sc.SWindow("lead", [arg], order_by=order, type_=arg.sql_type)
        if op == "deltas":
            lag = sc.SWindow("lag", [arg], order_by=order, type_=arg.sql_type)
            return sc.SFunc(
                "coalesce", [_arith("-", arg, lag), arg], type_=arg.sql_type
            )
        if op == "ratios":
            lag = sc.SWindow("lag", [arg], order_by=order, type_=arg.sql_type)
            return _arith("%", arg, lag)
        if op == "differ":
            # x IS DISTINCT FROM lag(x), with the first row forced true
            lag = sc.SWindow("lag", [arg], order_by=order, type_=arg.sql_type)
            row_number = sc.SWindow(
                "row_number", [], order_by=order, type_=SqlType.BIGINT
            )
            return sc.SBool(
                "OR",
                [
                    sc.SCmp("<>", arg, lag, null_safe=True),
                    sc.SCmp("=", row_number, sc.SConst(1, SqlType.BIGINT)),
                ],
            )
        if op == "fills":
            raise QNotSupportedError(
                "fills needs a gap-filling subquery; outside the supported surface"
            )
        raise QNotSupportedError(f"uniform verb {op!r} is not translated")

    def _bind_moving(self, op: str, node: ast.BinOp, ctx) -> sc.Scalar:
        if ctx is None or ctx.ordcol is None:
            raise QNotSupportedError(f"{op!r} requires an ordered table context")
        window_size = _const_value(node.left)
        if not isinstance(window_size, QAtom) or not window_size.qtype.is_integral:
            raise QTypeError(f"{op} window size must be an integer literal")
        n = int(window_size.value)
        arg = self.bind_scalar(node.right, ctx)
        name = {
            "mavg": "avg",
            "msum": "sum",
            "mmax": "max",
            "mmin": "min",
            "mcount": "count",
        }[op]
        frame = f"rows between {n - 1} preceding and current row"
        result_type = SqlType.DOUBLE if op == "mavg" else (
            SqlType.BIGINT if op == "mcount" else arg.sql_type
        )
        return sc.SWindow(
            name,
            [arg],
            order_by=[(ctx.colref(ctx.ordcol), False)],
            frame=frame,
            type_=result_type,
        )

    def _bind_weighted(self, op: str, node: ast.BinOp, ctx) -> sc.Scalar:
        if ctx is None:
            raise QNotSupportedError(f"{op} requires a table context")
        weights = self.bind_scalar(node.left, ctx)
        values = self.bind_scalar(node.right, ctx)
        weighted = sc.SAgg(
            "sum", _arith("*", weights, values), type_=SqlType.DOUBLE
        )
        if op == "wsum":
            return weighted
        total = sc.SAgg("sum", weights, type_=SqlType.DOUBLE)
        return _arith("%", weighted, total)

    def _bind_xprev(self, node: ast.BinOp, ctx) -> sc.Scalar:
        if ctx is None or ctx.ordcol is None:
            raise QNotSupportedError("xprev requires an ordered table context")
        shift = _const_value(node.left)
        if not isinstance(shift, QAtom):
            raise QTypeError("xprev shift must be an integer literal")
        arg = self.bind_scalar(node.right, ctx)
        return sc.SWindow(
            "lag",
            [arg, sc.SConst(int(shift.value), SqlType.BIGINT)],
            order_by=[(ctx.colref(ctx.ordcol), False)],
            type_=arg.sql_type,
        )

    def _bind_cond(self, node: ast.Cond, ctx) -> sc.Scalar:
        branches: list[tuple[sc.Scalar, sc.Scalar]] = []
        i = 0
        items = node.branches
        while i + 1 < len(items):
            condition = self.bind_scalar(items[i], ctx)
            result = self.bind_scalar(items[i + 1], ctx)
            branches.append((condition, result))
            i += 2
        default = self.bind_scalar(items[i], ctx) if i < len(items) else None
        return sc.SCase(branches, default)

    def _bind_scalar_subquery(self, node: ast.Template) -> sc.Scalar:
        raise QNotSupportedError(
            "templates in scalar position require materialization; "
            "assign the result to a variable first"
        )


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _is_table_shaped(node: ast.Node) -> bool:
    if isinstance(node, (ast.Template, ast.TableExpr)):
        return True
    if isinstance(node, ast.Apply) and isinstance(node.func, ast.Name):
        return node.func.name in ("aj", "aj0", "ej")
    if isinstance(node, ast.BinOp) and node.op in (
        "lj", "ij", "uj", "xasc", "xdesc", "xkey",
    ):
        return True
    # n!table keying: an integer literal on the left of '!'
    if (
        isinstance(node, ast.BinOp)
        and node.op == "!"
        and isinstance(node.left, ast.Literal)
        and isinstance(node.left.value, QAtom)
        and node.left.value.qtype.is_integral
    ):
        return True
    return False


def _get_from_meta(meta: TableMeta, relation: str) -> XtraGet:
    columns = [
        XtraColumn(
            c.name,
            c.sql_type,
            nullable=True,
            implicit=(c.name == meta.ordcol),
        )
        for c in meta.columns
    ]
    return XtraGet(relation, columns, ordcol=meta.ordcol, keys=list(meta.keys))


def _arith(op: str, left: sc.Scalar, right: sc.Scalar) -> sc.SArith:
    if op == "%":
        result = SqlType.DOUBLE
    else:
        result = _promote_safe(left, right)
    return sc.SArith(op, left, right, type_=result)


def _promote_safe(left: sc.Scalar, right: sc.Scalar) -> SqlType:
    try:
        return promote(left.sql_type, right.sql_type)
    except Exception:
        return left.sql_type if left.sql_type != SqlType.NULL else right.sql_type


def _const_value(node: ast.Node) -> QValue | None:
    """Extract a literal QValue from an AST node, if it is one."""
    if isinstance(node, ast.Literal):
        return node.value
    return None


def _symbol_names(value: QValue | None, verb: str) -> list[str]:
    if isinstance(value, QAtom) and value.qtype == QType.SYMBOL:
        return [value.value]
    if isinstance(value, QVector) and value.qtype == QType.SYMBOL:
        return list(value.items)
    raise QTypeError(f"{verb} expects literal symbol column names")


def _atom_to_sql(atom: QAtom) -> tuple[object, SqlType]:
    mapping = {
        QType.BOOLEAN: SqlType.BOOLEAN,
        QType.BYTE: SqlType.SMALLINT,
        QType.SHORT: SqlType.SMALLINT,
        QType.INT: SqlType.INTEGER,
        QType.LONG: SqlType.BIGINT,
        QType.REAL: SqlType.REAL,
        QType.FLOAT: SqlType.DOUBLE,
        QType.CHAR: SqlType.CHAR,
        QType.SYMBOL: SqlType.VARCHAR,
        QType.TIMESTAMP: SqlType.TIMESTAMP,
        QType.MONTH: SqlType.DATE,
        QType.DATE: SqlType.DATE,
        QType.DATETIME: SqlType.TIMESTAMP,
        QType.TIMESPAN: SqlType.INTERVAL,
        QType.MINUTE: SqlType.TIME,
        QType.SECOND: SqlType.TIME,
        QType.TIME: SqlType.TIME,
    }
    sql_type = mapping[atom.qtype]
    if atom.is_null:
        return None, sql_type
    value = atom.value
    if atom.qtype == QType.MINUTE:
        value = atom.value * 60_000  # minutes -> millis for TIME
    elif atom.qtype == QType.SECOND:
        value = atom.value * 1_000
    return value, sql_type


def _qvalue_to_const_list(value: QValue) -> list[sc.SConst]:
    if isinstance(value, QAtom):
        raw, sql_type = _atom_to_sql(value)
        return [sc.SConst(raw, sql_type)]
    if isinstance(value, QVector):
        out = []
        for raw in value.items:
            atom = QAtom(value.qtype, raw)
            payload, sql_type = _atom_to_sql(atom)
            out.append(sc.SConst(payload, sql_type))
        return out
    if isinstance(value, QList):
        out = []
        for item in value.items:
            if not isinstance(item, QAtom):
                raise QTypeError("nested lists are not valid 'in' operands")
            payload, sql_type = _atom_to_sql(item)
            out.append(sc.SConst(payload, sql_type))
        return out
    raise QTypeError("expected a literal list")


def _qvalue_to_sql_column(value: QValue) -> tuple[list, SqlType]:
    if isinstance(value, QAtom):
        raw, sql_type = _atom_to_sql(value)
        return [raw], sql_type
    if isinstance(value, QVector):
        if value.qtype == QType.CHAR:
            return ["".join(value.items)], SqlType.TEXT
        raws = []
        sql_type = SqlType.NULL
        for raw in value.items:
            payload, sql_type = _atom_to_sql(QAtom(value.qtype, raw))
            raws.append(payload)
        return raws, sql_type
    raise QTypeError("table literal columns must be atoms or typed vectors")


#: monadic Q keyword -> Scalar builder
_MONADIC_BINDINGS = {
    "neg": lambda a: sc.SArith(
        "-", sc.SConst(0, SqlType.BIGINT), a, type_=a.sql_type
    ),
    "-": lambda a: sc.SArith(
        "-", sc.SConst(0, SqlType.BIGINT), a, type_=a.sql_type
    ),
    "abs": lambda a: sc.SFunc("abs", [a], type_=a.sql_type),
    "sqrt": lambda a: sc.SFunc("sqrt", [a], type_=SqlType.DOUBLE),
    "exp": lambda a: sc.SFunc("exp", [a], type_=SqlType.DOUBLE),
    "log": lambda a: sc.SFunc("ln", [a], type_=SqlType.DOUBLE),
    "floor": lambda a: sc.SFunc("floor", [a], type_=SqlType.BIGINT),
    "ceiling": lambda a: sc.SFunc("ceiling", [a], type_=SqlType.BIGINT),
    "signum": lambda a: sc.SFunc("sign", [a], type_=SqlType.INTEGER),
    "not": lambda a: sc.SBool("NOT", [a]),
    "null": lambda a: sc.SIsNull(a),
    "lower": lambda a: sc.SFunc("lower", [a], type_=SqlType.TEXT),
    "upper": lambda a: sc.SFunc("upper", [a], type_=SqlType.TEXT),
    "reciprocal": lambda a: sc.SArith(
        "%", sc.SConst(1.0, SqlType.DOUBLE), a, type_=SqlType.DOUBLE
    ),
}

#: Q aggregate keyword -> (SQL aggregate, forced result type or None)
_AGGREGATE_NAMES = {
    "sum": ("sum", None),
    "avg": ("avg", SqlType.DOUBLE),
    "min": ("min", None),
    "max": ("max", None),
    "med": ("median", SqlType.DOUBLE),
    "dev": ("stddev_pop", SqlType.DOUBLE),
    "var": ("var_pop", SqlType.DOUBLE),
    "count": ("count", SqlType.BIGINT),
    "first": ("first", None),
    "last": ("last", None),
}

_UNIFORM_WINDOW_VERBS = {
    "sums", "maxs", "mins", "deltas", "ratios", "prev", "next", "fills",
    "differ",
}
