"""Eager materialization of Q variable assignments (paper Section 4.3).

A Q assignment may need to be *physically executed* before later
statements can be algebrized: ``dt: select ...`` inside a function must
exist (at least logically) before ``select max Price from dt`` binds.

Two strategies, as in the paper:

* **logical** — scalars stay in Hyper-Q's variable store; table
  expressions become backend views;
* **physical** — table expressions become temporary tables
  (``CREATE TEMPORARY TABLE hq_temp_1 AS ... ORDER BY ordcol``), which is
  required for correctness when definitions must be snapshotted.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.config import HyperQConfig, MaterializationMode
from repro.core.algebrizer.binder import BoundTable
from repro.core.metadata import ColumnMeta, MetadataInterface, TableMeta
from repro.core.scopes import Scope, VarKind, VariableDef
from repro.core.serializer import Serializer, quote_ident
from repro.obs import metrics

#: materialization decisions, labelled kind=temp_table|view (physical vs
#: logical, Section 4.3) — the ablation benches read this split
MATERIALIZATIONS = metrics.counter(
    "hyperq_materializations_total",
    "Q assignments materialized in the backend",
)


@dataclass
class MaterializationStep:
    """One DDL statement the materializer wants executed."""

    sql: str
    relation: str
    kind: str  # 'temp_table' | 'view'
    #: the defining SELECT inside the DDL — the temp-data tier runs it
    #: directly to snapshot the assignment without the backend write
    inner_sql: str = ""
    #: catalog description of the relation the DDL would create
    meta: TableMeta | None = None


class Materializer:
    """Turns bound assignments into backend objects + scope entries."""

    def __init__(
        self,
        mdi: MetadataInterface,
        config: HyperQConfig,
        serializer: Serializer,
    ):
        # the serializer comes from the session's pipeline (layering rule
        # HQ001: only repro/core/pipeline.py constructs Serializer)
        self.mdi = mdi
        self.config = config
        self.serializer = serializer
        self._temp_counter = itertools.count(1)
        self._view_counter = itertools.count(1)

    def materialize_table(
        self,
        name: str,
        bound: BoundTable,
        scope: Scope,
        mode: MaterializationMode | None = None,
    ) -> MaterializationStep:
        """Produce the DDL for ``name: <table expr>`` and record the
        variable definition in ``scope``.  The caller executes the DDL
        (or not, in translate-only mode)."""
        mode = mode or self.config.materialization
        inner_sql = self.serializer.serialize(bound.op)
        if mode == MaterializationMode.PHYSICAL:
            relation = f"{self.config.temp_table_prefix}{next(self._temp_counter)}"
            sql = (
                f"CREATE TEMPORARY TABLE {quote_ident(relation)} AS {inner_sql}"
            )
            kind = "temp_table"
            var_kind = VarKind.TABLE
        else:
            relation = f"{self.config.view_prefix}{next(self._view_counter)}"
            sql = f"CREATE OR REPLACE VIEW {quote_ident(relation)} AS {inner_sql}"
            kind = "view"
            var_kind = VarKind.VIEW
        meta = self._meta_from_bound(relation, bound)
        scope.upsert(
            VariableDef(
                name, var_kind, relation=relation, meta=meta,
            )
        )
        MATERIALIZATIONS.inc(kind=kind)
        return MaterializationStep(sql, relation, kind, inner_sql, meta)

    def store_scalar(self, name: str, value, scope: Scope) -> None:
        """Logical materialization of a scalar: the variable store."""
        scope.upsert(VariableDef(name, VarKind.SCALAR, value=value))

    def store_function(self, name: str, source: str, scope: Scope) -> None:
        """Functions are stored as plain text and re-algebrized on each
        invocation (paper Section 4.3)."""
        scope.upsert(VariableDef(name, VarKind.FUNCTION, source=source))

    @staticmethod
    def _meta_from_bound(relation: str, bound: BoundTable) -> TableMeta:
        columns = [
            ColumnMeta(c.name, c.sql_type, c.sql_type.value)
            for c in bound.op.columns
        ]
        ordcol = bound.op.order_column
        if ordcol is not None and not any(c.name == ordcol for c in columns):
            ordcol = None
        return TableMeta(
            relation, columns, keys=list(bound.keys), ordcol=ordcol,
            schema="pg_temp",
        )
