"""Reproduction of "Datometry Hyper-Q: Bridging the Gap Between Real-Time
and Historical Analytics" (Antova et al., SIGMOD 2016).

Public API surface:

* :class:`repro.core.platform.HyperQ` — the in-process platform facade
* :class:`repro.core.session.HyperQSession` — per-client query life cycle
* :class:`repro.server.hyperq_server.HyperQServer` — the QIPC deployment
* :class:`repro.qlang.interp.Interpreter` — the reference Q interpreter
* :class:`repro.sqlengine.engine.Engine` — the PG-compatible backend
* :class:`repro.testing.sidebyside.SideBySideHarness` — the QA framework

See README.md for a tour and DESIGN.md for the system inventory.
"""

from repro.config import (
    CacheInvalidation,
    HyperQConfig,
    MaterializationMode,
    MetadataCacheConfig,
    XformerConfig,
)
from repro.errors import (
    QError,
    QNotSupportedError,
    QSyntaxError,
    ReproError,
    SqlError,
    TranslationError,
)

__version__ = "1.0.0"

__all__ = [
    "CacheInvalidation",
    "HyperQConfig",
    "MaterializationMode",
    "MetadataCacheConfig",
    "QError",
    "QNotSupportedError",
    "QSyntaxError",
    "ReproError",
    "SqlError",
    "TranslationError",
    "XformerConfig",
    "__version__",
]
