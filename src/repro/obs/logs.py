"""Structured logging helpers.

A thin layer over the stdlib ``logging`` module that renders each record
as a single JSON object (``{"event": ..., "logger": ..., **fields}``), so
server logs stay machine-parseable next to the metrics snapshots.  No
handlers are installed by default — embedding applications keep control
of routing — but :func:`basic_config` wires a stderr handler for the
examples and ad-hoc runs.
"""

from __future__ import annotations

import json
import logging

from repro.analysis.concurrency.locks import make_lock

_ROOT_NAME = "repro"
_loggers: dict[str, "StructuredLogger"] = {}
_loggers_lock = make_lock("obs.loggers")


class StructuredLogger:
    """Emits JSON-line events through a stdlib logger."""

    def __init__(self, logger: logging.Logger):
        self._logger = logger

    @property
    def name(self) -> str:
        return self._logger.name

    def _emit(self, level: int, event: str, fields: dict) -> None:
        if not self._logger.isEnabledFor(level):
            return
        record = {"event": event, "logger": self._logger.name}
        record.update(fields)
        self._logger.log(level, json.dumps(record, default=str, sort_keys=True))

    def debug(self, event: str, **fields) -> None:
        self._emit(logging.DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        self._emit(logging.INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        self._emit(logging.WARNING, event, fields)

    def error(self, event: str, **fields) -> None:
        self._emit(logging.ERROR, event, fields)


def get_logger(name: str) -> StructuredLogger:
    """Structured logger under the ``repro`` namespace (cached)."""
    full = name if name.startswith(_ROOT_NAME) else f"{_ROOT_NAME}.{name}"
    with _loggers_lock:
        logger = _loggers.get(full)
        if logger is None:
            logger = _loggers[full] = StructuredLogger(logging.getLogger(full))
        return logger


def basic_config(level: int = logging.INFO) -> None:
    """Attach a plain stderr handler to the ``repro`` logger tree."""
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        root.addHandler(handler)
