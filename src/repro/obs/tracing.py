"""Lightweight span tracing for the Figure-1 pipeline.

``tracer.span("bind")`` context managers nest: a span opened while
another is active on the same thread becomes its child, so one
``hyperq.run`` root span carries the whole parse/bind/xform/serialize
breakdown the paper's Figure 7 charts.  Each span records wall time via
``time.perf_counter()``; completed root spans are retained in a bounded
ring buffer for inspection (``tracer.traces()`` / ``last_trace()``).

The session derives :class:`~repro.core.crosscompiler.StageTimings` from
these spans, so a *disabled* tracer still times each span (the timings
are part of the public API and of the baseline behaviour) — it just
skips building the tree and retaining anything, which makes the
disabled cost identical to the seed's bare ``perf_counter`` pairs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.analysis.concurrency.locks import make_lock


@dataclass
class Span:
    """One timed region; ``duration`` is wall-clock seconds."""

    name: str
    start: float = 0.0
    end: float = 0.0
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def child_total(self, name: str | None = None) -> float:
        """Summed duration of (optionally name-filtered) direct children."""
        return sum(
            child.duration
            for child in self.children
            if name is None or child.name == name
        )

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (including self) with the given name."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_s": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """Per-thread span stacks over a shared ring of finished traces."""

    def __init__(self, enabled: bool = True, max_traces: int = 64):
        self.enabled = enabled
        self.max_traces = max_traces
        self._local = threading.local()
        self._lock = make_lock("obs.tracer")
        self._finished: deque[Span] = deque(maxlen=max_traces)

    # -- lifecycle ----------------------------------------------------------

    def set_enabled(self, enabled: bool) -> None:
        self.enabled = enabled

    def enable(self) -> None:
        self.set_enabled(True)

    def disable(self) -> None:
        self.set_enabled(False)

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()

    # -- span API -----------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a timed span; nests under the current span if any.

        Always yields a :class:`Span` whose ``duration`` is valid after
        the block exits — even when tracing is disabled (the span is then
        detached: no parent, no retention).
        """
        current = Span(name, attrs=dict(attrs))
        recording = self.enabled
        if recording:
            stack = self._stack()
            if stack:
                stack[-1].children.append(current)
            stack.append(current)
        current.start = time.perf_counter()
        try:
            yield current
        finally:
            current.end = time.perf_counter()
            if recording:
                stack = self._stack()
                if stack and stack[-1] is current:
                    stack.pop()
                if not stack:
                    with self._lock:
                        self._finished.append(current)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- inspection ---------------------------------------------------------

    def traces(self) -> list[Span]:
        """Finished root spans, oldest first (bounded ring)."""
        with self._lock:
            return list(self._finished)

    def last_trace(self) -> Span | None:
        with self._lock:
            return self._finished[-1] if self._finished else None


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer the pipeline reports to."""
    return _tracer


def span(name: str, **attrs):
    """Open a span on the process-wide tracer (context manager)."""
    return _tracer.span(name, **attrs)
