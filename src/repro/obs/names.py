"""Central registry of metric family names.

Every family name passed to :func:`repro.obs.metrics.counter` / ``gauge`` /
``histogram`` anywhere under ``src/`` must be declared here.  The lint rule
HQ003 (``scripts/lint_rules/layering.py``) enforces the invariant, which
turns metric-name typos — the classic "dashboard silently shows zero"
failure — into lint errors.

Grouped by subsystem; each constant's value is the Prometheus-style family
name exactly as it appears at the declaration site.
"""

from __future__ import annotations

# --- servers (QIPC endpoint + PG wire server share the family names) ----
SERVER_ACTIVE_SESSIONS = "server_active_sessions"
SERVER_QUERIES_TOTAL = "server_queries_total"
SERVER_ERRORS_TOTAL = "server_errors_total"
SERVER_QUERY_SECONDS = "server_query_seconds"
HYPERQ_ACTIVE_QUERIES = "hyperq_active_queries"

# --- event-loop connection core (repro/server/reactor) ------------------
SERVER_CONNECTIONS_OPEN = "server_connections_open"
SERVER_LOOP_LAG_MS = "server_loop_lag_ms"
SERVER_WORKER_QUEUE_DEPTH = "server_worker_queue_depth"

# --- wire protocols -----------------------------------------------------
QIPC_BYTES_TOTAL = "qipc_bytes_total"
QIPC_MESSAGES_TOTAL = "qipc_messages_total"
QIPC_COMPRESSION_RATIO = "qipc_compression_ratio"
PGWIRE_BYTES_TOTAL = "pgwire_bytes_total"
PGWIRE_MESSAGES_TOTAL = "pgwire_messages_total"

# --- session + translation pipeline -------------------------------------
HYPERQ_RUNS_TOTAL = "hyperq_runs_total"
HYPERQ_STAGE_SECONDS = "hyperq_stage_seconds"
TRANSLATION_CACHE_HITS_TOTAL = "hyperq_translation_cache_hits_total"
TRANSLATION_CACHE_MISSES_TOTAL = "hyperq_translation_cache_misses_total"
TRANSLATION_CACHE_EVICTIONS_TOTAL = "hyperq_translation_cache_evictions_total"
TRANSLATION_CACHE_ENTRIES = "hyperq_translation_cache_entries"
HYPERQ_MATERIALIZATIONS_TOTAL = "hyperq_materializations_total"

# --- metadata interface cache -------------------------------------------
MDI_CACHE_LOOKUPS_TOTAL = "mdi_cache_lookups_total"
MDI_CACHE_HITS_TOTAL = "mdi_cache_hits_total"
MDI_CACHE_MISSES_TOTAL = "mdi_cache_misses_total"
MDI_CACHE_INVALIDATIONS_TOTAL = "mdi_cache_invalidations_total"

# --- backend connection pool --------------------------------------------
BACKEND_POOL_CONNECTIONS = "backend_pool_connections"
BACKEND_POOL_IN_USE = "backend_pool_in_use"
BACKEND_POOL_CHECKOUT_TIMEOUTS_TOTAL = "backend_pool_checkout_timeouts_total"
BACKEND_POOL_REPLACEMENTS_TOTAL = "backend_pool_replacements_total"
BACKEND_POOL_CHECKOUT_SECONDS = "backend_pool_checkout_seconds"

# --- static analysis -----------------------------------------------------
ANALYSIS_FINDINGS_TOTAL = "analysis_findings_total"
ANALYSIS_INVARIANT_VIOLATIONS_TOTAL = "analysis_invariant_violations_total"

# --- concurrency lockcheck harness (repro/analysis/concurrency/locks) ----
CONCURRENCY_LOCK_ACQUISITIONS = "concurrency_lock_acquisitions"
CONCURRENCY_LOCK_ORDER_EDGES = "concurrency_lock_order_edges"
CONCURRENCY_LOCK_CYCLES = "concurrency_lock_cycles"
CONCURRENCY_REACTOR_LONG_HOLDS = "concurrency_reactor_long_holds"

# --- workload management & resilience (repro/wlm, docs/WLM.md) ----------
WLM_CLASSIFIED_TOTAL = "wlm_classified_total"
WLM_ADMITTED_TOTAL = "wlm_admitted_total"
WLM_SHED_TOTAL = "wlm_shed_total"
WLM_ACTIVE_QUERIES = "wlm_active_queries"
WLM_QUEUE_DEPTH = "wlm_queue_depth"
WLM_QUEUED_SECONDS = "wlm_queued_seconds"
WLM_DEADLINE_EXCEEDED_TOTAL = "wlm_deadline_exceeded_total"
WLM_RETRIES_TOTAL = "wlm_retries_total"
WLM_RETRY_GIVEUPS_TOTAL = "wlm_retry_giveups_total"
WLM_BREAKER_STATE = "wlm_breaker_state"
WLM_BREAKER_TRANSITIONS_TOTAL = "wlm_breaker_transitions_total"
WLM_BREAKER_REJECTIONS_TOTAL = "wlm_breaker_rejections_total"
WLM_FAULTS_INJECTED_TOTAL = "wlm_faults_injected_total"

# --- semantic result cache + temp-data tier (repro/cache) ---------------
RCACHE_LOOKUPS_TOTAL = "rcache_lookups_total"
RCACHE_HITS_TOTAL = "rcache_hits_total"
RCACHE_MISSES_TOTAL = "rcache_misses_total"
RCACHE_EVICTIONS_TOTAL = "rcache_evictions_total"
RCACHE_INVALIDATIONS_TOTAL = "rcache_invalidations_total"
RCACHE_COALESCED_TOTAL = "rcache_coalesced_total"
RCACHE_BYPASS_TOTAL = "rcache_bypass_total"
RCACHE_SKIPPED_CHEAP_TOTAL = "rcache_skipped_cheap_total"
RCACHE_BYTES = "rcache_bytes"
RCACHE_ENTRIES = "rcache_entries"
TEMPTIER_HANDLES = "temptier_handles"
TEMPTIER_SERVED_TOTAL = "temptier_served_total"
TEMPTIER_FALLBACKS_TOTAL = "temptier_fallbacks_total"
TEMPTIER_MAP_BUILDS_TOTAL = "temptier_map_builds_total"
TEMPTIER_BLOCKS_PRUNED_TOTAL = "temptier_blocks_pruned_total"

# --- sharded scatter-gather execution (repro/core/sharded) --------------
SHARD_PLANS_TOTAL = "shard_plans_total"
SHARD_FANOUT_TOTAL = "shard_fanout_total"
SHARD_QUERIES_TOTAL = "shard_queries_total"
SHARD_ERRORS_TOTAL = "shard_errors_total"
SHARD_LATENCY_SECONDS = "shard_latency_seconds"
SHARD_HEDGES_TOTAL = "shard_hedges_total"
SHARD_MERGE_ROWS_TOTAL = "shard_merge_rows_total"
SHARD_MIRROR_TOTAL = "shard_mirror_total"

# --- process shard workers (repro/core/procshard) -----------------------
SHARD_PROC_SPAWNS_TOTAL = "shard_proc_spawns_total"
SHARD_PROC_RESTARTS_TOTAL = "shard_proc_restarts_total"

#: every declared family name, for HQ003's membership check
ALL_METRIC_NAMES = frozenset(
    value for key, value in vars().items()
    if key.isupper() and isinstance(value, str)
)
