"""Observability substrate: metrics, pipeline tracing, structured logs.

The paper's evaluation (Section 6, Figures 6-7) is an exercise in
*measuring* Hyper-Q — per-stage translation overhead and where time goes.
This package is the production-grade version of that instinct: a
dependency-free, process-wide metrics registry (counters, gauges,
histograms with labels), a lightweight span tracer that mirrors the
Figure-1 pipeline (parse -> bind -> xform -> serialize), and structured
logging helpers.  Every subsystem — cross compiler, metadata interface,
materializer, QIPC and PG-wire codecs, servers — reports through it.

Both the registry and the tracer are cheap enough to stay on in
production and can be disabled through
:class:`repro.config.ObservabilityConfig` (a disabled registry is a
no-op; a disabled tracer still times spans — stage timings are part of
the public API — but records nothing).
"""

from __future__ import annotations

from repro.obs.logs import StructuredLogger, get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
)
from repro.obs.tracing import Span, Tracer, get_tracer, span

__all__ = [
    "MetricsRegistry",
    "Span",
    "StructuredLogger",
    "Tracer",
    "configure",
    "counter",
    "gauge",
    "get_logger",
    "get_registry",
    "get_tracer",
    "histogram",
    "span",
]


def configure(config) -> None:
    """Apply an :class:`~repro.config.ObservabilityConfig` to the
    process-wide registry and tracer.

    Sessions and servers call this with their ``HyperQConfig.observability``
    so that a single config object controls the whole deployment.  The
    registry/tracer are process-global (like the paper's single Hyper-Q
    instance per backend), so the last configuration applied wins.
    """
    get_registry().set_enabled(bool(config.metrics_enabled))
    get_tracer().set_enabled(bool(config.tracing_enabled))
