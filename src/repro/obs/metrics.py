"""A process-wide metrics registry (counters, gauges, histograms).

Prometheus-shaped but dependency-free: instruments are created once
(get-or-create by name), carry free-form labels per sample, and the
registry renders a point-in-time ``snapshot()`` (nested dict), a
``flat()`` mapping (``name{label=value}`` -> float, which the Hyper-Q
server exposes as a Q dict through the ``metrics[]`` admin command), and
``to_json()`` for the benchmark artifacts CI uploads.

Hot-path cost matters — the acceptance bar for this subsystem is <5%
overhead on the Figure-6 translation workload — so updates are a dict
write under a per-instrument lock, and a disabled registry turns every
update into a single attribute check.
"""

from __future__ import annotations

import json
import time

from repro.analysis.concurrency.annotations import thread_safe
from repro.analysis.concurrency.locks import make_lock

#: default histogram buckets, in seconds — spans translation stages
#: (tens of microseconds) up to slow end-to-end queries
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def format_sample_name(name: str, labels: dict) -> str:
    """Render ``name{k=v,...}`` the way the flat export names a sample."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Instrument:
    """Base class: a named metric with labelled sample series."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        self.registry = registry
        self.name = name
        self.help = help
        self._lock = make_lock("obs.instrument")
        self._series: dict[tuple, float] = {}

    def value(self, **labels) -> float:
        """Current value of one labelled series (0.0 if never touched)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def samples(self) -> list[dict]:
        with self._lock:
            return [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ]

    def flat_samples(self) -> dict[str, float]:
        with self._lock:
            return {
                format_sample_name(self.name, dict(key)): value
                for key, value in sorted(self._series.items())
            }

    def reset(self) -> None:
        with self._lock:
            self._series.clear()


@thread_safe("per-series dict update under a leaf micro-lock; no call-outs")
class Counter(Instrument):
    """Monotonically increasing count (events, bytes, errors)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self.registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount


@thread_safe("per-series dict update under a leaf micro-lock; no call-outs")
class Gauge(Instrument):
    """A value that goes up and down (active sessions, cache size)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        if not self.registry.enabled:
            return
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)


class _HistogramSeries:
    __slots__ = ("count", "total", "minimum", "maximum", "bucket_counts")

    def __init__(self, n_buckets: int):
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for +Inf


@thread_safe("bounded bucket update under a leaf micro-lock; no call-outs")
class Histogram(Instrument):
    """Distribution of observations (latencies, sizes, ratios)."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str = "",
        buckets: tuple = DEFAULT_BUCKETS,
    ):
        super().__init__(registry, name, help)
        self.buckets = tuple(sorted(buckets))
        self._series: dict[tuple, _HistogramSeries] = {}

    def observe(self, value: float, **labels) -> None:
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.count += 1
            series.total += value
            series.minimum = min(series.minimum, value)
            series.maximum = max(series.maximum, value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[i] += 1
                    break
            else:
                series.bucket_counts[-1] += 1

    def time(self, **labels):
        """Context manager observing the wall-clock time of its body.

        Used on short waits we want distributions for (pool checkout,
        cache stampedes) without hand-rolling perf_counter bookkeeping.
        """
        return _HistogramTimer(self, labels)

    def value(self, **labels) -> float:
        """For histograms, ``value`` is the observation count."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return float(series.count) if series is not None else 0.0

    def mean(self, **labels) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return 0.0
            return series.total / series.count

    def samples(self) -> list[dict]:
        with self._lock:
            out = []
            for key, series in sorted(self._series.items()):
                cumulative = 0
                bucket_map = {}
                for bound, count in zip(self.buckets, series.bucket_counts):
                    cumulative += count
                    bucket_map[f"le_{bound:g}"] = cumulative
                bucket_map["le_inf"] = series.count
                out.append(
                    {
                        "labels": dict(key),
                        "count": series.count,
                        "sum": series.total,
                        "min": series.minimum if series.count else 0.0,
                        "max": series.maximum if series.count else 0.0,
                        "buckets": bucket_map,
                    }
                )
            return out

    def flat_samples(self) -> dict[str, float]:
        with self._lock:
            out: dict[str, float] = {}
            for key, series in sorted(self._series.items()):
                labels = dict(key)
                out[format_sample_name(f"{self.name}_count", labels)] = float(
                    series.count
                )
                out[format_sample_name(f"{self.name}_sum", labels)] = (
                    series.total
                )
            return out


class _HistogramTimer:
    """Times a ``with`` body into a histogram (see :meth:`Histogram.time`)."""

    __slots__ = ("_histogram", "_labels", "_start")

    def __init__(self, histogram: Histogram, labels: dict):
        self._histogram = histogram
        self._labels = labels

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        self._histogram.observe(
            time.perf_counter() - self._start, **self._labels
        )
        return False


class MetricsRegistry:
    """Get-or-create instrument store with snapshot/export.

    One process-wide instance backs the module-level :func:`counter`,
    :func:`gauge` and :func:`histogram` helpers; isolated instances are
    handy in tests.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = make_lock("obs.metrics_registry")
        self._instruments: dict[str, Instrument] = {}

    # -- lifecycle ----------------------------------------------------------

    def set_enabled(self, enabled: bool) -> None:
        self.enabled = enabled

    def enable(self) -> None:
        self.set_enabled(True)

    def disable(self) -> None:
        self.set_enabled(False)

    def reset(self) -> None:
        """Zero every series (instruments stay registered)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()

    # -- instrument creation ------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            instrument = cls(self, name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Nested point-in-time view: name -> kind/help/samples."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {
            name: {
                "kind": instrument.kind,
                "help": instrument.help,
                "samples": instrument.samples(),
            }
            for name, instrument in instruments
        }

    def flat(self) -> dict[str, float]:
        """Flat ``name{label=value}`` -> float view (the Q-dict export)."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        out: dict[str, float] = {}
        for __, instrument in instruments:
            out.update(instrument.flat_samples())
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every subsystem reports to."""
    return _registry


def counter(name: str, help: str = "") -> Counter:
    return _registry.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    return _registry.gauge(name, help)


def histogram(
    name: str, help: str = "", buckets: tuple = DEFAULT_BUCKETS
) -> Histogram:
    return _registry.histogram(name, help, buckets=buckets)
