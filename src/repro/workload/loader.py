"""Load Q tables into the backend engine and the reference interpreter.

The paper assumes "all relevant data is loaded into the underlying systems
independently" (Section 1); this module is that independent loading path.
Each Q table lands in the SQL engine with an extra ``ordcol`` column
(0-based row number) carrying the implicit Q ordering, per the paper's
generated-SQL example.
"""

from __future__ import annotations

from repro.errors import QTypeError
from repro.qlang.interp import Interpreter
from repro.qlang.qtypes import QType
from repro.qlang.values import QKeyedTable, QTable, QVector
from repro.sqlengine.catalog import Column
from repro.sqlengine.engine import Engine
from repro.sqlengine.types import SqlType

_QTYPE_TO_SQL = {
    QType.BOOLEAN: SqlType.BOOLEAN,
    QType.BYTE: SqlType.SMALLINT,
    QType.SHORT: SqlType.SMALLINT,
    QType.INT: SqlType.INTEGER,
    QType.LONG: SqlType.BIGINT,
    QType.REAL: SqlType.REAL,
    QType.FLOAT: SqlType.DOUBLE,
    QType.CHAR: SqlType.CHAR,
    QType.SYMBOL: SqlType.VARCHAR,
    QType.TIMESTAMP: SqlType.TIMESTAMP,
    QType.MONTH: SqlType.DATE,
    QType.DATE: SqlType.DATE,
    QType.DATETIME: SqlType.TIMESTAMP,
    QType.TIMESPAN: SqlType.INTERVAL,
    QType.MINUTE: SqlType.TIME,
    QType.SECOND: SqlType.TIME,
    QType.TIME: SqlType.TIME,
}

_TIME_SCALE = {QType.MINUTE: 60_000, QType.SECOND: 1_000}


def qtable_to_columns(
    table: QTable | QKeyedTable,
) -> tuple[list[str], list[Column], list[list]]:
    """Convert a Q table to SQL (keys, columns, rows), adding ``ordcol``.

    The implicit order column is assigned here — *before* any partition
    split — so sharded loads carry globally unique row numbers and an
    ordered merge reconstructs exactly the single-node row order.
    """
    keys: list[str] = []
    if isinstance(table, QKeyedTable):
        keys = table.key_columns
        table = table.unkey()
    if not isinstance(table, QTable):
        raise QTypeError("load_table expects a Q table")

    columns: list[Column] = []
    raw_columns: list[list] = []
    for col_name, col in zip(table.columns, table.data):
        if not isinstance(col, QVector):
            raise QTypeError(
                f"column {col_name!r} is a general list; only typed vectors load"
            )
        sql_type = _QTYPE_TO_SQL[col.qtype]
        columns.append(Column(col_name, sql_type))
        scale = _TIME_SCALE.get(col.qtype, 1)
        values = []
        for raw in col.items:
            if col.qtype.is_null(raw):
                values.append(None)
            elif isinstance(raw, float) and raw != raw:
                values.append(None)
            else:
                values.append(raw * scale if scale != 1 else raw)
        raw_columns.append(values)

    columns.append(Column("ordcol", SqlType.BIGINT))
    row_count = len(table)
    rows = [
        [raw_columns[c][i] for c in range(len(raw_columns))] + [i]
        for i in range(row_count)
    ]
    return keys, columns, rows


def load_table(
    engine: Engine,
    name: str,
    table: QTable | QKeyedTable,
    mdi=None,
) -> None:
    """Create ``name`` in the engine from a Q table, adding ``ordcol``.

    When ``mdi`` is given and the table is keyed, the key columns are
    annotated in the metadata interface (PG has no keyed-table notion).
    """
    keys, columns, rows = qtable_to_columns(table)
    if engine.catalog.exists(name):
        engine.catalog.drop(name)
    engine.create_table_from_columns(name, columns, rows)
    if mdi is not None:
        if keys:
            mdi.annotate_keys(name, keys)
        else:
            mdi.invalidate(name)


def load_q_source(
    engine: Engine,
    interpreter: Interpreter,
    source: str,
    tables: list[str],
    mdi=None,
) -> None:
    """Evaluate Q table definitions on the reference interpreter, then
    load the named globals into the SQL engine — the standard setup for
    side-by-side tests."""
    interpreter.eval_text(source)
    for name in tables:
        value = interpreter.get_global(name)
        if value is None:
            raise QTypeError(f"Q source did not define table {name!r}")
        if not isinstance(value, (QTable, QKeyedTable)):
            raise QTypeError(f"global {name!r} is not a table")
        load_table(engine, name, value, mdi=mdi)
