"""Synthetic NYSE TAQ-style market data (paper Section 2.1).

The paper's motivating data is the NYSE Trades and Quotes dataset; this
generator produces the same shape deterministically: per-symbol random-
walk quotes with bid/ask around a mid price, and trades sampled near the
prevailing quote.  Times are strictly increasing within a symbol so that
as-of joins are well-defined.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.qlang.lexer import days_from_2000
from repro.qlang.qtypes import QType
from repro.qlang.values import QTable, QVector

#: 09:30:00.000 and 16:00:00.000 in milliseconds since midnight
MARKET_OPEN_MS = (9 * 3600 + 30 * 60) * 1000
MARKET_CLOSE_MS = 16 * 3600 * 1000

DEFAULT_SYMBOLS = (
    "AAPL", "GOOG", "IBM", "MSFT", "ORCL", "INTC", "CSCO", "HPQ", "DELL",
    "AMZN", "EBAY", "YHOO", "JPM", "GS", "MS", "BAC", "C", "WFC", "XOM",
    "CVX",
)

EXCHANGES = ("N", "B", "P", "Q", "T")


@dataclass
class TaqConfig:
    n_symbols: int = 5
    quotes_per_symbol: int = 200
    trades_per_symbol: int = 50
    date: tuple[int, int, int] = (2016, 6, 26)
    seed: int = 20160626
    base_price: float = 50.0
    volatility: float = 0.02


@dataclass
class TaqData:
    trades: QTable
    quotes: QTable
    symbols: list[str] = field(default_factory=list)


def generate(config: TaqConfig | None = None) -> TaqData:
    """Generate a deterministic trades/quotes pair."""
    config = config or TaqConfig()
    rng = random.Random(config.seed)
    symbols = list(DEFAULT_SYMBOLS[: config.n_symbols])
    date_days = days_from_2000(*config.date)

    quote_rows: list[tuple] = []  # (sym, time_ms, bid, ask, bsize, asize, ex)
    trade_rows: list[tuple] = []  # (sym, time_ms, price, size, ex)

    for symbol in symbols:
        mid = config.base_price * (1 + rng.random())
        span = MARKET_CLOSE_MS - MARKET_OPEN_MS
        quote_times = sorted(
            rng.sample(range(MARKET_OPEN_MS, MARKET_CLOSE_MS),
                       config.quotes_per_symbol)
        )
        quotes_for_symbol = []
        for t in quote_times:
            mid *= 1 + rng.gauss(0, config.volatility / 10)
            spread = max(0.01, abs(rng.gauss(0.05, 0.02)))
            bid = round(mid - spread / 2, 2)
            ask = round(mid + spread / 2, 2)
            quotes_for_symbol.append(
                (symbol, t, bid, ask, rng.randint(1, 50) * 100,
                 rng.randint(1, 50) * 100, rng.choice(EXCHANGES))
            )
        quote_rows.extend(quotes_for_symbol)

        trade_times = sorted(
            rng.sample(range(MARKET_OPEN_MS + span // 50, MARKET_CLOSE_MS),
                       config.trades_per_symbol)
        )
        for t in trade_times:
            prevailing = _prevailing(quotes_for_symbol, t)
            if prevailing is None:
                price = round(mid, 2)
            else:
                __, __, bid, ask, *_ = prevailing
                price = round(rng.uniform(bid, ask), 2)
            trade_rows.append(
                (symbol, t, price, rng.randint(1, 100) * 100,
                 rng.choice(EXCHANGES))
            )

    quote_rows.sort(key=lambda r: (r[1], r[0]))
    trade_rows.sort(key=lambda r: (r[1], r[0]))

    quotes = QTable(
        ["Symbol", "Date", "Time", "Bid", "Ask", "BidSize", "AskSize", "Ex"],
        [
            QVector(QType.SYMBOL, [r[0] for r in quote_rows]),
            QVector(QType.DATE, [date_days] * len(quote_rows)),
            QVector(QType.TIME, [r[1] for r in quote_rows]),
            QVector(QType.FLOAT, [r[2] for r in quote_rows]),
            QVector(QType.FLOAT, [r[3] for r in quote_rows]),
            QVector(QType.LONG, [r[4] for r in quote_rows]),
            QVector(QType.LONG, [r[5] for r in quote_rows]),
            QVector(QType.SYMBOL, [r[6] for r in quote_rows]),
        ],
    )
    trades = QTable(
        ["Symbol", "Date", "Time", "Price", "Size", "Ex"],
        [
            QVector(QType.SYMBOL, [r[0] for r in trade_rows]),
            QVector(QType.DATE, [date_days] * len(trade_rows)),
            QVector(QType.TIME, [r[1] for r in trade_rows]),
            QVector(QType.FLOAT, [r[2] for r in trade_rows]),
            QVector(QType.LONG, [r[3] for r in trade_rows]),
            QVector(QType.SYMBOL, [r[4] for r in trade_rows]),
        ],
    )
    return TaqData(trades, quotes, symbols)


def _prevailing(quotes: list[tuple], t: int):
    """Latest quote at or before time t (None when the book is empty)."""
    best = None
    for quote in quotes:
        if quote[1] <= t:
            best = quote
        else:
            break
    return best
