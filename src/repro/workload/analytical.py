"""The Analytical Workload (paper Section 6).

    "All experiments are conducted on an Analytical Workload driven from
    customer use-cases.  The workload is representative of actual
    production settings and consists of 25 queries that involve three or
    more wide tables (e.g., tables with more than 500 columns), joins,
    and various kinds of analytical aggregate functions."

This module generates that workload synthetically: three wide tables
(positions: 600 columns, marks: 550, instruments: 520) and the 25
parameterized Q queries.  Queries 10, 18, 19 and 20 join three tables —
the paper singles those out as the most expensive to translate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.qlang.qtypes import QType
from repro.qlang.values import QKeyedTable, QTable, QVector

#: column-count targets, all > 500 per the paper
POSITIONS_COLUMNS = 600
MARKS_COLUMNS = 550
INSTRUMENTS_COLUMNS = 520

SECTORS = ("tech", "finance", "energy", "health", "retail", "telecom")
REGIONS = ("amer", "emea", "apac")
CURRENCIES = ("usd", "eur", "gbp", "jpy")
DESKS = ("rates", "credit", "equities", "fx", "commodities")
TRADERS = tuple(f"trader{i:02d}" for i in range(1, 13))


@dataclass
class AnalyticalConfig:
    """Default sizes are calibrated so that backend execution dominates
    translation the way it does on the paper's Greenplum deployment."""

    n_instruments: int = 1500
    n_positions: int = 5000
    n_marks: int = 4000
    seed: int = 20160701

    @classmethod
    def small(cls) -> "AnalyticalConfig":
        """A fast variant for unit tests."""
        return cls(n_instruments=100, n_positions=200, n_marks=150)


@dataclass
class WorkloadQuery:
    number: int
    text: str
    tables: tuple[str, ...]
    description: str

    @property
    def join_count(self) -> int:
        return len(self.tables) - 1


@dataclass
class AnalyticalWorkload:
    tables: dict[str, QTable | QKeyedTable]
    queries: list[WorkloadQuery]
    config: AnalyticalConfig = field(default_factory=AnalyticalConfig)


def _factor_columns(prefix: str, count: int, rows: int, rng: random.Random):
    names = [f"{prefix}{i:04d}" for i in range(1, count + 1)]
    data = [
        QVector(QType.FLOAT, [rng.random() for __ in range(rows)])
        for __ in names
    ]
    return names, data


def generate(config: AnalyticalConfig | None = None) -> AnalyticalWorkload:
    config = config or AnalyticalConfig()
    rng = random.Random(config.seed)
    instrument_ids = [f"I{i:04d}" for i in range(1, config.n_instruments + 1)]

    # instruments: keyed reference table (inst is the key)
    n = config.n_instruments
    base_names = ["inst", "sector", "region", "currency", "rating"]
    base_data = [
        QVector(QType.SYMBOL, instrument_ids),
        QVector(QType.SYMBOL, [rng.choice(SECTORS) for __ in range(n)]),
        QVector(QType.SYMBOL, [rng.choice(REGIONS) for __ in range(n)]),
        QVector(QType.SYMBOL, [rng.choice(CURRENCIES) for __ in range(n)]),
        QVector(QType.FLOAT, [round(rng.uniform(1.0, 5.0), 2) for __ in range(n)]),
    ]
    factor_names, factor_data = _factor_columns(
        "i", INSTRUMENTS_COLUMNS - len(base_names), n, rng
    )
    instruments_flat = QTable(base_names + factor_names, base_data + factor_data)
    instruments = QKeyedTable(
        QTable(["inst"], [instruments_flat.data[0]]),
        QTable(instruments_flat.columns[1:], instruments_flat.data[1:]),
    )

    # positions: the main fact table
    n = config.n_positions
    times = sorted(
        rng.sample(range(9 * 3600 * 1000, 16 * 3600 * 1000), n)
    )
    base_names = ["inst", "desk", "trader", "ts", "qty", "price", "notional"]
    qty = [rng.randint(1, 1000) for __ in range(n)]
    price = [round(rng.uniform(10.0, 200.0), 2) for __ in range(n)]
    base_data = [
        QVector(QType.SYMBOL, [rng.choice(instrument_ids) for __ in range(n)]),
        QVector(QType.SYMBOL, [rng.choice(DESKS) for __ in range(n)]),
        QVector(QType.SYMBOL, [rng.choice(TRADERS) for __ in range(n)]),
        QVector(QType.TIME, times),
        QVector(QType.LONG, qty),
        QVector(QType.FLOAT, price),
        QVector(QType.FLOAT, [round(q * p, 2) for q, p in zip(qty, price)]),
    ]
    factor_names, factor_data = _factor_columns(
        "p", POSITIONS_COLUMNS - len(base_names), n, rng
    )
    positions = QTable(base_names + factor_names, base_data + factor_data)

    # marks: wide time-series of valuations
    n = config.n_marks
    times = sorted(rng.sample(range(9 * 3600 * 1000, 16 * 3600 * 1000), n))
    base_names = ["inst", "ts", "mark"]
    base_data = [
        QVector(QType.SYMBOL, [rng.choice(instrument_ids) for __ in range(n)]),
        QVector(QType.TIME, times),
        QVector(QType.FLOAT, [round(rng.uniform(5.0, 250.0), 2) for __ in range(n)]),
    ]
    factor_names, factor_data = _factor_columns(
        "m", MARKS_COLUMNS - len(base_names), n, rng
    )
    marks = QTable(base_names + factor_names, base_data + factor_data)

    return AnalyticalWorkload(
        tables={
            "positions": positions,
            "marks": marks,
            "instruments": instruments,
        },
        queries=build_queries(),
        config=config,
    )


def build_queries() -> list[WorkloadQuery]:
    """The 25 queries.  Queries 10, 18, 19, 20 involve three tables."""
    inst_list = "`I0001`I0002`I0003`I0004`I0005`I0006`I0007`I0008"
    specs: list[tuple[str, tuple[str, ...], str]] = [
        # 1
        ("select avg p0001, max p0002, min p0003 from positions",
         ("positions",), "scalar aggregates"),
        # 2
        ("select sum notional by desk from positions",
         ("positions",), "group by desk"),
        # 3
        ("select sum qty, avg price by sector from positions lj instruments",
         ("positions", "instruments"), "join + group"),
        # 4
        ("select from positions where p0005 > 0.5, p0010 < 0.9",
         ("positions",), "wide filter scan"),
        # 5
        ("select vw: qty wavg price by desk from positions",
         ("positions",), "weighted average"),
        # 6
        ("select dev p0020, var p0021, med p0022 from positions",
         ("positions",), "statistical aggregates"),
        # 7
        ("exec sum notional by trader from positions",
         ("positions",), "exec by"),
        # 8
        ("update spread_: p0001 - p0002 from positions",
         ("positions",), "wide update"),
        # 9
        ("select avg mark by inst from marks",
         ("marks",), "per-instrument marks"),
        # 10 — three tables
        ("select sum notional, avg mark by sector, region from "
         "ej[`inst; positions; marks] lj instruments",
         ("positions", "marks", "instruments"), "3-table rollup"),
        # 11
        ("select sum p0001, s2: sum p0002, s3: sum p0003, s4: sum p0004, "
         "s5: sum p0005, s6: sum p0006, s7: sum p0007, s8: sum p0008 "
         "from positions",
         ("positions",), "many aggregates"),
        # 12
        ("select cnt: count inst by rb: floor rating from instruments",
         ("instruments",), "bucketed count"),
        # 13
        ("select from marks where mark > 100.0",
         ("marks",), "wide filter on marks"),
        # 14
        ("select mx: max mark, mn: min mark by inst from marks",
         ("marks",), "min/max by instrument"),
        # 15
        (f"select from positions where inst in {inst_list}",
         ("positions",), "IN-list filter"),
        # 16
        ("update cum: sums notional by desk from positions",
         ("positions",), "running sums by group"),
        # 17
        ("select avg price by trader from positions where qty > 500",
         ("positions",), "filtered group"),
        # 18 — three tables
        ("select total: sum notional, risk: dev mark, n: count inst "
         "by region from ej[`inst; positions; marks] lj instruments "
         "where qty > 100",
         ("positions", "marks", "instruments"), "3-table risk rollup"),
        # 19 — three tables
        ("select vw: qty wavg mark, mx: max price by sector, currency "
         "from ej[`inst; positions lj instruments; marks]",
         ("positions", "instruments", "marks"), "3-table weighted marks"),
        # 20 — three tables
        ("select n: count inst, s: sum notional by rb: floor rating "
         "from ej[`inst; positions; marks] lj instruments where mark > 0.0",
         ("positions", "marks", "instruments"), "3-table rating buckets"),
        # 21
        ("select inst, ts, price, mark from aj[`inst`ts; positions; marks]",
         ("positions", "marks"), "as-of join, pruned output"),
        # 22
        ("select mi: avg i0001, m2: avg i0002 by sector from instruments",
         ("instruments",), "factor means"),
        # 23
        ("exec max mark by inst from marks",
         ("marks",), "exec by instrument"),
        # 24
        ("select from instruments where rating within 2.0 4.0",
         ("instruments",), "range filter"),
        # 25
        ("delete from positions where notional < 50.0",
         ("positions",), "wide delete"),
    ]
    return [
        WorkloadQuery(i + 1, text, tables, description)
        for i, (text, tables, description) in enumerate(specs)
    ]


def load_workload(engine, mdi=None, config: AnalyticalConfig | None = None
                  ) -> AnalyticalWorkload:
    """Generate and load the workload into an engine (+ MDI annotations)."""
    from repro.workload.loader import load_table

    workload = generate(config)
    for name, table in workload.tables.items():
        load_table(engine, name, table, mdi=mdi)
    return workload
