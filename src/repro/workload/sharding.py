"""Sharded loading of the Analytical Workload.

Standard partition topology for the paper's 25-query workload: the fact
tables (``positions``, ``marks``) hash-partition on the instrument
symbol — the dominant join key — while the keyed dimension table
(``instruments``) is replicated to every shard, so fact-dimension joins
never move fact rows.

Row routing itself happens inside :meth:`ShardedBackend.load_table`
(lint rule HQ007: loaders hand over whole tables and never inspect
partition keys).
"""

from __future__ import annotations

from repro.config import HyperQConfig
from repro.core.metadata import PartitionMap
from repro.core.platform import DirectGateway, HyperQ
from repro.core.sharded import ShardedBackend
from repro.sqlengine.engine import Engine
from repro.workload.analytical import (
    AnalyticalConfig,
    AnalyticalWorkload,
    generate,
)
from repro.workload.loader import qtable_to_columns


def analytical_partition_map(shard_count: int) -> PartitionMap:
    """The workload's partition topology for ``shard_count`` shards."""
    return (
        PartitionMap(shard_count)
        .hash_table("positions", "inst")
        .hash_table("marks", "inst")
    )


def load_sharded_workload(
    backend: ShardedBackend,
    mdi=None,
    config: AnalyticalConfig | None = None,
    workload: AnalyticalWorkload | None = None,
) -> AnalyticalWorkload:
    """Generate the workload and load it across the shard topology.

    Mirrors :func:`repro.workload.analytical.load_workload` for the
    sharded backend: ``ordcol`` is assigned globally before the split,
    keyed tables get their key columns annotated on the MDI.
    """
    workload = workload or generate(config)
    for name, table in workload.tables.items():
        keys, columns, rows = qtable_to_columns(table)
        backend.load_table(name, columns, rows)
        if mdi is not None:
            if keys:
                mdi.annotate_keys(name, keys)
            else:
                mdi.invalidate(name)
    return workload


def build_sharded_platform(
    shard_count: int,
    config: HyperQConfig | None = None,
    workload_config: AnalyticalConfig | None = None,
    with_replicas: bool = False,
    workload: AnalyticalWorkload | None = None,
) -> tuple[HyperQ, ShardedBackend, AnalyticalWorkload]:
    """A HyperQ platform over an in-process N-shard backend with the
    analytical workload loaded — the differential-test setup.

    With ``with_replicas`` each shard also gets a replica engine holding
    the same partition, enabling hedged reads.

    ``config.sharding.mode`` selects the shard transport: ``"thread"``
    hosts every partition engine in this process, ``"process"`` spawns
    one QIPC-connected worker process per shard
    (:func:`repro.core.procshard.spawn_process_shards`) for true
    multi-core scatter parallelism.  Replicas stay in-process either
    way — a hedged read is a fallback path, not a parallelism lever.
    """
    config = config or HyperQConfig()
    if config.sharding.mode == "process":
        from repro.core.procshard import spawn_process_shards

        children: list = spawn_process_shards(shard_count, config.sharding)
    else:
        children = [DirectGateway(Engine()) for __ in range(shard_count)]
    replicas = (
        [DirectGateway(Engine()) for __ in range(shard_count)]
        if with_replicas
        else None
    )
    backend = ShardedBackend(
        children,
        analytical_partition_map(shard_count),
        config=config.sharding,
        replicas=replicas,
    )
    try:
        platform = HyperQ(config=config, backend=backend)
        loaded = load_sharded_workload(
            backend, mdi=platform.mdi, config=workload_config,
            workload=workload,
        )
    except BaseException:
        # a failed build must not leak shard children (process mode
        # spawns real worker processes per shard)
        backend.close()
        raise
    return platform, backend, loaded
