"""XTRA invariant checker (``XI00x``).

Every pipeline pass must hand its successor a *well-formed* XTRA tree:
derivable output columns, an order column that exists, scalar column
references that resolve against the correct input, boolean predicates,
and structurally valid operators.  The Xformer rebuilds trees wholesale,
so a buggy rewrite rule tends to corrupt trees in ways the serializer
only trips over much later — the pipeline runs :func:`check_operator_tree`
after each pass (``AnalysisConfig.check_invariants``) and attributes any
violation to the pass that *produced* the broken tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.xtra import ops
from repro.core.xtra import scalars as sc
from repro.sqlengine.types import SqlType


@dataclass
class InvariantViolation:
    """One broken invariant on one operator node."""

    code: str
    message: str
    operator: str

    def render(self) -> str:
        return f"{self.code} at {self.operator}: {self.message}"


def _input_column_names(op: ops.XtraOp) -> set[str]:
    """Column names an operator's scalar expressions may reference."""
    names: set[str] = set()
    for child in op.children():
        names.update(c.name for c in child.columns)
    return names


def _check_scalar_refs(
    label: str,
    scalar: sc.Scalar,
    available: set[str],
    op_name: str,
    out: list[InvariantViolation],
) -> None:
    unresolved = sorted(sc.scalar_columns(scalar) - available)
    if unresolved:
        out.append(
            InvariantViolation(
                "XI003",
                f"{label} references column(s) {unresolved} not produced "
                f"by the operator's input",
                op_name,
            )
        )


def _node_violations(op: ops.XtraOp) -> list[InvariantViolation]:
    out: list[InvariantViolation] = []
    op_name = type(op).__name__

    # XI001: output columns must be derivable, and leaf schemas must not
    # declare the same name twice (joins pre-rename, so only leaves and
    # projections can legally collide — and those collisions are bugs)
    try:
        columns = op.columns
    except Exception as exc:
        out.append(
            InvariantViolation(
                "XI001", f"column derivation failed: {exc}", op_name
            )
        )
        return out  # nothing below is checkable without a schema
    names = [c.name for c in columns]
    if isinstance(op, (ops.XtraGet, ops.XtraConstTable)):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            out.append(
                InvariantViolation(
                    "XI001",
                    f"duplicate output column name(s) {duplicates}",
                    op_name,
                )
            )

    # XI002: a derived order column must be one of the output columns
    order = op.order_column
    if order is not None and order not in names:
        out.append(
            InvariantViolation(
                "XI002",
                f"order column {order!r} is not among the output "
                f"columns {names}",
                op_name,
            )
        )

    # XI003: scalar column references resolve against the right input
    available = _input_column_names(op)
    if isinstance(op, ops.XtraProject):
        for name, scalar in op.projections:
            _check_scalar_refs(
                f"projection {name!r}", scalar, available, op_name, out
            )
    elif isinstance(op, ops.XtraFilter):
        _check_scalar_refs(
            "filter predicate", op.predicate, available, op_name, out
        )
    elif isinstance(op, ops.XtraJoin):
        if op.condition is not None:
            _check_scalar_refs(
                "join condition", op.condition, available, op_name, out
            )
    elif isinstance(op, ops.XtraGroupAgg):
        for name, scalar in op.group_keys:
            _check_scalar_refs(
                f"group key {name!r}", scalar, available, op_name, out
            )
        for name, scalar in op.aggregates:
            _check_scalar_refs(
                f"aggregate {name!r}", scalar, available, op_name, out
            )
    elif isinstance(op, ops.XtraWindow):
        for name, scalar in op.windows:
            _check_scalar_refs(
                f"window column {name!r}", scalar, available, op_name, out
            )
    elif isinstance(op, ops.XtraSort):
        for scalar, __ in op.sort_items:
            _check_scalar_refs(
                "sort item", scalar, available, op_name, out
            )

    # XI004: filters and join conditions must be boolean-typed
    predicate = None
    if isinstance(op, ops.XtraFilter):
        predicate = op.predicate
    elif isinstance(op, ops.XtraJoin):
        predicate = op.condition
    if predicate is not None and predicate.sql_type not in (
        SqlType.BOOLEAN,
        SqlType.NULL,
    ):
        out.append(
            InvariantViolation(
                "XI004",
                f"predicate has scalar type {predicate.sql_type.name}, "
                "expected BOOLEAN",
                op_name,
            )
        )

    # XI005: structural validity per operator
    if isinstance(op, ops.XtraJoin) and op.kind not in (
        "inner", "left", "cross"
    ):
        out.append(
            InvariantViolation(
                "XI005", f"unknown join kind {op.kind!r}", op_name
            )
        )
    if isinstance(op, ops.XtraUnionAll):
        left = [c for c in op.left.columns if not c.implicit]
        right = [c for c in op.right.columns if not c.implicit]
        if len(left) != len(right):
            out.append(
                InvariantViolation(
                    "XI005",
                    f"union inputs have {len(left)} vs {len(right)} "
                    "visible columns",
                    op_name,
                )
            )
    if isinstance(op, ops.XtraConstTable):
        width = len(op.output)
        bad = [i for i, row in enumerate(op.rows) if len(row) != width]
        if bad:
            out.append(
                InvariantViolation(
                    "XI005",
                    f"row(s) {bad} do not match the declared width "
                    f"{width}",
                    op_name,
                )
            )
    if isinstance(op, ops.XtraLimit) and (op.count < 0 or op.offset < 0):
        out.append(
            InvariantViolation(
                "XI005",
                f"negative limit/offset ({op.count}, {op.offset})",
                op_name,
            )
        )

    # XI006: declared keys must be real output columns
    if isinstance(op, ops.XtraGet):
        missing = sorted(set(op.keys) - set(names))
        if missing:
            out.append(
                InvariantViolation(
                    "XI006",
                    f"key column(s) {missing} are not in the output",
                    op_name,
                )
            )
    return out


def check_operator_tree(op: ops.XtraOp) -> list[InvariantViolation]:
    """All invariant violations anywhere in the tree, pre-order."""
    out: list[InvariantViolation] = []
    for node in ops.walk(op):
        out.extend(_node_violations(node))
    return out
