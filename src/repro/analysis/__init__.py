"""Static analysis for Hyper-Q: qcheck rules, XTRA invariants, and the
concurrency checker.

Three tiers (ISSUE 3, ISSUE 8):

* **qcheck** — pre-bind rules over the Q AST (:mod:`repro.analysis.qcheck`)
  run by :class:`QueryAnalyzer`, reporting :class:`Finding` records with
  ``QC0xx`` codes;
* **invariants** — structural checks on the XTRA operator tree
  (:mod:`repro.analysis.invariants`), run by the pipeline after each pass;
* **concurrency** — thread-role inference and lock-discipline checking
  over ``src/repro`` itself (:mod:`repro.analysis.concurrency`), with
  ``CC00x`` codes, plus the runtime lock-order harness.

See ``docs/ANALYSIS.md`` for the rule catalog.

Exports resolve lazily (PEP 562): the runtime lock factory
(:mod:`repro.analysis.concurrency.locks`) is imported by ``repro.obs``,
which the query-analysis machinery transitively depends on — an eager
``from repro.analysis.framework import ...`` here would close that loop
into an import cycle.
"""

from __future__ import annotations

_FRAMEWORK = ("Finding", "QueryAnalyzer", "Rule", "Severity", "default_rules")
_INVARIANTS = ("InvariantViolation", "check_operator_tree")

__all__ = [*sorted(_FRAMEWORK), *sorted(_INVARIANTS)]


def __getattr__(name: str):
    if name in _FRAMEWORK:
        from repro.analysis import framework

        return getattr(framework, name)
    if name in _INVARIANTS:
        from repro.analysis import invariants

        return getattr(invariants, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
