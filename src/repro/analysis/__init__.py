"""Static analysis for Hyper-Q: qcheck rules + XTRA invariants.

Two levels (ISSUE 3):

* **qcheck** — pre-bind rules over the Q AST (:mod:`repro.analysis.qcheck`)
  run by :class:`QueryAnalyzer`, reporting :class:`Finding` records with
  ``QC0xx`` codes;
* **invariants** — structural checks on the XTRA operator tree
  (:mod:`repro.analysis.invariants`), run by the pipeline after each pass.

See ``docs/ANALYSIS.md`` for the rule catalog.
"""

from repro.analysis.framework import (
    Finding,
    QueryAnalyzer,
    Rule,
    Severity,
    default_rules,
)
from repro.analysis.invariants import InvariantViolation, check_operator_tree

__all__ = [
    "Finding",
    "InvariantViolation",
    "QueryAnalyzer",
    "Rule",
    "Severity",
    "check_operator_tree",
    "default_rules",
]
