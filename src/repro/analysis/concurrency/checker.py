"""The CC001–CC004 static lock-discipline rules (ISSUE 8 tentpole b).

Runs over the index built by
:mod:`repro.analysis.concurrency.callgraph` after role inference:

* **CC001** (error) — an instance attribute written from both thread
  roles (reactor *and* worker) without holding a lock and without a
  ``# hq: guarded-by(<lock>)`` declaration or ``@thread_safe``.
* **CC002** (error) — an attribute *declared* ``guarded-by(<lock>)``
  written without that exact lock held (a stale declaration is worse
  than none: readers trust it).
* **CC003** (warning) — a lock acquired on the reactor thread; legal
  for micro-critical sections (the reactor's own timer/callback queues)
  but every hold stalls every connection, so each site must be visibly
  intentional.
* **CC004** (error) — a blocking call (``time.sleep``, socket
  round-trips, ``queue.get``, ``Event.wait`` …) reachable from reactor
  context.  This generalizes the per-module HQ006 regex to call-graph
  reachability: the hazard HQ006 cannot see is a clean-looking helper
  three calls away from ``data_received``.

Suppressions: ``# hq: allow(CC00x) <reason>`` on the offending line (or
the enclosing ``def`` line), ``@thread_safe("<reason>")`` on the
function or class.  A suppression or declaration **without a
justification does not suppress** and is itself reported (CC000) — the
acceptance bar is zero suppression-free errors, not zero visible ones.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.concurrency.callgraph import (
    GUARD_NAME_RE,
    ROLE_REACTOR,
    ROLE_WORKER,
    FunctionInfo,
    Index,
    build_index,
    infer_roles,
    role_path,
)
from repro.analysis.framework import Finding, Severity

#: constructors never racing with other methods (object not yet shared)
INIT_METHODS = {"__init__", "__new__", "__post_init__"}

#: attribute calls that block the calling thread
BLOCKING_ATTRS = {
    "sleep",
    "sendall",
    "makefile",
    "create_connection",
    "getaddrinfo",
    "recv_exact",
    "wait",
    "wait_for",
}

RULE_SEVERITY = {
    "CC000": Severity.WARNING,
    "CC001": Severity.ERROR,
    "CC002": Severity.ERROR,
    "CC003": Severity.WARNING,
    "CC004": Severity.ERROR,
}

RULE_NAMES = {
    "CC000": "pragma_hygiene",
    "CC001": "unguarded_shared_write",
    "CC002": "guard_not_held",
    "CC003": "reactor_lock",
    "CC004": "reactor_blocking",
}


def _expr_text(node) -> str | None:
    """Render the guard expressions we understand (self.x / bare name)."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self":
            return f"self.{node.attr}"
        return f"{node.value.id}.{node.attr}"
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_guard_expr(node) -> str | None:
    text = _expr_text(node)
    if text is not None and GUARD_NAME_RE.search(text.rsplit(".", 1)[-1]):
        return text
    return None


def _terminal_name(node) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


class _BodyScan:
    """One pass over a function body (nested defs/lambdas excluded)
    collecting self-attribute writes, guard acquisitions, and blocking
    calls, each with the set of guards held at that point."""

    def __init__(self, fn_node):
        self.writes: list = []  # (attr, lineno, frozenset(guards))
        self.acquires: list = []  # (guard text, lineno)
        self.blocking: list = []  # (label, lineno)
        for stmt in ast.iter_child_nodes(fn_node):
            self._visit(stmt, frozenset())

    def _visit(self, node, guards) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, ast.With):
            inner = set(guards)
            for item in node.items:
                self._visit(item.context_expr, guards)
                guard = _is_guard_expr(item.context_expr)
                if guard is not None:
                    inner.add(guard)
                    self.acquires.append((guard, node.lineno))
            for stmt in node.body:
                self._visit(stmt, frozenset(inner))
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self.writes.append((target.attr, node.lineno, guards))
        if isinstance(node, ast.Call):
            self._classify_call(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child, guards)

    def _classify_call(self, call) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in ("sleep", "recv_exact"):
                self.blocking.append((f"{func.id}()", call.lineno))
            return
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        receiver = _terminal_name(func.value).lower()
        if attr == "acquire":
            guard = _is_guard_expr(func.value)
            if guard is not None:
                self.acquires.append((guard, call.lineno))
            return
        if attr in BLOCKING_ATTRS:
            self.blocking.append((f".{attr}()", call.lineno))
        elif attr == "join" and "thread" in receiver:
            self.blocking.append((".join()", call.lineno))
        elif attr == "get" and "queue" in receiver:
            self.blocking.append((".get()", call.lineno))


class ConcurrencyChecker:
    """Drives role inference and the CC rules over one source tree."""

    def __init__(self, root: Path, package: str | None = None):
        self.index: Index = build_index(Path(root), package)
        infer_roles(self.index)
        self.findings: list = []
        self.suppressed: list = []
        self._scans: dict = {}

    # -- plumbing -----------------------------------------------------------

    def _scan(self, fn: FunctionInfo) -> _BodyScan:
        scan = self._scans.get(fn.qualname)
        if scan is None:
            scan = self._scans[fn.qualname] = _BodyScan(fn.node)
        return scan

    def _rel_path(self, fn: FunctionInfo) -> str:
        path = self.index.modules[fn.module].path
        try:
            return str(path.relative_to(self.index.root.parent))
        except ValueError:
            return str(path)

    def _suppression(self, fn: FunctionInfo, code: str, lineno: int):
        """A justified suppression covering (code, line), or None."""
        mod = self.index.modules[fn.module]
        # trailing comment, a standalone pragma line just above, or the
        # enclosing def line all cover the finding
        for where in (lineno, lineno - 1, fn.lineno):
            pragma = mod.pragmas.get(where)
            if (
                pragma is not None
                and pragma.kind == "allow"
                and pragma.value == code
                and pragma.reason
            ):
                return f"allow pragma: {pragma.reason}"
        if fn.thread_safe:
            return f"@thread_safe: {fn.thread_safe}"
        cls = self.index.function_class(fn)
        if cls is not None and cls.thread_safe:
            return f"@thread_safe: {cls.thread_safe}"
        return None

    def _emit(self, fn: FunctionInfo, code: str, lineno: int, message: str):
        reason = self._suppression(fn, code, lineno)
        record = Finding(
            code=code,
            message=message,
            severity=RULE_SEVERITY[code],
            rule=RULE_NAMES[code],
            line=lineno,
            path=self._rel_path(fn),
        )
        if reason is not None:
            entry = record.to_dict()
            entry["suppressed_by"] = reason
            self.suppressed.append(entry)
        else:
            self.findings.append(record)

    def _chain(self, fn: FunctionInfo, role: str) -> str:
        path = role_path(self.index, fn, role)
        short = [
            ".".join(q.rsplit(".", 2)[-2:]) if "." in q else q for q in path
        ]
        return " -> ".join(short)

    # -- the rules ----------------------------------------------------------

    def run(self) -> list:
        self._check_pragma_hygiene()
        self._check_shared_writes()
        self._check_reactor_side()
        self.findings.sort(
            key=lambda f: (-int(f.severity), f.path, f.line, f.code)
        )
        return self.findings

    def _check_pragma_hygiene(self) -> None:
        for mod in self.index.modules.values():
            for pragma in mod.pragmas.values():
                if not pragma.reason:
                    self.findings.append(
                        Finding(
                            code="CC000",
                            message=(
                                f"hq: {pragma.kind}({pragma.value}) pragma "
                                "carries no justification — it does not "
                                "suppress anything until it explains itself"
                            ),
                            severity=RULE_SEVERITY["CC000"],
                            rule=RULE_NAMES["CC000"],
                            line=pragma.line,
                            path=self._mod_rel_path(mod),
                        )
                    )
        for fn in self.index.functions.values():
            if fn.thread_safe == "":
                self._emit(
                    fn,
                    "CC000",
                    fn.lineno,
                    "@thread_safe without a justification string does not "
                    "exempt anything — use @thread_safe(\"why\")",
                )

    def _mod_rel_path(self, mod) -> str:
        try:
            return str(mod.path.relative_to(self.index.root.parent))
        except ValueError:
            return str(mod.path)

    def _check_shared_writes(self) -> None:
        """CC001 unguarded multi-role writes + CC002 declared-not-held."""
        per_class: dict = {}
        for fn in self.index.functions.values():
            if fn.class_name is None or fn.name in INIT_METHODS:
                continue
            cls = self.index.function_class(fn)
            if cls is None:
                continue
            scan = self._scan(fn)
            for attr, lineno, guards in scan.writes:
                per_class.setdefault(cls.qualname, {}).setdefault(
                    attr, []
                ).append((fn, lineno, guards))
        for cls_qualname, attrs in per_class.items():
            cls = self.index.classes[cls_qualname]
            for attr, writes in attrs.items():
                declared = cls.guarded.get(attr)
                if declared is not None:
                    lock, _reason, _line = declared
                    for fn, lineno, guards in writes:
                        held = (
                            lock in guards
                            or lock in fn.assumed_guards
                            or "*" in fn.assumed_guards
                        )
                        if not held:
                            self._emit(
                                fn,
                                "CC002",
                                lineno,
                                f"self.{attr} is declared guarded-by"
                                f"({lock}) but written here without it",
                            )
                    continue
                roles = set()
                for fn, _lineno, _guards in writes:
                    roles |= fn.roles() & {ROLE_REACTOR, ROLE_WORKER}
                if len(roles) < 2:
                    continue
                for fn, lineno, guards in writes:
                    if guards or fn.assumed_guards:
                        continue
                    self._emit(
                        fn,
                        "CC001",
                        lineno,
                        f"self.{attr} is written from both reactor and "
                        f"worker contexts with no lock held and no "
                        f"guarded-by declaration (writer roles: "
                        f"{', '.join(sorted(roles))})",
                    )

    def _check_reactor_side(self) -> None:
        """CC003 reactor lock acquisitions + CC004 reactor blocking."""
        for fn in self.index.functions.values():
            if ROLE_REACTOR not in fn.role_via:
                continue
            scan = self._scan(fn)
            chain = None
            for guard, lineno in scan.acquires:
                chain = chain or self._chain(fn, ROLE_REACTOR)
                self._emit(
                    fn,
                    "CC003",
                    lineno,
                    f"{guard} acquired on the reactor thread "
                    f"(via {chain}) — any hold stalls every connection",
                )
            for label, lineno in scan.blocking:
                chain = chain or self._chain(fn, ROLE_REACTOR)
                self._emit(
                    fn,
                    "CC004",
                    lineno,
                    f"blocking call {label} reachable from reactor "
                    f"context (via {chain})",
                )

    # -- reporting ----------------------------------------------------------

    def report(self) -> dict:
        by_severity: dict = {}
        for finding in self.findings:
            by_severity[finding.severity.label] = (
                by_severity.get(finding.severity.label, 0) + 1
            )
        roles = {
            role: sorted(
                fn.qualname
                for fn in self.index.functions.values()
                if role in fn.role_via
            )
            for role in (ROLE_REACTOR, ROLE_WORKER)
        }
        return {
            "root": str(self.index.root),
            "modules": len(self.index.modules),
            "functions": len(self.index.functions),
            "role_counts": {k: len(v) for k, v in roles.items()},
            "roles": roles,
            "counts": by_severity,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": self.suppressed,
        }


def check_tree(root: Path, package: str | None = None) -> ConcurrencyChecker:
    """Index, infer, and run the rules; returns the loaded checker."""
    checker = ConcurrencyChecker(root, package)
    checker.run()
    return checker
