"""The runtime lock-order / race harness (ISSUE 8 tentpole c).

:class:`OrderedLock` wraps a :class:`threading.Lock`/``RLock`` and, per
acquisition, records the *global lock-order graph*: an edge ``A -> B``
whenever a thread acquires ``B`` while holding ``A``.  Two runtime rules
fall out of that record:

* **CC005 — potential deadlock**: a cycle in the order graph means two
  code paths acquire the same locks in opposite orders; under the right
  interleaving they deadlock.  Detected the moment the closing edge is
  recorded, on whichever test run first exercises both paths — no actual
  deadlock (or timing luck) required.
* **CC006 — reactor long hold**: a lock held longer than
  ``REPRO_LOCKCHECK_HOLD_MS`` (default 50) on an event-loop thread
  (named ``reactor-*`` by :class:`repro.server.reactor.Reactor`) stalls
  every connection the loop serves.

Everything is off by default: the ``make_lock``/``make_rlock``/
``make_condition`` factories hand back plain ``threading`` primitives
unless ``REPRO_LOCKCHECK=1`` — production pays nothing for the harness.
Edges are keyed by the *factory name* (a semantic site label such as
``"wlm.breaker"``), not the instance, so order discipline is checked
per lock class the way deadlocks actually happen.

This module is imported by ``repro.obs.metrics`` before anything else in
``repro``; it must stay stdlib-only at import time.  Metric export
(``concurrency_*`` families) therefore lives behind the lazy
:func:`export_metrics` bridge — and the registry's own lock being an
``OrderedLock`` is safe exactly because recording an acquisition never
touches the metrics layer.
"""

from __future__ import annotations

import os
import sys
import threading
import time

#: reactor threads are named f"reactor-{label}" by repro.server.reactor
REACTOR_THREAD_PREFIX = "reactor-"

_HOLD_MS_ENV = "REPRO_LOCKCHECK_HOLD_MS"
_DEFAULT_HOLD_MS = 50.0


def lockcheck_enabled() -> bool:
    """True when the runtime harness is switched on for this process."""
    return os.environ.get("REPRO_LOCKCHECK", "") not in ("", "0", "false")


def _hold_threshold_ms() -> float:
    try:
        return float(os.environ.get(_HOLD_MS_ENV, _DEFAULT_HOLD_MS))
    except ValueError:
        return _DEFAULT_HOLD_MS


def _caller_site() -> str:
    """``file:line`` of the nearest frame outside this module and
    :mod:`threading` — the code that actually took the lock."""
    frame = sys._getframe(1)
    here = __file__
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename != here and "threading" not in filename:
            return f"{os.path.basename(filename)}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class LockCheckState:
    """The process-global (or test-local) acquisition record.

    All mutation happens under one plain meta-lock that is itself never
    instrumented and never held while acquiring anything else — it is a
    leaf by construction, so the harness cannot deadlock the program it
    watches.
    """

    def __init__(self):
        self._meta = threading.Lock()
        self._local = threading.local()
        #: (a, b) -> acquisition count for the edge a-held-while-taking-b
        self.edges: dict[tuple[str, str], int] = {}
        #: a -> set of b reachable in one edge (DFS index over edges)
        self.adjacency: dict[str, set[str]] = {}
        #: (a, b) -> "file:line" where the edge was first recorded
        self.edge_sites: dict[tuple[str, str], str] = {}
        #: CC005: one entry per distinct cycle (as an ordered name list)
        self.cycles: list[dict] = []
        self._cycle_keys: set[frozenset] = set()
        #: CC006: one entry per (lock, site) long hold
        self.long_holds: list[dict] = []
        self._long_hold_keys: set[tuple[str, str]] = set()
        self.acquisitions = 0

    # -- per-thread held stack ------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def held_names(self) -> list[str]:
        """Lock names currently held by the calling thread (oldest first)."""
        return [lock.name for lock, _t0 in self._stack()]

    # -- recording ------------------------------------------------------------

    def note_acquired(self, lock: "OrderedLock") -> None:
        stack = self._stack()
        holder = stack[-1][0].name if stack else None
        stack.append((lock, time.perf_counter()))
        if holder is None or holder == lock.name:
            with self._meta:
                self.acquisitions += 1
            return
        site = _caller_site()
        with self._meta:
            self.acquisitions += 1
            edge = (holder, lock.name)
            seen = self.edges.get(edge, 0)
            self.edges[edge] = seen + 1
            if not seen:
                self.adjacency.setdefault(holder, set()).add(lock.name)
                self.edge_sites[edge] = site
                self._check_cycle_locked(holder, lock.name)

    def note_released(self, lock: "OrderedLock") -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] is lock:
                _lock, t0 = stack.pop(index)
                self._check_hold(lock, time.perf_counter() - t0)
                return

    def _check_hold(self, lock: "OrderedLock", held_s: float) -> None:
        thread = threading.current_thread().name
        if not thread.startswith(REACTOR_THREAD_PREFIX):
            return
        held_ms = held_s * 1e3
        if held_ms <= _hold_threshold_ms():
            return
        site = _caller_site()
        with self._meta:
            key = (lock.name, site)
            if key in self._long_hold_keys:
                return
            self._long_hold_keys.add(key)
            self.long_holds.append(
                {
                    "code": "CC006",
                    "lock": lock.name,
                    "thread": thread,
                    "held_ms": round(held_ms, 3),
                    "site": site,
                }
            )

    def _check_cycle_locked(self, source: str, target: str) -> None:
        """After adding edge source->target: a path target ~> source
        closes a cycle.  Called with the meta-lock held."""
        path = self._find_path(target, source)
        if path is None:
            return
        # path runs target ~> source; prepending source (and dropping the
        # repeated endpoint) yields the cycle's node ring in order
        cycle = [source, *path[:-1]]
        key = frozenset(cycle)
        if key in self._cycle_keys:
            return
        self._cycle_keys.add(key)
        edges = list(zip(cycle, cycle[1:] + cycle[:1]))
        self.cycles.append(
            {
                "code": "CC005",
                "cycle": cycle,
                "sites": {
                    f"{a}->{b}": self.edge_sites.get((a, b), "?")
                    for a, b in edges
                },
            }
        )

    def _find_path(self, start: str, goal: str):
        """Iterative DFS over the adjacency index; returns the node list
        from ``start`` to ``goal`` inclusive, or None."""
        if start == goal:
            return [start]
        seen = {start}
        trail = [(start, iter(self.adjacency.get(start, ())))]
        while trail:
            node, neighbours = trail[-1]
            advanced = False
            for nxt in neighbours:
                if nxt == goal:
                    return [name for name, _ in trail] + [goal]
                if nxt not in seen:
                    seen.add(nxt)
                    trail.append((nxt, iter(self.adjacency.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                trail.pop()
        return None

    # -- reporting ------------------------------------------------------------

    def report(self) -> dict:
        with self._meta:
            return {
                "enabled": lockcheck_enabled(),
                "acquisitions": self.acquisitions,
                "edges": {
                    f"{a}->{b}": count
                    for (a, b), count in sorted(self.edges.items())
                },
                "cycles": list(self.cycles),
                "long_holds": list(self.long_holds),
            }

    def reset(self) -> None:
        with self._meta:
            self.edges.clear()
            self.adjacency.clear()
            self.edge_sites.clear()
            self.cycles.clear()
            self._cycle_keys.clear()
            self.long_holds.clear()
            self._long_hold_keys.clear()
            self.acquisitions = 0


#: the process-wide record the factories bind to
_GLOBAL_STATE = LockCheckState()


def lockcheck_state() -> LockCheckState:
    return _GLOBAL_STATE


def lockcheck_report() -> dict:
    return _GLOBAL_STATE.report()


class OrderedLock:
    """A ``threading.Lock``/``RLock`` stand-in that records lock order.

    Drop-in for the ``with``-statement and ``acquire``/``release``
    protocols, including use as the lock behind
    :class:`threading.Condition` (whose default ``_release_save`` /
    ``_acquire_restore`` / ``_is_owned`` fallbacks only need these two
    methods).  Reentrant acquisitions of an ``RLock``-backed instance
    are counted but recorded once — self-edges are not ordering.
    """

    __slots__ = ("name", "_inner", "_reentrant", "_state", "_owner", "_depth")

    def __init__(
        self,
        name: str,
        reentrant: bool = False,
        state: LockCheckState | None = None,
    ):
        self.name = name
        self._reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()
        self._state = state or _GLOBAL_STATE
        self._owner = None
        self._depth = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if self._reentrant and self._owner == threading.get_ident():
            self._inner.acquire(blocking, timeout)
            self._depth += 1
            return True
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            if self._reentrant:
                self._owner = threading.get_ident()
                self._depth = 1
            self._state.note_acquired(self)
        return acquired

    def release(self) -> None:
        if self._reentrant:
            if self._owner != threading.get_ident():
                raise RuntimeError("cannot release un-acquired lock")
            self._depth -= 1
            if self._depth:
                self._inner.release()
                return
            self._owner = None
        self._state.note_released(self)
        self._inner.release()

    def locked(self) -> bool:
        if self._reentrant:
            return self._owner is not None
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        kind = "rlock" if self._reentrant else "lock"
        return f"<OrderedLock {self.name!r} ({kind})>"


# -- the factory (the only sanctioned lock constructor: lint rule HQ008) ----


def make_lock(name: str):
    """A mutex named for its site; instrumented under REPRO_LOCKCHECK."""
    if lockcheck_enabled():
        return OrderedLock(name)
    return threading.Lock()


def make_rlock(name: str):
    """A reentrant mutex; instrumented under REPRO_LOCKCHECK."""
    if lockcheck_enabled():
        return OrderedLock(name, reentrant=True)
    return threading.RLock()


def make_condition(name: str):
    """A condition variable whose underlying mutex is instrumented."""
    if lockcheck_enabled():
        return threading.Condition(OrderedLock(name))
    return threading.Condition()


# -- metrics bridge ---------------------------------------------------------


def export_metrics() -> None:
    """Publish the harness record as ``concurrency_*`` metric families.

    Called explicitly (end of test session, ``scripts/concheck.py``) —
    never from the acquire/release hot path, which keeps the harness
    safe to wrap the metrics registry's own lock.
    """
    from repro.obs import metrics

    snapshot = _GLOBAL_STATE.report()
    metrics.gauge(
        "concurrency_lock_acquisitions",
        "Instrumented lock acquisitions recorded by the lockcheck harness",
    ).set(snapshot["acquisitions"])
    metrics.gauge(
        "concurrency_lock_order_edges",
        "Distinct held-while-acquiring edges in the lock-order graph",
    ).set(len(snapshot["edges"]))
    metrics.gauge(
        "concurrency_lock_cycles",
        "Lock-order cycles detected (CC005 potential deadlocks)",
    ).set(len(snapshot["cycles"]))
    metrics.gauge(
        "concurrency_reactor_long_holds",
        "Locks held past the hold budget on a reactor thread (CC006)",
    ).set(len(snapshot["long_holds"]))
