"""Tier-3 static analysis: concurrency checking of ``src/repro`` itself.

The paper's Hyper-Q inherits Erlang's actor isolation; this reproduction
substitutes a selectors reactor plus worker threads and hand-managed
locks.  This package is the tooling that keeps that substitution honest:

* :mod:`~repro.analysis.concurrency.annotations` — ``@reactor_only``,
  ``@worker_context``, ``@thread_safe`` role/safety declarations;
* :mod:`~repro.analysis.concurrency.locks` — the instrumented
  :class:`OrderedLock` runtime harness (CC005 lock-order cycles, CC006
  reactor long holds) behind the ``make_lock``/``make_rlock``/
  ``make_condition`` factory, a no-op passthrough unless
  ``REPRO_LOCKCHECK=1``;
* :mod:`~repro.analysis.concurrency.callgraph` — AST call-graph builder
  and thread-role inference over ``src/repro``;
* :mod:`~repro.analysis.concurrency.checker` — the CC001–CC004 static
  lock-discipline rules and the report driver behind
  ``scripts/concheck.py``.

Exports resolve lazily (PEP 562): ``repro.obs`` imports the lock factory
at module import time, so this package must not eagerly pull in the
checker (which depends on the analysis framework and, transitively, on
``repro.obs``).
"""

from __future__ import annotations

_LOCKS = (
    "OrderedLock",
    "lockcheck_enabled",
    "lockcheck_report",
    "lockcheck_state",
    "make_condition",
    "make_lock",
    "make_rlock",
)
_ANNOTATIONS = ("reactor_only", "thread_safe", "worker_context")
_CHECKER = ("ConcurrencyChecker", "check_tree")

__all__ = [*sorted(_LOCKS), *sorted(_ANNOTATIONS), *sorted(_CHECKER)]


def __getattr__(name: str):
    if name in _LOCKS:
        from repro.analysis.concurrency import locks

        return getattr(locks, name)
    if name in _ANNOTATIONS:
        from repro.analysis.concurrency import annotations

        return getattr(annotations, name)
    if name in _CHECKER:
        from repro.analysis.concurrency import checker

        return getattr(checker, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
