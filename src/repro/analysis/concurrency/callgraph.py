"""AST call-graph builder and thread-role inference (ISSUE 8 tentpole a).

Indexes every function and class under a source root, resolves the call
edges that matter for threading analysis, and propagates **thread
roles** from seeds:

* ``repro.server.reactor.Reactor._run`` and everything a reactor
  callback reaches (``Protocol`` event methods, ``Transport`` handlers,
  the targets of ``call_later`` / ``call_soon_threadsafe``) runs on the
  **reactor** thread;
* ``WorkerPool._drain`` and every job handed to ``workers.submit`` /
  ``self._pool.submit`` (including the bodies of submitted lambdas and
  nested ``def job()`` closures) runs on **worker** threads;
* ``@reactor_only`` / ``@worker_context`` declare a role outright, and a
  declared role also *stops* propagation of the opposite role — the
  annotation is the boundary marker between the two worlds.

Resolution is deliberately conservative: precise for ``self.method()``,
module-level names, and imported-module attributes; a small
dispatch-by-name table covers the polymorphic callback surface
(``data_received``, ``_on_events``, ``execute``, ``run_sql``, …) where a
textual receiver cannot be typed.  Unresolvable calls simply add no
edge — the lock-discipline rules are reachability *under*-approximations
plus golden tests, not a soundness proof.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

ROLE_REACTOR = "reactor"
ROLE_WORKER = "worker"
ROLES = (ROLE_REACTOR, ROLE_WORKER)

#: decorator name -> declared role
DECORATOR_ROLES = {"reactor_only": ROLE_REACTOR, "worker_context": ROLE_WORKER}

#: methods resolved by name to every same-named method in the index —
#: the polymorphic callback/backend surface a textual receiver can't type
DISPATCH_METHODS = {
    "_on_events",
    "data_received",
    "connection_made",
    "connection_lost",
    "build_protocol",
    "handler_factory",
    "execute",
    "run_sql",
    "run_query",
    "next_pid",
    "request_deadline",
    "authenticate",
    "inc",
    "dec",
    "set",
    "observe",
}

#: x.submit(job) enqueues worker-pool work when the receiver looks like a
#: pool (self.server.workers.submit / self._pool.submit / pool.submit)
SUBMIT_RECEIVERS = {"workers", "_pool", "pool", "worker_pool"}

#: hard-wired role seeds for the real source tree (qualname, role)
STRUCTURAL_SEEDS = (
    ("repro.server.reactor.Reactor._run", ROLE_REACTOR),
    ("repro.server.reactor.WorkerPool._drain", ROLE_WORKER),
    # the result cache's background TTL sweeper thread
    ("repro.cache.result_cache.ResultCache._sweep_loop", ROLE_WORKER),
)

#: with-statement context managers / attributes that denote a guard
GUARD_NAME_RE = re.compile(r"lock|cond|sem|concurrency|mutex", re.IGNORECASE)

#: ``# hq: guarded-by(self._lock) reason`` / ``# hq: allow(CC004) reason``
PRAGMA_RE = re.compile(
    r"#\s*hq:\s*(?:guarded-by\((?P<guard>[^)]+)\)|allow\((?P<code>CC\d{3})\))"
    r"\s*(?:[-—–:]\s*)?(?P<reason>.*)$"
)


@dataclass
class Pragma:
    kind: str  # "guarded-by" | "allow"
    value: str  # the lock expression or the rule code
    reason: str
    line: int


@dataclass
class FunctionInfo:
    qualname: str
    module: str
    name: str
    node: ast.AST
    lineno: int
    class_name: str | None = None
    #: terminal decorator names (reactor_only, worker_context, thread_safe…)
    decorators: set[str] = field(default_factory=set)
    #: justification passed to @thread_safe, or None
    thread_safe: str | None = None
    declared_role: str | None = None
    #: resolved callee qualnames
    calls: set[str] = field(default_factory=set)
    #: inferred roles: role -> caller qualname it arrived through (None=seed)
    role_via: dict = field(default_factory=dict)
    #: guard expressions assumed held on entry (def-line guarded-by pragma
    #: or the ``*_locked`` caller-holds-the-lock naming convention)
    assumed_guards: frozenset = frozenset()
    #: rule codes allowed on the whole function (def-line allow pragma)
    allowed_codes: frozenset = frozenset()

    def roles(self) -> set:
        return set(self.role_via)


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    lineno: int
    #: base classes as resolved dotted names (or raw names when unresolved)
    bases: list = field(default_factory=list)
    methods: dict = field(default_factory=dict)  # name -> FunctionInfo
    thread_safe: str | None = None
    #: attr -> (lock expression, reason, line) from guarded-by pragmas
    guarded: dict = field(default_factory=dict)


@dataclass
class ModuleInfo:
    name: str
    path: Path
    tree: ast.Module
    source_lines: list
    #: local name -> dotted import target
    imports: dict = field(default_factory=dict)
    functions: dict = field(default_factory=dict)  # name -> FunctionInfo
    classes: dict = field(default_factory=dict)  # name -> ClassInfo
    #: line -> Pragma (allow pragmas on arbitrary lines)
    pragmas: dict = field(default_factory=dict)


@dataclass
class Index:
    root: Path
    package: str
    modules: dict = field(default_factory=dict)  # module name -> ModuleInfo
    functions: dict = field(default_factory=dict)  # qualname -> FunctionInfo
    classes: dict = field(default_factory=dict)  # qualname -> ClassInfo
    #: method name -> [FunctionInfo] for DISPATCH_METHODS resolution
    by_method: dict = field(default_factory=dict)

    def function_class(self, fn: FunctionInfo):
        if fn.class_name is None:
            return None
        return self.classes.get(f"{fn.module}.{fn.class_name}")


# -- decorators and pragmas -------------------------------------------------


def _decorator_names(node) -> set:
    names = set()
    for dec in getattr(node, "decorator_list", ()):
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def _thread_safe_reason(node):
    """The justification string of ``@thread_safe("...")``, or "" when the
    decorator is present without one (the checker flags that)."""
    for dec in getattr(node, "decorator_list", ()):
        if isinstance(dec, ast.Call):
            target = dec.func
            name = (
                target.id
                if isinstance(target, ast.Name)
                else getattr(target, "attr", None)
            )
            if name == "thread_safe":
                if dec.args and isinstance(dec.args[0], ast.Constant):
                    value = dec.args[0].value
                    if isinstance(value, str) and value.strip():
                        return value
                return ""
        else:
            name = (
                dec.id
                if isinstance(dec, ast.Name)
                else getattr(dec, "attr", None)
            )
            if name == "thread_safe":
                return ""
    return None


def _scan_pragmas(source_lines) -> dict:
    pragmas = {}
    for lineno, line in enumerate(source_lines, start=1):
        match = PRAGMA_RE.search(line)
        if not match:
            continue
        if match.group("guard") is not None:
            pragmas[lineno] = Pragma(
                "guarded-by",
                match.group("guard").strip(),
                match.group("reason").strip(),
                lineno,
            )
        else:
            pragmas[lineno] = Pragma(
                "allow",
                match.group("code"),
                match.group("reason").strip(),
                lineno,
            )
    return pragmas


# -- indexing ---------------------------------------------------------------


def _module_name(root: Path, package: str, path: Path) -> str:
    rel = path.relative_to(root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package, *parts]) if parts else package


def _collect_imports(tree: ast.Module) -> dict:
    imports = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    imports[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def _function_pragma_marks(fn: FunctionInfo, pragmas: dict) -> None:
    """Apply def-line pragmas and the ``*_locked`` naming convention."""
    guards, allows = set(), set()
    pragma = pragmas.get(fn.lineno)
    if pragma is not None:
        if pragma.kind == "guarded-by":
            guards.add(pragma.value)
        else:
            allows.add(pragma.value)
    if fn.name.endswith("_locked"):
        guards.add("*")
    fn.assumed_guards = frozenset(guards)
    fn.allowed_codes = frozenset(allows)


def _index_function(
    index: Index,
    mod: ModuleInfo,
    node,
    class_name: str | None,
    prefix: str,
) -> FunctionInfo:
    qualname = f"{prefix}.{node.name}"
    fn = FunctionInfo(
        qualname=qualname,
        module=mod.name,
        name=node.name,
        node=node,
        lineno=node.lineno,
        class_name=class_name,
        decorators=_decorator_names(node),
        thread_safe=_thread_safe_reason(node),
    )
    for dec, role in DECORATOR_ROLES.items():
        if dec in fn.decorators:
            fn.declared_role = role
    _function_pragma_marks(fn, mod.pragmas)
    index.functions[qualname] = fn
    if class_name is not None and "<locals>" not in qualname:
        index.by_method.setdefault(node.name, []).append(fn)
    # nested defs are separate nodes owned by the same class context
    for child in ast.walk(node):
        if child is node:
            continue
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _immediate_parent_function(node, child) is node:
                _index_function(
                    index, mod, child, class_name, f"{qualname}.<locals>"
                )
    return fn


def _immediate_parent_function(root, target):
    """The nearest enclosing function of ``target`` inside ``root``."""
    parent = root
    stack = [(root, root)]
    while stack:
        node, owner = stack.pop()
        for child in ast.iter_child_nodes(node):
            if child is target:
                return owner
            next_owner = (
                child
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                else owner
            )
            stack.append((child, next_owner))
    return parent


def _attr_guard_pragmas(cls: ClassInfo, node, pragmas: dict) -> None:
    """``self.attr = ...  # hq: guarded-by(self._lock) reason`` lines."""
    for stmt in ast.walk(node):
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            continue
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        pragma = pragmas.get(stmt.lineno) or pragmas.get(stmt.lineno - 1)
        if pragma is None or pragma.kind != "guarded-by":
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                cls.guarded.setdefault(
                    target.attr, (pragma.value, pragma.reason, stmt.lineno)
                )


def build_index(root: Path, package: str | None = None) -> Index:
    """Index every ``*.py`` under ``root`` (the package directory)."""
    root = Path(root)
    package = package or root.name
    index = Index(root=root, package=package)
    for path in sorted(root.rglob("*.py")):
        source = path.read_text()
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        mod = ModuleInfo(
            name=_module_name(root, package, path),
            path=path,
            tree=tree,
            source_lines=source.splitlines(),
        )
        mod.imports = _collect_imports(tree)
        mod.pragmas = _scan_pragmas(mod.source_lines)
        index.modules[mod.name] = mod
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = _index_function(index, mod, node, None, mod.name)
                mod.functions[node.name] = fn
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(
                    qualname=f"{mod.name}.{node.name}",
                    module=mod.name,
                    name=node.name,
                    lineno=node.lineno,
                    thread_safe=_thread_safe_reason(node),
                )
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        cls.bases.append(
                            mod.imports.get(base.id, f"{mod.name}.{base.id}")
                        )
                    elif isinstance(base, ast.Attribute):
                        cls.bases.append(base.attr)
                mod.classes[node.name] = cls
                index.classes[cls.qualname] = cls
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method = _index_function(
                            index, mod, child, node.name, cls.qualname
                        )
                        cls.methods[child.name] = method
                        _attr_guard_pragmas(cls, child, mod.pragmas)
                        if cls.thread_safe is not None and method.thread_safe is None:
                            method.thread_safe = cls.thread_safe
    _resolve_calls(index)
    return index


# -- call resolution --------------------------------------------------------


def _terminal_name(node) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _mro(index: Index, cls: ClassInfo):
    """The class plus every resolvable base, breadth-first."""
    seen, out, frontier = set(), [], [cls]
    while frontier:
        current = frontier.pop(0)
        if current.qualname in seen:
            continue
        seen.add(current.qualname)
        out.append(current)
        for base in current.bases:
            base_cls = index.classes.get(base)
            if base_cls is not None:
                frontier.append(base_cls)
    return out


def resolve_self_method(index: Index, fn: FunctionInfo, attr: str):
    cls = index.function_class(fn)
    if cls is None:
        return None
    for klass in _mro(index, cls):
        method = klass.methods.get(attr)
        if method is not None:
            return method
    return None


def _resolve_call_targets(index: Index, mod: ModuleInfo, fn: FunctionInfo, call):
    """Qualnames of the functions a call expression may invoke."""
    func = call.func
    targets = []
    if isinstance(func, ast.Name):
        name = func.id
        nested = index.functions.get(f"{fn.qualname}.<locals>.{name}")
        if nested is not None:
            return [nested.qualname]
        local = mod.functions.get(name)
        if local is not None:
            return [local.qualname]
        local_cls = mod.classes.get(name)
        if local_cls is not None:
            init = local_cls.methods.get("__init__")
            return [init.qualname] if init else []
        dotted = mod.imports.get(name)
        if dotted is not None:
            if dotted in index.functions:
                return [dotted]
            cls = index.classes.get(dotted)
            if cls is not None:
                init = cls.methods.get("__init__")
                return [init.qualname] if init else []
        return []
    if isinstance(func, ast.Attribute):
        attr = func.attr
        base = func.value
        if isinstance(base, ast.Name) and base.id == "self":
            method = resolve_self_method(index, fn, attr)
            if method is not None:
                return [method.qualname]
        elif (
            isinstance(base, ast.Call)
            and isinstance(base.func, ast.Name)
            and base.func.id == "super"
        ):
            cls = index.function_class(fn)
            if cls is not None:
                for klass in _mro(index, cls)[1:]:
                    method = klass.methods.get(attr)
                    if method is not None:
                        return [method.qualname]
            return []
        elif isinstance(base, ast.Name):
            dotted = mod.imports.get(base.id)
            if dotted is not None:
                candidate = f"{dotted}.{attr}"
                if candidate in index.functions:
                    return [candidate]
                cls = index.classes.get(candidate)
                if cls is not None:
                    init = cls.methods.get("__init__")
                    return [init.qualname] if init else []
        if attr in DISPATCH_METHODS:
            targets = [m.qualname for m in index.by_method.get(attr, ())]
    return targets


def _own_calls(fn_node):
    """Call nodes lexically inside a function, excluding nested defs and
    lambdas (those are analyzed as their own role carriers)."""
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _callback_targets(index: Index, mod: ModuleInfo, fn: FunctionInfo, expr):
    """Resolve a callback argument: a name, self-method, nested def, or
    the calls inside a lambda body."""
    if isinstance(expr, ast.Lambda):
        out = []
        for call in ast.walk(expr.body):
            if isinstance(call, ast.Call):
                out.extend(_resolve_call_targets(index, mod, fn, call))
        return out
    if isinstance(expr, ast.Name):
        nested = index.functions.get(f"{fn.qualname}.<locals>.{expr.id}")
        if nested is not None:
            return [nested.qualname]
        local = mod.functions.get(expr.id)
        return [local.qualname] if local else []
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        method = resolve_self_method(index, fn, expr.attr)
        return [method.qualname] if method else []
    return []


def _deferred_seeds(index: Index, mod: ModuleInfo, fn: FunctionInfo):
    """(role, target qualname) pairs for call_later / threadsafe posts /
    worker-pool submissions made inside ``fn``."""
    seeds = []
    for call in _own_calls(fn.node):
        func = call.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr == "call_soon_threadsafe" and call.args:
            for target in _callback_targets(index, mod, fn, call.args[0]):
                seeds.append((ROLE_REACTOR, target))
        elif func.attr == "call_later" and len(call.args) >= 2:
            for target in _callback_targets(index, mod, fn, call.args[1]):
                seeds.append((ROLE_REACTOR, target))
        elif (
            func.attr == "submit"
            and call.args
            and _terminal_name(func.value) in SUBMIT_RECEIVERS
        ):
            for target in _callback_targets(index, mod, fn, call.args[0]):
                seeds.append((ROLE_WORKER, target))
    return seeds


def _resolve_calls(index: Index) -> None:
    for fn in index.functions.values():
        mod = index.modules[fn.module]
        for call in _own_calls(fn.node):
            fn.calls.update(_resolve_call_targets(index, mod, fn, call))


# -- role inference ---------------------------------------------------------


def _is_protocol_subclass(index: Index, cls: ClassInfo) -> bool:
    return any(
        klass.name == "Protocol" for klass in _mro(index, cls)[1:]
    ) or any(str(base).rsplit(".", 1)[-1] == "Protocol" for base in cls.bases)


def infer_roles(index: Index) -> None:
    """Seed and propagate thread roles across the call graph (in place)."""
    seeds: list = []
    for qualname, role in STRUCTURAL_SEEDS:
        if qualname in index.functions:
            seeds.append((role, qualname))
    for fn in index.functions.values():
        if fn.declared_role is not None:
            seeds.append((fn.declared_role, fn.qualname))
        mod = index.modules[fn.module]
        seeds.extend(_deferred_seeds(index, mod, fn))
    worker_seeded = {q for role, q in seeds if role == ROLE_WORKER}
    # every method of a Protocol subclass is a reactor callback unless it
    # was explicitly declared or detected as worker-side work
    for cls in index.classes.values():
        if not _is_protocol_subclass(index, cls):
            continue
        for method in cls.methods.values():
            if method.qualname in worker_seeded:
                continue
            if method.declared_role == ROLE_WORKER:
                continue
            seeds.append((ROLE_REACTOR, method.qualname))
    frontier = []
    for role, qualname in seeds:
        fn = index.functions.get(qualname)
        if fn is None:
            continue
        if fn.declared_role is not None and fn.declared_role != role:
            continue
        if role not in fn.role_via:
            fn.role_via[role] = None
            frontier.append((role, fn))
    while frontier:
        role, fn = frontier.pop()
        for callee_name in fn.calls:
            callee = index.functions.get(callee_name)
            if callee is None or role in callee.role_via:
                continue
            # a declared role is a boundary: reactor reachability stops
            # at @worker_context (a submitted job) and vice versa
            if callee.declared_role is not None and callee.declared_role != role:
                continue
            callee.role_via[role] = fn.qualname
            frontier.append((role, callee))


def role_path(index: Index, fn: FunctionInfo, role: str) -> list:
    """The inferred call chain from the role seed down to ``fn``."""
    chain = [fn.qualname]
    via = fn.role_via.get(role)
    seen = {fn.qualname}
    while via is not None and via not in seen:
        chain.append(via)
        seen.add(via)
        parent = index.functions.get(via)
        via = parent.role_via.get(role) if parent else None
    return list(reversed(chain))
