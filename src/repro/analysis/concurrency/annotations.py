"""Thread-role and thread-safety annotations (ISSUE 8 tentpole a).

These decorators are the *declared* seeds of the call-graph role
inference in :mod:`repro.analysis.concurrency.callgraph`; the checker
reads them straight off the AST, so they carry no runtime behaviour
beyond tagging the function for introspection and debuggers.

* ``@reactor_only`` — the function runs on the reactor (event-loop)
  thread and must never block (CC003/CC004 apply to everything it
  reaches).
* ``@worker_context`` — the function runs on worker-pool threads;
  blocking I/O is fine, but writes it shares with reactor-side code
  need a lock (CC001/CC002 apply).
* ``@thread_safe("reason")`` — the function or class manages its own
  synchronization (atomic ops, immutable state, a documented external
  guard); the lock-discipline rules skip it.  The reason is mandatory:
  a suppression without a justification is how stale exemptions
  outlive the code they excused.

This module is imported by ``repro.obs`` at interpreter start; keep it
stdlib-only with no ``repro`` imports.
"""

from __future__ import annotations

#: attribute carrying the declared role ("reactor" | "worker")
ROLE_ATTR = "__hq_thread_role__"

#: attribute carrying the thread-safety justification string
SAFE_ATTR = "__hq_thread_safe__"


def reactor_only(fn):
    """Declare that ``fn`` runs on the reactor thread (role seed)."""
    setattr(fn, ROLE_ATTR, "reactor")
    return fn


def worker_context(fn):
    """Declare that ``fn`` runs on worker-pool threads (role seed)."""
    setattr(fn, ROLE_ATTR, "worker")
    return fn


def thread_safe(reason: str):
    """Declare a function or class as internally synchronized.

    Usage::

        @thread_safe("all state behind self._lock; no lock-free writes")
        class Counter: ...

    The ``reason`` must be a non-empty string — the decorator raises
    otherwise, and the static checker independently rejects bare
    ``@thread_safe`` applications it sees in the AST.
    """
    if not isinstance(reason, str) or not reason.strip():
        raise ValueError(
            "@thread_safe requires a one-line justification, e.g. "
            '@thread_safe("guarded by self._lock")'
        )

    def decorate(obj):
        setattr(obj, SAFE_ATTR, reason)
        return obj

    return decorate
