"""The qcheck rules (``QC001``–``QC007``).

Each rule statically inspects one top-level Q statement against the
session's scope hierarchy and the backend catalog (through the MDI) —
nothing is executed or bound.  Rules lean on the binder's own name tables
(:data:`_MONADIC_BINDINGS` etc.) so "what the translator supports" has a
single source of truth, and they bail out (report nothing) whenever a
source's schema cannot be derived statically: a silent pass is cheap, a
false positive poisons the whole report.
"""

from __future__ import annotations

from repro.analysis.framework import (
    AnalysisContext,
    Finding,
    Rule,
    Severity,
    iter_child_nodes,
    register,
    walk_q,
)
from repro.core.algebrizer.binder import (
    _AGGREGATE_NAMES,
    _MONADIC_BINDINGS,
    _UNIFORM_WINDOW_VERBS,
)
from repro.core.scopes import VarKind
from repro.qlang import ast
from repro.qlang.parser import INFIX_NAMES
from repro.qlang.values import QAtom

#: names the translator accepts in verb/function position without any
#: scope binding (keyword verbs lex as plain NAME tokens)
BUILTIN_VERBS = (
    set(_MONADIC_BINDINGS)
    | set(_AGGREGATE_NAMES)
    | set(_UNIFORM_WINDOW_VERBS)
    | set(INFIX_NAMES)
    | {"aj", "aj0", "ej", "where", "distinct", "til", "reverse", "string",
       "asc", "desc", "group", "ungroup", "meta", "cols", "key", "value",
       "type", "show", "enlist", "raze", "flip", "?"}
)

#: names valid in value position with no binding: the virtual row index
IMPLICIT_NAMES = {"i", "x", "y", "z"}

#: verbs whose result depends on the implicit row order
ORDER_DEPENDENT_VERBS = (
    set(_UNIFORM_WINDOW_VERBS)
    | {"mavg", "msum", "mmax", "mmin", "mcount", "mdev", "xprev"}
)

#: cast targets the binder can map to SQL (mirror of ``_bind_cast``)
SUPPORTED_CAST_TARGETS = {
    "long", "int", "short", "float", "real", "boolean", "symbol",
    "date", "time", "timestamp",
}

#: sentinel column set: "this template's schema is unknown — don't check"
_UNKNOWN = None


def template_output_names(template: ast.Template) -> list[str]:
    """Output column names of a template, q's inference rule included."""
    names = [
        spec.name or ast.infer_column_name(spec.expr)
        for spec in template.by
    ]
    names += [
        spec.name or ast.infer_column_name(spec.expr)
        for spec in template.columns
    ]
    return names


def source_columns(
    node: ast.Node, ctx: AnalysisContext, declared: set[str]
) -> list[str] | None:
    """Statically derived data columns of a ``from`` source, else None.

    None means "unknown" — callers must then skip column-level checks for
    that template (conservative bail-out, never a guess).
    """
    if isinstance(node, ast.Name):
        if node.name in declared:
            return None  # assigned earlier in this message; shape unknown
        return ctx.table_columns(node.name)
    if isinstance(node, ast.Template):
        if node.kind == "exec":
            return None
        base = source_columns(node.source, ctx, declared)
        if node.kind == "delete":
            if base is None:
                return None
            dropped = {
                spec.name or ast.infer_column_name(spec.expr)
                for spec in node.columns
            }
            return [c for c in base if c not in dropped]
        if node.kind == "update":
            if base is None:
                return None
            extra = [
                n for n in template_output_names(node) if n not in base
            ]
            return base + extra
        # select: explicit columns (plus by-keys) define the output;
        # a bare `select from t` passes the source schema through
        if node.columns or node.by:
            return template_output_names(node)
        return base
    if isinstance(node, ast.TableExpr):
        return [name for name, __ in node.key_columns] + [
            name for name, __ in node.columns
        ]
    if isinstance(node, ast.BinOp):
        if node.op in ("lj", "ij", "uj"):
            left = source_columns(node.left, ctx, declared)
            right = source_columns(node.right, ctx, declared)
            if left is None or right is None:
                return None
            return left + [c for c in right if c not in left]
        if node.op in ("xasc", "xdesc", "xkey", "xcol", "!"):
            return source_columns(node.right, ctx, declared)
    if isinstance(node, ast.Apply) and isinstance(node.func, ast.Name):
        if node.func.name in ("aj", "aj0", "ej") and len(node.args) >= 3:
            sides = [
                source_columns(arg, ctx, declared)
                for arg in node.args[1:3]
                if arg is not None
            ]
            if len(sides) == 2 and all(s is not None for s in sides):
                left, right = sides
                return left + [c for c in right if c not in left]
            return None
        # indexing/application of a variable: shape unknown
        return None
    return None


@register
class UnboundNameRule(Rule):
    """QC001: a name resolves in no scope, no catalog, and no verb table.

    The binder discovers these one at a time at bind; statically we can
    report every unresolved reference up front, against the same scope
    hierarchy the binder will search (paper Figure 3).
    """

    code = "QC001"
    name = "unbound_name"
    purpose = "references that will fail scope/catalog resolution"
    default_severity = Severity.ERROR

    def check(self, statement, ctx):
        findings: list[Finding] = []
        self._visit(statement, ctx, set(ctx.declared), None, findings)
        return findings

    # ``columns``: names valid in the current template context, or None
    # outside templates; ``...`` ellipsis marks an *unknown* template
    # schema where column checks must be skipped entirely.
    def _visit(self, node, ctx, declared, columns, findings) -> None:
        if isinstance(node, ast.Name):
            self._check_name(node, ctx, declared, columns, findings)
            return
        if isinstance(node, ast.Assign):
            for index in node.indices:
                self._visit(index, ctx, declared, columns, findings)
            self._visit(node.value, ctx, declared, columns, findings)
            declared.add(node.target)
            return
        if isinstance(node, ast.Lambda):
            inner = declared | set(node.params)
            for body_statement in node.body:
                self._visit(body_statement, ctx, inner, None, findings)
                if isinstance(body_statement, ast.Assign):
                    inner.add(body_statement.target)
            return
        if isinstance(node, ast.Template):
            self._visit_template(node, ctx, declared, columns, findings)
            return
        if isinstance(node, ast.Apply):
            # a Name in function position is a verb, a scoped function,
            # or an indexed column of the enclosing template
            if isinstance(node.func, ast.Name):
                self._check_name(
                    node.func, ctx, declared, columns, findings
                )
            elif isinstance(node.func, ast.Node):
                self._visit(node.func, ctx, declared, columns, findings)
            for arg in node.args:
                if arg is not None:
                    self._visit(arg, ctx, declared, columns, findings)
            return
        if isinstance(node, ast.Statements):
            for statement in node.statements:
                self._visit(statement, ctx, declared, columns, findings)
                if isinstance(statement, ast.Assign):
                    declared.add(statement.target)
            return
        for child in iter_child_nodes(node):
            self._visit(child, ctx, declared, columns, findings)

    def _visit_template(self, node, ctx, declared, columns, findings):
        # the source expression is evaluated in the *enclosing* context
        self._visit(node.source, ctx, declared, columns, findings)
        inner = source_columns(node.source, ctx, declared)
        if inner is None:
            inner = Ellipsis  # unknown schema: skip column checks inside
        for spec in list(node.columns) + list(node.by):
            self._visit(spec.expr, ctx, declared, inner, findings)
        for conjunct in node.where:
            self._visit(conjunct, ctx, declared, inner, findings)
        if node.limit is not None:
            self._visit(node.limit, ctx, declared, columns, findings)

    def _check_name(self, node, ctx, declared, columns, findings):
        name = node.name
        if columns is Ellipsis:
            return  # enclosing schema unknown; stay silent
        if columns is not None and name in columns:
            return
        if name in declared or name in IMPLICIT_NAMES:
            return
        if name in BUILTIN_VERBS:
            return
        if ctx.names_anything(name):
            return
        where = (
            "is not a column of the query source and resolves in no scope"
            if columns is not None
            else "resolves in no scope"
        )
        findings.append(
            self.finding(
                f"name {name!r} {where} "
                "(searched local, session and server scopes, then the "
                "backend catalog)",
                pos=node.pos,
            )
        )


@register
class NullComparisonRule(Rule):
    """QC002: comparisons that lean on Q's two-valued null semantics.

    In Q a null equals a null; under SQL three-valued logic ``x = NULL``
    is never true.  The Xformer's two-valued-logic rule rewrites strict
    comparisons to ``IS NOT DISTINCT FROM`` (paper Section 4) — comparing
    against a null *literal* still deserves a warning (``null x`` is the
    robust spelling), and with the rewrite disabled every strict
    equality in a constraint is a semantic hazard.
    """

    code = "QC002"
    name = "null_comparison"
    purpose = "comparisons whose meaning changes under SQL 3VL"
    default_severity = Severity.WARNING

    def check(self, statement, ctx):
        findings: list[Finding] = []
        rewrite_on = True
        config = getattr(ctx.config, "xformer", None)
        if config is not None:
            rewrite_on = bool(getattr(config, "two_valued_logic", True))
        for node in walk_q(statement):
            if not isinstance(node, ast.BinOp):
                continue
            if node.op not in ("=", "<>"):
                continue
            if self._is_null_literal(node.left) or self._is_null_literal(
                node.right
            ):
                findings.append(
                    self.finding(
                        f"{node.op!r} against a null literal relies on Q's "
                        "two-valued null semantics; use `null x` (SQL "
                        "three-valued logic needs the IS NOT DISTINCT "
                        "FROM rewrite to preserve this)",
                        pos=node.pos,
                    )
                )
            elif not rewrite_on:
                findings.append(
                    self.finding(
                        f"strict {node.op!r} with the two-valued-logic "
                        "rewrite disabled follows SQL three-valued "
                        "logic: rows where either side is null are "
                        "dropped, unlike q",
                        pos=node.pos,
                    )
                )
        return findings

    @staticmethod
    def _is_null_literal(node) -> bool:
        return (
            isinstance(node, ast.Literal)
            and isinstance(node.value, QAtom)
            and node.value.is_null
        )


@register
class OrderDependenceRule(Rule):
    """QC003: order-dependent verbs where the implicit order is gone.

    Uniform/moving verbs (``sums``, ``prev``, ``mavg`` ...) are defined
    over the implicit row order (``ordcol``).  Grouped aggregation
    destroys that order (XtraGroupAgg derives no order column), so using
    such a verb in a grouped ``select``/``exec``, or over a source that is
    itself a grouped query, depends on an ordering the generated SQL does
    not guarantee — the exact hazard the order-elision rule reasons about.
    """

    code = "QC003"
    name = "order_dependence"
    purpose = "order-dependent verbs over inputs without implicit order"
    default_severity = Severity.WARNING

    def check(self, statement, ctx):
        findings: list[Finding] = []
        for node in walk_q(statement):
            if not isinstance(node, ast.Template):
                continue
            if node.kind not in ("select", "exec"):
                continue
            grouped = bool(node.by)
            unordered_source = self._is_grouped_template(node.source)
            if not grouped and not unordered_source:
                continue
            reason = (
                "inside a grouped select/exec"
                if grouped
                else "over a grouped subquery, whose output has no "
                "implicit order"
            )
            for spec in list(node.columns) + list(node.by):
                for verb, pos in self._order_dependent_uses(spec.expr):
                    findings.append(
                        self.finding(
                            f"order-dependent verb {verb!r} {reason}; "
                            "the translated SQL gives no ordering "
                            "guarantee for its window",
                            pos=pos,
                        )
                    )
        return findings

    @staticmethod
    def _is_grouped_template(node) -> bool:
        return isinstance(node, ast.Template) and bool(node.by)

    @staticmethod
    def _order_dependent_uses(expr):
        for node in walk_q(expr):
            if isinstance(node, ast.UnOp) and node.op in ORDER_DEPENDENT_VERBS:
                yield node.op, node.pos
            elif (
                isinstance(node, ast.Apply)
                and isinstance(node.func, ast.Name)
                and node.func.name in ORDER_DEPENDENT_VERBS
            ):
                yield node.func.name, node.func.pos
            elif (
                isinstance(node, ast.BinOp)
                and node.op in ORDER_DEPENDENT_VERBS
            ):
                yield node.op, node.pos


@register
class UntranslatableRule(Rule):
    """QC004: constructs with no XTRA mapping, classified up front.

    The paper (Section 5) distinguishes missing features with a SQL
    representation from features the backend cannot express; findings
    carry that ``category``.  Constructs the binder is *guaranteed* to
    reject (adverbs, signals, ``fills``) are marked ``fatal`` so the
    analyze pass can raise a structured
    :class:`repro.errors.UntranslatableError` before binding starts.
    """

    code = "QC004"
    name = "untranslatable"
    purpose = "constructs the translator cannot map to SQL"
    default_severity = Severity.ERROR

    def check(self, statement, ctx):
        findings: list[Finding] = []
        for node in walk_q(statement):
            if isinstance(node, ast.AdverbApply):
                verb = (
                    node.verb
                    if isinstance(node.verb, str)
                    else ast.node_name(node.verb)
                )
                findings.append(
                    self.finding(
                        f"adverb {node.adverb!r} on {verb!r} has no SQL "
                        "translation in the supported surface",
                        pos=node.pos,
                        category="missing-feature",
                        fatal=True,
                    )
                )
            elif isinstance(node, ast.Signal):
                findings.append(
                    self.finding(
                        "signal statements ('err) have no SQL "
                        "translation",
                        pos=node.pos,
                        category="missing-feature",
                        fatal=True,
                    )
                )
            elif self._is_fills(node):
                findings.append(
                    self.finding(
                        "fills needs a gap-filling subquery; outside "
                        "the supported surface",
                        pos=node.pos,
                        category="missing-feature",
                        fatal=True,
                    )
                )
            elif isinstance(node, ast.Assign) and node.op is not None:
                findings.append(
                    self.finding(
                        f"compound assignment {node.target}{node.op}: is "
                        "not translated; use a plain assignment",
                        pos=node.pos,
                        category="missing-feature",
                    )
                )
            elif isinstance(node, ast.Assign) and node.indices:
                findings.append(
                    self.finding(
                        f"indexed amend {node.target}[...]: is not "
                        "translated (no positional update in SQL)",
                        pos=node.pos,
                        category="no-sql-equivalent",
                    )
                )
            else:
                findings.extend(self._check_cast(node))
        return findings

    @staticmethod
    def _is_fills(node) -> bool:
        if isinstance(node, ast.UnOp) and node.op == "fills":
            return True
        return (
            isinstance(node, ast.Apply)
            and isinstance(node.func, ast.Name)
            and node.func.name == "fills"
        )

    def _check_cast(self, node):
        if not (isinstance(node, ast.BinOp) and node.op == "$"):
            return
        target = node.left
        if not (
            isinstance(target, ast.Literal)
            and isinstance(target.value, QAtom)
            and isinstance(target.value.value, str)
        ):
            return
        name = target.value.value
        if name and name not in SUPPORTED_CAST_TARGETS:
            yield self.finding(
                f"cast to `{name} has no SQL equivalent "
                "(paper Section 5, limitation category 2)",
                pos=node.pos,
                category="no-sql-equivalent",
            )


@register
class ColumnUsageRule(Rule):
    """QC005: column-usage hazards and pruning opportunities.

    Duplicate output names in one template shadow each other in the
    translated SQL result; and an explicit projection over a ``uj`` union
    is a pruning opportunity the Xformer documentedly skips (pruning is
    not pushed below unions), so both inputs are fetched whole.
    """

    code = "QC005"
    name = "column_usage"
    purpose = "duplicate outputs and pruning the xformer misses"
    default_severity = Severity.WARNING

    def check(self, statement, ctx):
        findings: list[Finding] = []
        for node in walk_q(statement):
            if not isinstance(node, ast.Template):
                continue
            names = template_output_names(node)
            seen: set[str] = set()
            for name in names:
                if name in seen:
                    findings.append(
                        self.finding(
                            f"template produces column {name!r} more "
                            "than once; the later definition shadows "
                            "the earlier one",
                            pos=node.pos,
                        )
                    )
                seen.add(name)
            if (
                node.kind == "select"
                and node.columns
                and isinstance(node.source, ast.BinOp)
                and node.source.op == "uj"
            ):
                findings.append(
                    self.finding(
                        "projection over a uj union: column pruning is "
                        "not pushed below unions, so both inputs are "
                        "fetched in full",
                        pos=node.pos,
                        severity=Severity.INFO,
                    )
                )
        return findings


@register
class ShadowingRule(Rule):
    """QC006: an assignment target shadows a backend relation.

    ``trades: ...`` at session level hides the backend ``trades`` table
    for the rest of the session (scope resolution wins over the catalog),
    which is almost never what an interactive user intends.
    """

    code = "QC006"
    name = "relation_shadowing"
    purpose = "assignments hiding backend tables behind session variables"
    default_severity = Severity.WARNING

    def check(self, statement, ctx):
        if not isinstance(statement, ast.Assign):
            return []
        if ctx.mdi is None:
            return []
        target = statement.target
        if ctx.lookup(target) is not None:
            definition = ctx.lookup(target)
            if definition.kind in (VarKind.TABLE, VarKind.VIEW):
                return []  # re-assigning an existing variable is normal
        if self.mdi_has_table(ctx, target):
            return [
                self.finding(
                    f"assignment to {target!r} shadows the backend "
                    "relation of the same name for the rest of the "
                    "session",
                    pos=statement.pos,
                )
            ]
        return []

    @staticmethod
    def mdi_has_table(ctx, name: str) -> bool:
        return ctx.mdi.lookup_table(name) is not None


@register
class ShardOrderRule(Rule):
    """QC007: order-dependent takes over a *sharded* source.

    Single-node q gives every table a stable implicit row order, so
    ``first``/``last``, ``n#t`` takes and ``t[til n]`` indexing are
    deterministic.  Once the distribute pass scatters the source table
    across shards, the gathered rows arrive in shard-completion order —
    nondeterministic run to run — so those constructs silently return
    different rows unless an explicit ``xasc``/``xdesc`` pins the order
    first.  Fires only when the session's MDI reports a partition map
    that actually partitions the table the construct reads.
    """

    code = "QC007"
    name = "shard_order_dependence"
    purpose = "first/last/take over sharded tables need an explicit sort"
    default_severity = Severity.WARNING

    def check(self, statement, ctx):
        pmap = ctx.mdi.partition_map if ctx.mdi is not None else None
        if pmap is None or not pmap.tables:
            return []
        findings: list[Finding] = []
        for node in walk_q(statement):
            for label, operand, pos in self._constructs(node):
                table = self._partitioned_base(operand, pmap)
                if table is None or self._sorted(operand):
                    continue
                findings.append(
                    self.finding(
                        f"order-dependent {label} over {table!r}, which "
                        f"is partitioned across {pmap.shard_count} "
                        "shards — gathered row order is "
                        "nondeterministic; sort explicitly (xasc/xdesc) "
                        "before taking",
                        pos=pos,
                    )
                )
        return findings

    @staticmethod
    def _constructs(node):
        """(label, order-sensitive operand, pos) triples rooted here."""
        if isinstance(node, ast.Apply) and isinstance(node.func, ast.Name):
            if node.func.name in ("first", "last") and node.args:
                yield f"{node.func.name} ...", node.args[0], node.pos
            elif (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Apply)
                and isinstance(node.args[0].func, ast.Name)
                and node.args[0].func.name == "til"
            ):
                yield "til-indexed take", node.func, node.pos
        elif isinstance(node, ast.BinOp) and node.op == "#":
            yield "take (#)", node.right, node.pos
        elif isinstance(node, ast.Template):
            if node.kind not in ("select", "exec"):
                return
            if node.limit is not None:
                yield f"select[{node.limit}] limit", node.source, node.pos
            for spec in node.columns:
                for inner in walk_q(spec.expr):
                    if (
                        isinstance(inner, ast.Apply)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.name in ("first", "last")
                    ):
                        yield (
                            f"aggregate {inner.func.name!r}",
                            node.source,
                            inner.pos,
                        )

    @staticmethod
    def _partitioned_base(operand, pmap) -> str | None:
        """The partitioned table the operand ultimately reads, if any."""
        for node in walk_q(operand):
            if isinstance(node, ast.Name) and pmap.is_partitioned(node.name):
                return node.name
        return None

    @staticmethod
    def _sorted(operand) -> bool:
        """Whether an explicit xasc/xdesc pins the operand's row order."""
        return any(
            isinstance(node, ast.BinOp) and node.op in ("xasc", "xdesc")
            for node in walk_q(operand)
        )
