"""The qcheck rule framework: findings, rules, and the analyzer driver.

The paper's binder is deliberately untyped ("lightweight parser, no
typing", Section 3), so a bad query normally surfaces deep inside
bind/serialize — or as a behavioral divergence at the backend.  qcheck
vets the Q AST *before* binding: each :class:`Rule` walks one top-level
statement and reports :class:`Finding` records without executing
anything.  The same ``Finding`` shape is shared with the repo-level lint
rules (``scripts/lint_rules/``) so Q-level and Python-level diagnostics
render and aggregate identically.

Rules register themselves with :func:`register` at import time — the same
discovery pattern as the Xformer rules — and :func:`default_rules` returns
one fresh instance of each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterable

from repro.core.metadata import MetadataInterface
from repro.core.scopes import Scope, VarKind
from repro.errors import QError
from repro.qlang import ast
from repro.qlang.parser import parse


class Severity(IntEnum):
    """Ordered severities; CI fails only on ERROR findings."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass
class Finding:
    """One diagnostic, from a Q rule (``QC0xx``) or a repo rule (``HQ00x``).

    ``pos`` is a source offset for Q findings; ``path``/``line`` locate
    repo-lint findings.  ``fatal`` marks QC004 findings the analyze pass
    escalates to :class:`repro.errors.UntranslatableError`.
    """

    code: str
    message: str
    severity: Severity = Severity.WARNING
    rule: str = ""
    pos: int = -1
    line: int = -1
    path: str = ""
    category: str = ""
    fatal: bool = False

    def render(self) -> str:
        where = ""
        if self.path:
            where = f"{self.path}:{self.line if self.line >= 0 else '?'}: "
        elif self.pos >= 0:
            where = f"pos {self.pos}: "
        return f"{where}{self.code} [{self.severity.label}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "rule": self.rule,
            "pos": self.pos,
            "line": self.line,
            "path": self.path,
            "category": self.category,
        }


def iter_child_nodes(node: ast.Node) -> Iterable[ast.Node]:
    """The direct AST children of ``node`` (skipping None / non-nodes)."""
    if isinstance(node, ast.UnOp):
        yield node.operand
    elif isinstance(node, ast.BinOp):
        yield node.left
        yield node.right
    elif isinstance(node, ast.Apply):
        if isinstance(node.func, ast.Node):
            yield node.func
        for arg in node.args:
            if arg is not None:
                yield arg
    elif isinstance(node, ast.AdverbApply):
        if isinstance(node.verb, ast.Node):
            yield node.verb
    elif isinstance(node, ast.Assign):
        yield from node.indices
        yield node.value
    elif isinstance(node, ast.Lambda):
        yield from node.body
    elif isinstance(node, ast.Cond):
        yield from node.branches
    elif isinstance(node, ast.ListExpr):
        yield from node.items
    elif isinstance(node, ast.TableExpr):
        for __, expr in node.key_columns:
            yield expr
        for __, expr in node.columns:
            yield expr
    elif isinstance(node, ast.Template):
        for spec in node.columns:
            yield spec.expr
        for spec in node.by:
            yield spec.expr
        yield node.source
        yield from node.where
        if node.limit is not None:
            yield node.limit
    elif isinstance(node, (ast.Return, ast.Signal)):
        yield node.value
    elif isinstance(node, ast.Statements):
        yield from node.statements


def walk_q(node: ast.Node) -> Iterable[ast.Node]:
    """Depth-first pre-order traversal of a Q AST."""
    yield node
    for child in iter_child_nodes(node):
        yield from walk_q(child)


@dataclass
class AnalysisContext:
    """What a rule may consult: scope chain, MDI, config, prior targets.

    ``declared`` accumulates assignment targets from earlier statements in
    the same message (and lambda parameters during descent) — names that
    *will* be bound by the time the statement executes, without the
    analyzer executing anything.
    """

    mdi: MetadataInterface | None = None
    scope: Scope | None = None
    config: object | None = None
    declared: set[str] = field(default_factory=set)

    def lookup(self, name: str):
        if self.scope is None:
            return None
        return self.scope.lookup(name)

    def table_columns(self, name: str) -> list[str] | None:
        """Data column names of a table-valued name, or None if unknown."""
        definition = self.lookup(name)
        if definition is not None:
            if definition.kind in (VarKind.TABLE, VarKind.VIEW):
                if definition.meta is not None:
                    return [c.name for c in definition.meta.data_columns]
                name = definition.relation or name
            else:
                return None
        if self.mdi is not None:
            meta = self.mdi.lookup_table(name)
            if meta is not None:
                return [c.name for c in meta.data_columns]
        return None

    def names_anything(self, name: str) -> bool:
        """Whether ``name`` resolves to *some* binding (any kind)."""
        if name in self.declared:
            return True
        if self.lookup(name) is not None:
            return True
        return self.mdi is not None and self.mdi.lookup_table(name) is not None


class Rule:
    """One qcheck rule; subclasses override :meth:`check`.

    ``check`` receives one top-level statement and the context; it must
    not mutate either (``ctx.declared`` is updated by the driver).
    """

    code = "QC000"
    name = "rule"
    purpose = ""
    default_severity = Severity.WARNING
    enabled = True

    def check(
        self, statement: ast.Node, ctx: AnalysisContext
    ) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, message: str, *, pos: int = -1, **kw) -> Finding:
        kw.setdefault("severity", self.default_severity)
        return Finding(self.code, message, rule=self.name, pos=pos, **kw)


_RULES: list[type[Rule]] = []


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the default registry."""
    _RULES.append(rule_class)
    return rule_class


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in registration order."""
    from repro.analysis import qcheck  # noqa: F401  (registration import)

    return [rule_class() for rule_class in _RULES]


class QueryAnalyzer:
    """Runs the qcheck rules over Q source or parsed statements.

    Stateless across calls (like the pipeline, the active scope is passed
    per call), so one analyzer can serve a whole session or a whole batch
    corpus run.
    """

    def __init__(
        self,
        mdi: MetadataInterface | None = None,
        config: object | None = None,
        rules: list[Rule] | None = None,
    ):
        self.mdi = mdi
        self.config = config
        self.rules = rules if rules is not None else default_rules()

    def analyze_statement(
        self,
        statement: ast.Node,
        scope: Scope | None = None,
        declared: set[str] | None = None,
    ) -> list[Finding]:
        """Findings for one top-level statement."""
        ctx = AnalysisContext(
            mdi=self.mdi,
            scope=scope,
            config=self.config,
            declared=set(declared or ()),
        )
        findings: list[Finding] = []
        for rule in self.rules:
            if rule.enabled:
                findings.extend(rule.check(statement, ctx))
        return findings

    def analyze(
        self, node: ast.Node, scope: Scope | None = None
    ) -> list[Finding]:
        """Findings for a whole message (a :class:`ast.Statements`)."""
        statements = (
            node.statements if isinstance(node, ast.Statements) else [node]
        )
        findings: list[Finding] = []
        declared: set[str] = set()
        for statement in statements:
            findings.extend(
                self.analyze_statement(statement, scope, declared)
            )
            if isinstance(statement, ast.Assign):
                declared.add(statement.target)
        return findings

    def analyze_source(
        self, text: str, scope: Scope | None = None
    ) -> list[Finding]:
        """Parse ``text`` and analyze it; parse errors become QC000."""
        try:
            parsed = parse(text)
        except QError as exc:
            return [
                Finding(
                    "QC000",
                    f"parse error: {exc}",
                    severity=Severity.ERROR,
                    rule="parse",
                )
            ]
        return self.analyze(parsed, scope)
