"""Value comparators for the side-by-side testing framework.

Exact type identity between kdb+ and a SQL round trip is impossible — Q
ints come back as bigints, minutes come back as times — so comparison
normalizes values to *equivalence classes* before comparing:

* numeric values compare with a relative tolerance;
* temporal values are converted to a canonical unit per kind;
* symbol and string payloads compare as text;
* tables compare column-by-column in row order (Q order is load-bearing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.qlang.qtypes import QType
from repro.qlang.values import (
    QAtom,
    QDict,
    QKeyedTable,
    QList,
    QTable,
    QValue,
    QVector,
)

REL_TOLERANCE = 1e-9
ABS_TOLERANCE = 1e-12

#: canonical-unit scale per temporal type -> milliseconds / days
_TEMPORAL_SCALE = {
    QType.MINUTE: ("intraday", 60_000),
    QType.SECOND: ("intraday", 1_000),
    QType.TIME: ("intraday", 1),
    QType.TIMESTAMP: ("nanos", 1),
    QType.TIMESPAN: ("nanos", 1),
    QType.DATE: ("days", 1),
    QType.MONTH: ("months", 1),
}


@dataclass
class Comparison:
    match: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.match


def mismatch(reason: str) -> Comparison:
    return Comparison(False, reason)


MATCH = Comparison(True)


def _kind(qtype: QType) -> str:
    if qtype in _TEMPORAL_SCALE:
        return _TEMPORAL_SCALE[qtype][0]
    if qtype in (QType.SYMBOL, QType.CHAR):
        return "text"
    if qtype == QType.BOOLEAN:
        return "bool"
    if qtype.is_numeric:
        return "number"
    return qtype.name


def _canonical(qtype: QType, raw):
    if qtype.is_null(raw):
        return None
    if isinstance(raw, float) and math.isnan(raw):
        return None
    scale = _TEMPORAL_SCALE.get(qtype)
    if scale is not None:
        return raw * scale[1]
    if qtype == QType.BOOLEAN:
        return bool(raw)
    return raw


def _values_equal(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, bool) or isinstance(b, bool):
        return bool(a) == bool(b)
    if isinstance(a, str) or isinstance(b, str):
        return str(a) == str(b)
    fa, fb = float(a), float(b)
    if fa == fb:
        return True
    return abs(fa - fb) <= max(
        ABS_TOLERANCE, REL_TOLERANCE * max(abs(fa), abs(fb))
    )


def compare_atoms(a: QAtom, b: QAtom, path: str = "") -> Comparison:
    if _kind(a.qtype) != _kind(b.qtype):
        return mismatch(
            f"{path}: type kinds differ ({a.qtype.name} vs {b.qtype.name})"
        )
    if not _values_equal(_canonical(a.qtype, a.value), _canonical(b.qtype, b.value)):
        return mismatch(f"{path}: {a.value!r} != {b.value!r}")
    return MATCH


def compare_vectors(a: QVector, b: QVector, path: str = "") -> Comparison:
    if len(a) != len(b):
        return mismatch(f"{path}: lengths differ ({len(a)} vs {len(b)})")
    if _kind(a.qtype) != _kind(b.qtype):
        return mismatch(
            f"{path}: type kinds differ ({a.qtype.name} vs {b.qtype.name})"
        )
    for i, (x, y) in enumerate(zip(a.items, b.items)):
        if not _values_equal(_canonical(a.qtype, x), _canonical(b.qtype, y)):
            return mismatch(f"{path}[{i}]: {x!r} != {y!r}")
    return MATCH


def compare_values(a: QValue, b: QValue, path: str = "value") -> Comparison:
    """Structural comparison under the normalization rules."""
    # a char-vector (string) on one side vs a symbol on the other: both are
    # text payloads after a SQL round trip
    a, b = _normalize_text(a), _normalize_text(b)

    if isinstance(a, QAtom) and isinstance(b, QAtom):
        return compare_atoms(a, b, path)
    if isinstance(a, QVector) and isinstance(b, QVector):
        return compare_vectors(a, b, path)
    if isinstance(a, QList) and isinstance(b, QList):
        if len(a) != len(b):
            return mismatch(f"{path}: list lengths differ")
        for i, (x, y) in enumerate(zip(a.items, b.items)):
            result = compare_values(x, y, f"{path}[{i}]")
            if not result:
                return result
        return MATCH
    if isinstance(a, QTable) and isinstance(b, QTable):
        return compare_tables(a, b, path)
    if isinstance(a, QKeyedTable) and isinstance(b, QKeyedTable):
        key_cmp = compare_tables(a.key, b.key, f"{path}.key")
        if not key_cmp:
            return key_cmp
        return compare_tables(a.value, b.value, f"{path}.value")
    if isinstance(a, QDict) and isinstance(b, QDict):
        keys = compare_values(a.keys, b.keys, f"{path}.keys")
        if not keys:
            return keys
        return compare_values(a.values, b.values, f"{path}.values")
    # one side vector, other list (e.g. general list of atoms): align
    if isinstance(a, (QVector, QList)) and isinstance(b, (QVector, QList)):
        if len(a) != len(b):
            return mismatch(f"{path}: lengths differ")
        for i in range(len(a)):
            result = compare_values(
                a.atom_at(i), b.atom_at(i), f"{path}[{i}]"
            )
            if not result:
                return result
        return MATCH
    return mismatch(
        f"{path}: shapes differ ({type(a).__name__} vs {type(b).__name__})"
    )


def _normalize_text(value: QValue) -> QValue:
    """A q string (char vector) normalizes to a symbol atom for text
    comparison after SQL round trips."""
    if isinstance(value, QVector) and value.qtype == QType.CHAR:
        return QAtom(QType.SYMBOL, "".join(value.items))
    return value


def compare_tables(a: QTable, b: QTable, path: str = "table") -> Comparison:
    if list(a.columns) != list(b.columns):
        return mismatch(
            f"{path}: column sets differ ({a.columns} vs {b.columns})"
        )
    if len(a) != len(b):
        return mismatch(f"{path}: row counts differ ({len(a)} vs {len(b)})")
    for name in a.columns:
        result = compare_values(
            a.column(name), b.column(name), f"{path}.{name}"
        )
        if not result:
            return result
    return MATCH
