"""Side-by-side testing framework (paper Section 5).

    "As we implemented features from the customer workload, we needed a
    way to ensure the exact same behavior to the application as before.
    For this purpose we built a side-by-side testing framework ..."

The harness loads identical data into the reference Q interpreter (playing
kdb+) and into Hyper-Q's backend, runs each query on both sides, and
compares the application-visible results under the comparator rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import HyperQConfig
from repro.core.platform import HyperQ
from repro.errors import ReproError
from repro.qlang.interp import Interpreter
from repro.qlang.values import QValue
from repro.testing.comparators import Comparison, compare_values, mismatch
from repro.workload.loader import load_q_source


@dataclass
class CaseResult:
    query: str
    comparison: Comparison
    q_value: QValue | None = None
    hq_value: QValue | None = None
    q_error: str | None = None
    hq_error: str | None = None

    @property
    def passed(self) -> bool:
        return bool(self.comparison)


@dataclass
class SuiteReport:
    results: list[CaseResult] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.passed)

    @property
    def failed(self) -> int:
        return len(self.results) - self.passed

    def failures(self) -> list[CaseResult]:
        return [r for r in self.results if not r.passed]

    def summary(self) -> str:
        lines = [f"{self.passed}/{len(self.results)} queries matched"]
        for result in self.failures():
            lines.append(f"  FAIL {result.query!r}: {result.comparison.reason}")
        return "\n".join(lines)


class SideBySideHarness:
    """Runs Q queries on both the reference interpreter and Hyper-Q."""

    def __init__(
        self,
        source: str,
        tables: list[str],
        config: HyperQConfig | None = None,
    ):
        self.interp = Interpreter()
        self.hyperq = HyperQ(config=config)
        load_q_source(
            self.hyperq.engine, self.interp, source, tables, mdi=self.hyperq.mdi
        )

    def check(self, query: str) -> CaseResult:
        """Run ``query`` on both sides and compare."""
        q_value = hq_value = None
        q_error = hq_error = None
        try:
            q_value = self.interp.eval_text(query)
        except ReproError as exc:
            q_error = f"{type(exc).__name__}: {exc}"
        session = self.hyperq.create_session()
        try:
            hq_value = session.execute(query)
        except ReproError as exc:
            hq_error = f"{type(exc).__name__}: {exc}"
        finally:
            session.close()

        if q_error is not None and hq_error is not None:
            comparison = Comparison(True, "both sides errored")
        elif q_error is not None:
            comparison = mismatch(f"only kdb+ side errored: {q_error}")
        elif hq_error is not None:
            comparison = mismatch(f"only Hyper-Q side errored: {hq_error}")
        elif q_value is None and hq_value is None:
            comparison = Comparison(True, "both sides returned nothing")
        elif q_value is None or hq_value is None:
            comparison = mismatch("one side returned nothing")
        else:
            comparison = compare_values(q_value, hq_value)
        return CaseResult(query, comparison, q_value, hq_value, q_error, hq_error)

    def run_suite(self, queries: list[str]) -> SuiteReport:
        report = SuiteReport()
        for query in queries:
            report.results.append(self.check(query))
        return report
