"""Exception hierarchy for the Hyper-Q reproduction.

kdb+ reports errors as terse single-quote signals (``'type``, ``'length``,
``'rank`` ...).  The paper notes (Section 5) that Hyper-Q deliberately
improves on this with verbose, informative messages.  We keep both: every
exception carries the terse kdb+ ``signal`` for side-by-side compatibility
plus a human-readable message.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class QError(ReproError):
    """An error with kdb+-style signal semantics.

    Parameters
    ----------
    message:
        Verbose human-readable description (the Hyper-Q improvement).
    signal:
        The terse kdb+ signal name, e.g. ``type`` or ``length``.  Rendered
        as ``'type`` the way a kdb+ console would print it.
    """

    default_signal = "error"

    def __init__(self, message: str, signal: str | None = None):
        super().__init__(message)
        self.signal = signal or self.default_signal

    @property
    def terse(self) -> str:
        """The kdb+ console rendering of this error, e.g. ``'type``."""
        return f"'{self.signal}"


class QSyntaxError(QError):
    """The Q query text could not be tokenized or parsed."""

    default_signal = "parse"


class QTypeError(QError):
    """Operands of an operation have incompatible Q types."""

    default_signal = "type"


class QLengthError(QError):
    """Pairwise operation on lists of differing lengths."""

    default_signal = "length"


class QRankError(QError):
    """A function was applied to the wrong number of arguments."""

    default_signal = "rank"


class QDomainError(QError):
    """An argument is outside the domain of the operation."""

    default_signal = "domain"


class QNameError(QError):
    """A variable reference could not be resolved in any scope."""

    default_signal = "value"


class QNotSupportedError(QError):
    """The Q construct is valid but outside the supported surface.

    The paper (Section 5) distinguishes (1) missing features with a SQL
    representation and (2) features PG cannot express without extensions;
    ``category`` records which bucket a limitation falls in.
    """

    default_signal = "nyi"

    def __init__(self, message: str, category: str = "missing-feature"):
        super().__init__(message)
        self.category = category


class UntranslatableError(QNotSupportedError):
    """Static analysis proved the statement untranslatable before binding.

    Raised by the ``analyze`` pipeline pass (QC004) so constructs with no
    XTRA mapping fail fast, with the same ``signal``/``category`` contract
    as :class:`QNotSupportedError`.  ``code`` is the analysis rule code
    (``QC004``) and ``construct`` names the offending syntax.
    """

    def __init__(self, message: str, category: str = "missing-feature",
                 construct: str = ""):
        super().__init__(message, category=category)
        self.code = "QC004"
        self.construct = construct


class SqlError(ReproError):
    """Base class for errors raised by the SQL engine substrate."""


class SqlSyntaxError(SqlError):
    """SQL text could not be parsed."""


class SqlCatalogError(SqlError):
    """Unknown table/column/function, or a conflicting definition."""


class SqlTypeError(SqlError):
    """SQL expression typing failure."""


class SqlExecutionError(SqlError):
    """Runtime failure while executing a plan."""


class BackendSqlError(SqlExecutionError):
    """A backend rejected SQL over the wire.

    Carries the PG ``ErrorResponse`` details — SQLSTATE ``code`` and
    ``severity`` — so sessions and clients see *why* the backend failed,
    not a generic failure (paper Section 5's verbose-errors stance).
    """

    def __init__(self, message: str, code: str = "XX000",
                 severity: str = "ERROR"):
        super().__init__(f"{severity} {code}: {message}")
        self.code = code
        self.severity = severity
        self.backend_message = message


class PoolTimeoutError(ReproError):
    """No pooled backend connection became free within the timeout."""


class WlmShedError(QError):
    """Admission control shed the request instead of letting it hang.

    Raised by :class:`repro.wlm.admission.AdmissionController` when a
    query class is at its concurrency quota and its queue is full (or the
    enqueue deadline passed).  Reaches QIPC clients as the structured
    ``'wlm-shed`` signal — a fast, explicit "try again later", never a
    stalled socket.  ``query_class`` and ``reason`` (``queue-full`` /
    ``timeout`` / ``deadline``) say exactly what was exhausted.
    """

    default_signal = "wlm-shed"

    def __init__(self, message: str, query_class: str = "",
                 reason: str = ""):
        super().__init__(message)
        self.query_class = query_class
        self.reason = reason


class DeadlineExceededError(QError):
    """A request overran its :class:`repro.wlm.deadline.Deadline`.

    Raised cooperatively by pipeline passes and :class:`DirectGateway`,
    and via socket timeouts by :class:`NetworkGateway`.  ``what`` names
    the stage that noticed (``pass.bind``, ``backend.execute``, ...).
    """

    default_signal = "wlm-deadline"

    def __init__(self, message: str, what: str = ""):
        super().__init__(message)
        self.what = what


class CircuitOpenError(QError):
    """A backend's circuit breaker is open: fail fast, do not enqueue.

    Carries ``backend`` (the breaker's name) and ``retry_after`` — the
    seconds until the breaker half-opens and probes recovery.
    """

    default_signal = "wlm-open"

    def __init__(self, message: str, backend: str = "",
                 retry_after: float = 0.0):
        super().__init__(message)
        self.backend = backend
        self.retry_after = retry_after


class ProtocolError(ReproError):
    """Malformed wire-protocol traffic (QIPC or PG v3)."""


class AuthenticationError(ProtocolError):
    """Connection-time authentication failure."""


class TranslationError(ReproError):
    """Hyper-Q could not translate a bound XTRA tree to SQL."""


class InvariantError(TranslationError):
    """A pipeline pass produced an XTRA tree violating a checked invariant.

    Carries ``pass_name`` — the pass whose *output* failed the check — so
    a broken xformer rule is attributed to ``xform``, not to whichever
    later stage happened to trip over the damage.  ``violations`` holds the
    :class:`repro.analysis.invariants.InvariantViolation` records.
    """

    def __init__(self, message: str, pass_name: str, violations=()):
        super().__init__(message)
        self.pass_name = pass_name
        self.violations = list(violations)


class MetadataError(ReproError):
    """Metadata interface lookup failure."""
