"""Abstract syntax tree for Q queries.

The parser is *lightweight* (paper Section 3.2.1): nodes carry no type
information.  Variable references stay unresolved; the binder (or the
reference interpreter) resolves them against the scope hierarchy.

Node inventory mirrors the paper's list: literals, variables, monadic and
dyadic operators, join operators, variable assignments — plus the
select/exec/update/delete templates, lambdas and conditionals needed for
realistic workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.qlang.values import QValue


@dataclass
class Node:
    """Base AST node; ``pos`` is the source offset for error messages."""

    pos: int = field(default=0, kw_only=True)


@dataclass
class Literal(Node):
    """A constant: number, symbol, string, or merged literal vector."""

    value: QValue


@dataclass
class Name(Node):
    """An unresolved variable reference, e.g. ``trades``."""

    name: str


@dataclass
class UnOp(Node):
    """Monadic application of a primitive verb, e.g. ``-x`` or ``#:x``."""

    op: str
    operand: Node


@dataclass
class BinOp(Node):
    """Dyadic verb application ``left op right``.

    Q evaluates strictly right-to-left with no precedence, which the parser
    encodes by always right-associating: ``2*3+4`` parses as
    ``BinOp('*', 2, BinOp('+', 3, 4))``.
    """

    op: str
    left: Node
    right: Node


@dataclass
class Apply(Node):
    """Function application / indexing: ``f[x;y]`` or juxtaposed ``f x``.

    Q does not distinguish indexing from application, so ``t[2]`` and
    ``f[2]`` are both Apply nodes; the binder decides from the callee type.
    Elided arguments (projections like ``f[;2]``) appear as ``None``.
    """

    func: Node
    args: list[Node | None]


@dataclass
class AdverbApply(Node):
    """A verb modified by an adverb: ``+/``, ``f'``, ``f\\:`` ...

    ``verb`` may be an operator name (str) or any callable-valued node.
    """

    verb: Node | str
    adverb: str


@dataclass
class Assign(Node):
    """Assignment ``x: expr`` (op is None) or compound ``x+: expr``.

    ``indices`` is non-empty for indexed amend ``x[i]: v``.
    ``global_scope`` marks ``x:: expr`` which always writes the session/
    server scope even from inside a function body.
    """

    target: str
    value: Node
    op: str | None = None
    indices: list[Node] = field(default_factory=list)
    global_scope: bool = False


@dataclass
class Lambda(Node):
    """Function literal ``{[a;b] stmt1; stmt2}``.

    When the parameter list is omitted, q provides implicit parameters
    ``x``, ``y``, ``z``; the parser performs that inference.
    """

    params: list[str]
    body: list[Node]
    source: str = ""


@dataclass
class Cond(Node):
    """``$[c; t; f]`` conditional evaluation (also n-ary cond chains)."""

    branches: list[Node]


@dataclass
class ListExpr(Node):
    """Parenthesized list construction ``(a; b; c)``."""

    items: list[Node]


@dataclass
class TableExpr(Node):
    """Table literal ``([] c1:expr1; c2:expr2)`` with optional key columns."""

    key_columns: list[tuple[str, Node]]
    columns: list[tuple[str, Node]]


@dataclass
class ColumnSpec:
    """One entry of a template's select/by list: optional name + expression.

    When ``name`` is None the binder infers it (q uses the last identifier
    of the expression, falling back to ``x``).
    """

    name: str | None
    expr: Node


@dataclass
class Template(Node):
    """A select/exec/update/delete template.

    ``kind`` is one of ``select``/``exec``/``update``/``delete``;
    ``where`` holds the comma-separated constraint conjuncts in order
    (q applies them left to right, each filtering the previous result).
    """

    kind: str
    columns: list[ColumnSpec]
    by: list[ColumnSpec]
    source: Node
    where: list[Node]
    limit: Node | None = None  # select[n] — first n rows


@dataclass
class Return(Node):
    """Early return ``:expr`` inside a function body."""

    value: Node


@dataclass
class Signal(Node):
    """``'err`` — raise a signal."""

    value: Node


@dataclass
class Statements(Node):
    """A whole query message: ``;``-separated top-level statements."""

    statements: list[Node]


def node_name(node: Node) -> str:
    """Short display name for diagnostics."""
    return type(node).__name__


def infer_column_name(expr: Node, fallback: str = "x") -> str:
    """q's rule for unnamed template columns: the last identifier wins.

    ``select max Price from t`` yields a column called ``Price``.
    """
    if isinstance(expr, Name):
        return expr.name.rsplit(".", 1)[-1]
    if isinstance(expr, UnOp):
        return infer_column_name(expr.operand, fallback)
    if isinstance(expr, BinOp):
        return infer_column_name(expr.right, fallback)
    if isinstance(expr, Apply):
        for arg in reversed(expr.args):
            if arg is not None:
                return infer_column_name(arg, fallback)
        return infer_column_name(expr.func, fallback)
    if isinstance(expr, AdverbApply) and isinstance(expr.verb, Node):
        return infer_column_name(expr.verb, fallback)
    return fallback
