"""The Q data model: atoms, vectors, general lists, dictionaries, tables.

Q is a list-processing language; every compound structure is built from
ordered lists (the paper stresses that ordering is a first-class citizen).
We model values as a small closed class hierarchy:

* :class:`QAtom` — a scalar with a :class:`~repro.qlang.qtypes.QType`
* :class:`QVector` — a homogeneous typed list (raw Python payloads)
* :class:`QList` — a heterogeneous "general" list of :class:`QValue`
* :class:`QDict` — ordered key/value mapping between two lists
* :class:`QTable` — a flipped dictionary of column vectors
* :class:`QKeyedTable` — a dictionary between two tables
* :class:`QLambda` — a function literal (AST captured, not compiled)

Raw vector payloads are plain Python scalars; temporal types carry their
kdb+ integer encodings (see :mod:`repro.qlang.qtypes`).  Null handling is
everywhere *two-valued*: a null equals a null.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from repro.errors import QLengthError, QTypeError
from repro.qlang.qtypes import QType


class QValue:
    """Abstract base for all Q runtime values."""

    __slots__ = ()

    #: kdb+ signed type code; overridden per subclass.
    @property
    def qcode(self) -> int:
        raise NotImplementedError

    @property
    def is_atom(self) -> bool:
        return False

    @property
    def is_list_like(self) -> bool:
        """True for anything indexable by position (vector/list/table)."""
        return False

    def __eq__(self, other) -> bool:  # structural equality, q's ~ (match)
        return q_match(self, other) if isinstance(other, QValue) else NotImplemented

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __hash__(self):
        raise TypeError(f"{type(self).__name__} is not hashable")


def raw_equal(qtype: QType, a, b) -> bool:
    """Two-valued equality on raw payloads: null matches null (q semantics)."""
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return a == b


class QAtom(QValue):
    """A scalar Q value, e.g. ``7`` (long), `` `GOOG`` (symbol)."""

    __slots__ = ("qtype", "value")

    def __init__(self, qtype: QType, value):
        self.qtype = qtype
        self.value = value

    @property
    def qcode(self) -> int:
        return -self.qtype.code

    @property
    def is_atom(self) -> bool:
        return True

    @property
    def is_null(self) -> bool:
        return self.qtype.is_null(self.value)

    def __repr__(self):
        return f"QAtom({self.qtype.name.lower()}, {self.value!r})"

    def __hash__(self):
        v = self.value
        if isinstance(v, float) and math.isnan(v):
            v = "0n"
        return hash((self.qtype, v))

    def __eq__(self, other):
        if not isinstance(other, QValue):
            return NotImplemented
        return (
            isinstance(other, QAtom)
            and other.qtype == self.qtype
            and raw_equal(self.qtype, self.value, other.value)
        )


class QVector(QValue):
    """A homogeneous typed list; payloads are raw Python scalars."""

    __slots__ = ("qtype", "items")

    def __init__(self, qtype: QType, items: Iterable):
        self.qtype = qtype
        self.items = list(items)

    @property
    def qcode(self) -> int:
        return self.qtype.code

    @property
    def is_list_like(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[QAtom]:
        qtype = self.qtype
        return (QAtom(qtype, raw) for raw in self.items)

    def atom_at(self, index: int) -> QAtom:
        return QAtom(self.qtype, self.items[index])

    def take(self, indices: Sequence[int]) -> "QVector":
        """Index the vector by a list of positions; -like q's ``x idx``."""
        null = self.qtype.null_value()
        n = len(self.items)
        picked = [self.items[i] if 0 <= i < n else null for i in indices]
        return QVector(self.qtype, picked)

    def __repr__(self):
        return f"QVector({self.qtype.name.lower()}, {self.items!r})"

    def __eq__(self, other):
        if not isinstance(other, QValue):
            return NotImplemented
        if not isinstance(other, QVector):
            return False
        if other.qtype != self.qtype or len(other.items) != len(self.items):
            return False
        return all(
            raw_equal(self.qtype, a, b) for a, b in zip(self.items, other.items)
        )

    __hash__ = None


class QList(QValue):
    """A heterogeneous general list (kdb+ type 0)."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[QValue]):
        self.items = list(items)
        for item in self.items:
            if not isinstance(item, QValue):
                raise QTypeError(
                    f"general list items must be QValues, got {type(item).__name__}"
                )

    @property
    def qcode(self) -> int:
        return 0

    @property
    def is_list_like(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[QValue]:
        return iter(self.items)

    def atom_at(self, index: int) -> QValue:
        return self.items[index]

    def __repr__(self):
        return f"QList({self.items!r})"

    def __eq__(self, other):
        if not isinstance(other, QValue):
            return NotImplemented
        return (
            isinstance(other, QList)
            and len(other.items) == len(self.items)
            and all(q_match(a, b) for a, b in zip(self.items, other.items))
        )

    __hash__ = None


class QDict(QValue):
    """An ordered dictionary: two parallel lists of keys and values."""

    __slots__ = ("keys", "values")

    def __init__(self, keys: QValue, values: QValue):
        if not keys.is_list_like or not values.is_list_like:
            raise QTypeError("dictionary keys and values must be lists")
        if length_of(keys) != length_of(values):
            raise QLengthError(
                f"dictionary keys ({length_of(keys)}) and values "
                f"({length_of(values)}) differ in length"
            )
        self.keys = keys
        self.values = values

    @property
    def qcode(self) -> int:
        return 99

    def __len__(self) -> int:
        return length_of(self.keys)

    def lookup(self, key: QValue) -> QValue:
        """Return the value mapped to ``key``; typed null when absent."""
        for i in range(len(self)):
            if q_match(index_value(self.keys, i), key):
                return index_value(self.values, i)
        return null_like(self.values)

    def __repr__(self):
        return f"QDict({self.keys!r}, {self.values!r})"

    def __eq__(self, other):
        if not isinstance(other, QValue):
            return NotImplemented
        return (
            isinstance(other, QDict)
            and q_match(self.keys, other.keys)
            and q_match(self.values, other.values)
        )

    __hash__ = None


class QTable(QValue):
    """A table: ordered column names over equal-length column lists."""

    __slots__ = ("columns", "data")

    def __init__(self, columns: Sequence[str], data: Sequence[QValue]):
        columns = list(columns)
        data = list(data)
        if len(columns) != len(data):
            raise QLengthError(
                f"{len(columns)} column names but {len(data)} column lists"
            )
        lengths = {length_of(col) for col in data}
        if len(lengths) > 1:
            raise QLengthError(f"columns differ in length: {sorted(lengths)}")
        for col in data:
            if not col.is_list_like:
                raise QTypeError("table columns must be lists")
        self.columns = columns
        self.data = data

    @property
    def qcode(self) -> int:
        return 98

    @property
    def is_list_like(self) -> bool:
        return True

    def __len__(self) -> int:
        """Row count."""
        return 0 if not self.data else length_of(self.data[0])

    def column(self, name: str) -> QValue:
        try:
            return self.data[self.columns.index(name)]
        except ValueError:
            raise QTypeError(f"table has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self.columns

    def row(self, index: int) -> QDict:
        """Row ``index`` as a symbol->value dictionary (q's ``t i``)."""
        keys = QVector(QType.SYMBOL, self.columns)
        values = QList([index_value(col, index) for col in self.data])
        return QDict(keys, values)

    def atom_at(self, index: int) -> QDict:
        return self.row(index)

    def take(self, indices: Sequence[int]) -> "QTable":
        """Select rows by position, preserving column types."""
        return QTable(
            self.columns, [take_value(col, indices) for col in self.data]
        )

    def with_column(self, name: str, column: QValue) -> "QTable":
        """Functional update: replace or append a column."""
        columns = list(self.columns)
        data = list(self.data)
        if name in columns:
            data[columns.index(name)] = column
        else:
            columns.append(name)
            data.append(column)
        return QTable(columns, data)

    def __repr__(self):
        return f"QTable(columns={self.columns!r}, rows={len(self)})"

    def __eq__(self, other):
        if not isinstance(other, QValue):
            return NotImplemented
        return (
            isinstance(other, QTable)
            and other.columns == self.columns
            and all(q_match(a, b) for a, b in zip(self.data, other.data))
        )

    __hash__ = None


class QKeyedTable(QValue):
    """A keyed table: a dictionary from a key table to a value table."""

    __slots__ = ("key", "value")

    def __init__(self, key: QTable, value: QTable):
        if len(key) != len(value):
            raise QLengthError("keyed table key and value row counts differ")
        self.key = key
        self.value = value

    @property
    def qcode(self) -> int:
        return 99

    def __len__(self) -> int:
        return len(self.key)

    def unkey(self) -> QTable:
        """``0!`` — flatten into a plain table, keys first."""
        return QTable(
            self.key.columns + self.value.columns, self.key.data + self.value.data
        )

    @property
    def key_columns(self) -> list[str]:
        return list(self.key.columns)

    def __repr__(self):
        return (
            f"QKeyedTable(keys={self.key.columns!r}, "
            f"values={self.value.columns!r}, rows={len(self)})"
        )

    def __eq__(self, other):
        if not isinstance(other, QValue):
            return NotImplemented
        return (
            isinstance(other, QKeyedTable)
            and q_match(self.key, other.key)
            and q_match(self.value, other.value)
        )

    __hash__ = None


class QLambda(QValue):
    """A function literal ``{[a;b] ...}``; body is an AST, applied lazily."""

    __slots__ = ("params", "body", "source")

    def __init__(self, params: Sequence[str], body, source: str = ""):
        self.params = list(params)
        self.body = body
        self.source = source

    @property
    def qcode(self) -> int:
        return 100

    @property
    def rank(self) -> int:
        return len(self.params)

    def __repr__(self):
        return f"QLambda(params={self.params!r})"

    def __eq__(self, other):
        if not isinstance(other, QValue):
            return NotImplemented
        return (
            isinstance(other, QLambda)
            and other.params == self.params
            and other.source == self.source
        )

    __hash__ = None


# ---------------------------------------------------------------------------
# Constructors and generic helpers
# ---------------------------------------------------------------------------


def q_bool(v: bool) -> QAtom:
    return QAtom(QType.BOOLEAN, bool(v))


def q_long(v: int) -> QAtom:
    return QAtom(QType.LONG, int(v))


def q_int(v: int) -> QAtom:
    return QAtom(QType.INT, int(v))


def q_float(v: float) -> QAtom:
    return QAtom(QType.FLOAT, float(v))


def q_symbol(v: str) -> QAtom:
    return QAtom(QType.SYMBOL, v)


def q_char(v: str) -> QAtom:
    return QAtom(QType.CHAR, v)


def q_string(v: str) -> QVector:
    """A q string is a char vector."""
    return QVector(QType.CHAR, list(v))


def q_date(days: int) -> QAtom:
    return QAtom(QType.DATE, int(days))


def q_timestamp(nanos: int) -> QAtom:
    return QAtom(QType.TIMESTAMP, int(nanos))


def q_time(millis: int) -> QAtom:
    return QAtom(QType.TIME, int(millis))


def long_vector(items: Iterable[int]) -> QVector:
    return QVector(QType.LONG, [int(i) for i in items])


def float_vector(items: Iterable[float]) -> QVector:
    return QVector(QType.FLOAT, [float(f) for f in items])


def symbol_vector(items: Iterable[str]) -> QVector:
    return QVector(QType.SYMBOL, list(items))


def bool_vector(items: Iterable[bool]) -> QVector:
    return QVector(QType.BOOLEAN, [bool(b) for b in items])


def table_from_dict(columns: dict[str, QValue]) -> QTable:
    """Build a table from an ordered ``{name: column}`` mapping."""
    return QTable(list(columns.keys()), list(columns.values()))


def length_of(value: QValue) -> int:
    """q ``count``: atoms count as 1."""
    if isinstance(value, (QVector, QList, QTable)):
        return len(value)
    if isinstance(value, (QDict, QKeyedTable)):
        return len(value)
    return 1


def index_value(value: QValue, index: int) -> QValue:
    """Positional indexing into any list-like value."""
    if isinstance(value, (QVector, QList, QTable)):
        return value.atom_at(index)
    raise QTypeError(f"cannot index into {type(value).__name__}")


def take_value(value: QValue, indices: Sequence[int]) -> QValue:
    """Index a list-like value by a list of positions."""
    if isinstance(value, QVector):
        return value.take(indices)
    if isinstance(value, QList):
        return QList([value.items[i] for i in indices])
    if isinstance(value, QTable):
        return value.take(indices)
    raise QTypeError(f"cannot take from {type(value).__name__}")


def null_like(value: QValue) -> QValue:
    """A typed null appropriate for elements of ``value``."""
    if isinstance(value, QVector):
        return QAtom(value.qtype, value.qtype.null_value())
    return QAtom(QType.LONG, QType.LONG.null_value())


def q_match(a: QValue, b: QValue) -> bool:
    """q's ``~`` (match): deep structural equality with null == null."""
    if a is b:
        return True
    result = a.__eq__(b)
    return bool(result) if result is not NotImplemented else False


def enlist(value: QValue) -> QValue:
    """q ``enlist``: wrap a value in a singleton list."""
    if isinstance(value, QAtom):
        return QVector(value.qtype, [value.value])
    return QList([value])


def vector_of_atoms(atoms: Sequence[QAtom]) -> QValue:
    """Collapse a sequence of atoms into a typed vector when homogeneous,
    else a general list — mirroring how q joins atoms into lists."""
    if not atoms:
        return QList([])
    types = {a.qtype for a in atoms if isinstance(a, QAtom)}
    if len(types) == 1 and all(isinstance(a, QAtom) for a in atoms):
        qtype = next(iter(types))
        return QVector(qtype, [a.value for a in atoms])
    return QList(list(atoms))
