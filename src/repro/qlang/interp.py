"""Reference Q interpreter (the "mini-kdb+" substrate).

The paper's side-by-side testing framework (Section 5) validates Hyper-Q by
comparing application-visible behaviour against a real kdb+ server.  This
module plays the kdb+ role in the reproduction: a direct, in-memory
evaluator for the supported Q surface, with q's evaluation rules:

* right-to-left evaluation (encoded by the parser's right-associated AST);
* dynamic typing — a variable's type is whatever it was last assigned;
* local scopes that shadow globals, with q's flat (non-closing) lambdas;
* select/exec/update/delete templates with sequential where-conjuncts;
* ``aj``/``lj``/``ij``/``uj``/``ej``/``wj`` joins and the adverbs.

Like kdb+ itself, the interpreter executes one request at a time; callers
requiring concurrency must serialize (the server loop in
:mod:`repro.server` does exactly that, mirroring kdb+'s main loop).
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.errors import (
    QError,
    QLengthError,
    QNameError,
    QNotSupportedError,
    QRankError,
    QTypeError,
)
from repro.qlang import ast, builtins as bi, joins
from repro.qlang.parser import parse
from repro.qlang.qtypes import QType
from repro.qlang.values import (
    QAtom,
    QDict,
    QKeyedTable,
    QLambda,
    QList,
    QTable,
    QValue,
    QVector,
    enlist,
    length_of,
    long_vector,
    q_match,
    take_value,
    vector_of_atoms,
)


class QBuiltin(QValue):
    """A primitive function value (so ``f: count; f x`` works)."""

    __slots__ = ("name", "fn", "rank")

    def __init__(self, name: str, fn: Callable, rank: int):
        self.name = name
        self.fn = fn
        self.rank = rank

    @property
    def qcode(self) -> int:
        return 102

    def __repr__(self):
        return f"QBuiltin({self.name})"

    def __eq__(self, other):
        if not isinstance(other, QValue):
            return NotImplemented
        return isinstance(other, QBuiltin) and other.name == self.name

    __hash__ = None


class QProjection(QValue):
    """A partially applied function (``f[;2]``)."""

    __slots__ = ("func", "args")

    def __init__(self, func: QValue, args: list[QValue | None]):
        self.func = func
        self.args = args

    @property
    def qcode(self) -> int:
        return 104

    def __repr__(self):
        return f"QProjection({self.func!r})"

    def __eq__(self, other):
        if not isinstance(other, QValue):
            return NotImplemented
        return self is other

    __hash__ = None


class _ReturnSignal(Exception):
    def __init__(self, value: QValue):
        self.value = value


class Env:
    """One level of the q scope model: locals over globals.

    q lambdas do *not* close over enclosing function locals — a function
    body sees its own locals, and the global scope.  This mirrors the
    paper's Figure 3 hierarchy (local -> session/server).
    """

    __slots__ = ("globals", "locals")

    def __init__(self, globals_: dict, locals_: dict | None = None):
        self.globals = globals_
        self.locals = locals_

    def lookup(self, name: str) -> QValue | None:
        if self.locals is not None and name in self.locals:
            return self.locals[name]
        return self.globals.get(name)

    def assign(self, name: str, value: QValue, force_global: bool = False) -> None:
        if force_global or self.locals is None:
            self.globals[name] = value
        else:
            self.locals[name] = value


class Interpreter:
    """Evaluate Q source text against a global (server) variable scope."""

    def __init__(self, seed: int = 20160626):
        self.globals: dict[str, QValue] = {}
        self.rng = random.Random(seed)
        self._dyads = _build_dyads()
        self._monads = _build_monads()
        self._keywords = _build_keywords(self)

    # -- public API -----------------------------------------------------------

    def eval_text(self, source: str) -> QValue | None:
        """Evaluate a Q query message; return the last statement's value."""
        program = parse(source)
        env = Env(self.globals)
        result: QValue | None = None
        for statement in program.statements:
            result = self.eval(statement, env)
            if isinstance(statement, ast.Assign):
                result = None  # assignments return nothing at the console
        return result

    def set_global(self, name: str, value: QValue) -> None:
        self.globals[name] = value

    def get_global(self, name: str) -> QValue | None:
        return self.globals.get(name)

    # -- evaluator ------------------------------------------------------------

    def eval(self, node: ast.Node, env: Env) -> QValue:
        method = getattr(self, f"_eval_{type(node).__name__.lower()}", None)
        if method is None:
            raise QNotSupportedError(f"cannot evaluate {ast.node_name(node)}")
        return method(node, env)

    def _eval_literal(self, node: ast.Literal, env: Env) -> QValue:
        return node.value

    def _eval_name(self, node: ast.Name, env: Env) -> QValue:
        value = env.lookup(node.name)
        if value is not None:
            return value
        keyword = self._keywords.get(node.name)
        if keyword is not None:
            return keyword
        raise QNameError(
            f"undefined variable or function {node.name!r} "
            f"(searched local, session and server scopes)"
        )

    def _eval_statements(self, node: ast.Statements, env: Env) -> QValue:
        result: QValue = QList([])
        for statement in node.statements:
            result = self.eval(statement, env)
        return result

    def _eval_assign(self, node: ast.Assign, env: Env) -> QValue:
        value = self.eval(node.value, env)
        if node.indices:
            current = env.lookup(node.target)
            if current is None:
                raise QNameError(f"cannot amend undefined variable {node.target!r}")
            indices = [self.eval(ix, env) for ix in node.indices]
            value = _amend(current, indices, value, node.op, self)
            env.assign(node.target, value, force_global=node.global_scope)
            return value
        if node.op is not None:
            current = env.lookup(node.target)
            if current is None:
                raise QNameError(
                    f"cannot apply {node.op}: to undefined variable {node.target!r}"
                )
            value = self._apply_dyad(node.op, current, value)
        env.assign(node.target, value, force_global=node.global_scope)
        return value

    def _eval_unop(self, node: ast.UnOp, env: Env) -> QValue:
        operand = self.eval(node.operand, env)
        fn = self._monads.get(node.op)
        if fn is None:
            raise QNotSupportedError(f"monadic {node.op!r} is not supported")
        return fn(operand)

    def _eval_binop(self, node: ast.BinOp, env: Env) -> QValue:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        return self._apply_dyad(node.op, left, right)

    def _apply_dyad(self, op: str, left: QValue, right: QValue) -> QValue:
        adverb = {"each": "'", "over": "/", "scan": "\\", "prior": "':"}.get(op)
        if adverb is not None:
            return self.run_adverb(left, adverb, [right])
        fn = self._dyads.get(op)
        if fn is not None:
            return fn(left, right)
        keyword = self._keywords.get(op)
        if keyword is not None:
            return self.apply(keyword, [left, right])
        user = self.globals.get(op)
        if user is not None:
            return self.apply(user, [left, right])
        raise QNotSupportedError(f"dyadic {op!r} is not supported")

    def _eval_apply(self, node: ast.Apply, env: Env) -> QValue:
        # Join verbs take symbol column arguments and need special casing
        # before generic evaluation (aj[`Symbol`Time; t; q]).
        if isinstance(node.func, ast.Name) and node.func.name in (
            "aj",
            "aj0",
            "ej",
            "wj",
        ):
            return self._eval_join_call(node, env)
        # vector conditional ?[c;a;b]
        if (
            isinstance(node.func, ast.Name)
            and node.func.name == "?"
            and len(node.args) == 3
            and all(a is not None for a in node.args)
        ):
            condition = self.eval(node.args[0], env)
            then_value = self.eval(node.args[1], env)
            else_value = self.eval(node.args[2], env)
            return _vector_conditional(condition, then_value, else_value)
        # functional application of an operator glyph: +[1;2]
        if isinstance(node.func, ast.Name) and node.func.name in self._dyads:
            args = [self.eval(a, env) for a in node.args if a is not None]
            if len(args) == 2:
                return self._apply_dyad(node.func.name, args[0], args[1])
        func = self.eval(node.func, env)
        if any(arg is None for arg in node.args):
            fixed = [
                self.eval(arg, env) if arg is not None else None
                for arg in node.args
            ]
            return QProjection(func, fixed)
        args = [self.eval(arg, env) for arg in node.args]
        return self.apply(func, args)

    def _eval_join_call(self, node: ast.Apply, env: Env) -> QValue:
        assert isinstance(node.func, ast.Name)
        name = node.func.name
        args = [self.eval(arg, env) for arg in node.args if arg is not None]
        if name in ("aj", "aj0"):
            if len(args) != 3:
                raise QRankError(f"{name} expects 3 arguments")
            columns = _symbol_list(args[0], name)
            left, right = _as_table(args[1]), _as_table(args[2])
            return joins.asof_join(columns, left, right, use_right_time=name == "aj0")
        if name == "ej":
            if len(args) != 3:
                raise QRankError("ej expects 3 arguments")
            columns = _symbol_list(args[0], "ej")
            return joins.equi_join(columns, _as_table(args[1]), _as_table(args[2]))
        # wj[(b;e); cols; t; (q; (f;c); ...)]
        if len(args) != 4:
            raise QRankError("wj expects 4 arguments")
        bounds, cols_value, left_value, spec = args
        if not isinstance(bounds, QList) or len(bounds) != 2:
            raise QTypeError("wj windows must be a 2-item list of bounds")
        lows = _raw_items(bounds.items[0])
        highs = _raw_items(bounds.items[1])
        columns = _symbol_list(cols_value, "wj")
        if not isinstance(spec, QList) or len(spec) < 2:
            raise QTypeError("wj expects (table; (fn;col) ...) on the right")
        right = _as_table(spec.items[0])
        aggregations = []
        for pair in spec.items[1:]:
            if not isinstance(pair, QList) or len(pair) != 2:
                raise QTypeError("wj aggregation must be (fn;col)")
            fn_value, col_value = pair.items
            if not isinstance(col_value, QAtom) or col_value.qtype != QType.SYMBOL:
                raise QTypeError("wj aggregation column must be a symbol")
            col_name = col_value.value
            agg = self._make_agg_callable(fn_value)
            aggregations.append((col_name, col_name, agg))
        return joins.window_join(
            (lows, highs), columns, _as_table(left_value), right, aggregations
        )

    def _make_agg_callable(self, fn_value: QValue):
        def agg(window: QValue) -> QValue:
            return self.apply(fn_value, [window])

        return agg

    def _eval_adverbapply(self, node: ast.AdverbApply, env: Env) -> QValue:
        # An adverbed verb evaluated as a value; application happens via
        # Apply/BinOp around it.  Represent as a builtin closure.
        verb = self._resolve_verb(node.verb, env)
        return _AdverbedFunction(self, verb, node.adverb)

    def _resolve_verb(self, verb: ast.Node | str, env: Env) -> QValue:
        if isinstance(verb, str):
            fn = self._dyads.get(verb)
            if fn is not None:
                return QBuiltin(verb, fn, 2)
            keyword = self._keywords.get(verb)
            if keyword is not None:
                return keyword
            raise QNotSupportedError(f"verb {verb!r} is not supported")
        return self.eval(verb, env)

    def _eval_lambda(self, node: ast.Lambda, env: Env) -> QValue:
        return QLambda(node.params, node.body, source=node.source)

    def _eval_cond(self, node: ast.Cond, env: Env) -> QValue:
        branches = node.branches
        i = 0
        while i + 1 < len(branches):
            condition = self.eval(branches[i], env)
            if not isinstance(condition, QAtom):
                raise QTypeError(
                    "$[;;] condition must be an atom; use ?[c;a;b] for the "
                    "vectorized conditional"
                )
            if _truthy(condition):
                return self.eval(branches[i + 1], env)
            i += 2
        if i < len(branches):
            return self.eval(branches[i], env)
        return QList([])

    def _eval_listexpr(self, node: ast.ListExpr, env: Env) -> QValue:
        items = [self.eval(item, env) for item in node.items]
        if all(isinstance(i, QAtom) for i in items):
            return vector_of_atoms(items)  # type: ignore[arg-type]
        return QList(items)

    def _eval_tableexpr(self, node: ast.TableExpr, env: Env) -> QValue:
        def build(specs: list[tuple[str, ast.Node]]) -> QTable:
            names = [name for name, __ in specs]
            values = [self.eval(expr, env) for __, expr in specs]
            max_len = max(
                (length_of(v) for v in values if not isinstance(v, QAtom)),
                default=1,
            )
            data = [_stretch(v, max_len) for v in values]
            return QTable(names, data)

        value_table = build(node.columns)
        if node.key_columns:
            return QKeyedTable(build(node.key_columns), value_table)
        return value_table

    def _eval_return(self, node: ast.Return, env: Env) -> QValue:
        raise _ReturnSignal(self.eval(node.value, env))

    def _eval_signal(self, node: ast.Signal, env: Env) -> QValue:
        # `'name` signals the bare name itself, unevaluated (q semantics)
        if isinstance(node.value, ast.Name):
            text = node.value.name
        else:
            value = self.eval(node.value, env)
            if isinstance(value, QAtom):
                text = str(value.value)
            elif isinstance(value, QVector) and value.qtype == QType.CHAR:
                text = "".join(value.items)
            else:
                text = "signal"
        raise QError(f"signalled: {text}", signal=text)

    # -- templates ------------------------------------------------------------

    def _eval_template(self, node: ast.Template, env: Env) -> QValue:
        source = self.eval(node.source, env)
        keyed_columns: list[str] = []
        if isinstance(source, QKeyedTable):
            keyed_columns = source.key_columns
            table = source.unkey()
        else:
            table = _as_table(source)

        if node.kind == "delete":
            return self._run_delete(node, table, env)

        table = self._apply_where(table, node.where, env)
        if node.kind == "update":
            result = self._run_update(node, table, env)
            if keyed_columns:
                return _xkey(keyed_columns, result)
            return result
        if node.kind == "exec":
            return self._run_exec(node, table, env)
        result = self._run_select(node, table, env)
        if (
            keyed_columns
            and not node.by
            and not node.columns
            and isinstance(result, QTable)
        ):
            # q keeps the key columns of a keyed source: select from kt
            result = _xkey(keyed_columns, result)
        if node.limit is not None:
            limit = self.eval(node.limit, env)
            result_table = result.unkey() if isinstance(result, QKeyedTable) else result
            size = len(result_table)
            if isinstance(limit, QVector) and len(limit) == 2:
                # select[offset count]
                offset, count = int(limit.items[0]), int(limit.items[1])
                rows = list(range(min(offset, size), min(offset + count, size)))
            elif isinstance(limit, QAtom):
                n = int(limit.value)
                if n >= 0:
                    rows = list(range(min(n, size)))
                else:  # select[-n]: the last n rows
                    rows = list(range(max(0, size + n), size))
            else:
                raise QTypeError("select[n] limit must be an atom or a pair")
            result = result_table.take(rows)
        return result

    def _apply_where(
        self, table: QTable, conjuncts: Sequence[ast.Node], env: Env
    ) -> QTable:
        for conjunct in conjuncts:
            mask = self.eval(conjunct, _column_env(table, env))
            indices = _mask_to_indices(mask, len(table))
            table = table.take(indices)
        return table

    def _run_select(self, node: ast.Template, table: QTable, env: Env) -> QValue:
        if not node.by:
            if not node.columns:
                return table
            names, data = self._eval_columns(node.columns, table, env)
            return QTable(names, data)
        group_names, group_keys, group_rows = self._group(node.by, table, env)
        if not node.columns:
            # `select by a from t` keeps the last row per group
            last_rows = [rows[-1] for rows in group_rows]
            value_cols = [c for c in table.columns if c not in group_names]
            value_table = QTable(
                value_cols, [take_value(table.column(c), last_rows) for c in value_cols]
            )
            key_table = QTable(group_names, group_keys)
            return QKeyedTable(key_table, value_table)
        agg_names: list[str] = []
        agg_columns: list[list[QValue]] = []
        for spec in node.columns:
            agg_names.append(spec.name or ast.infer_column_name(spec.expr))
            agg_columns.append([])
        for rows in group_rows:
            subtable = table.take(rows)
            sub_env = _column_env(subtable, env)
            for i, spec in enumerate(node.columns):
                value = self.eval(spec.expr, sub_env)
                if not isinstance(value, QAtom) and length_of(value) == 1:
                    if isinstance(value, (QVector, QList)):
                        value = value.atom_at(0)
                agg_columns[i].append(value)
        key_table = QTable(group_names, group_keys)
        value_data = [_collapse_cells(cells) for cells in agg_columns]
        value_table = QTable(agg_names, value_data)
        return QKeyedTable(key_table, value_table)

    def _run_exec(self, node: ast.Template, table: QTable, env: Env) -> QValue:
        if node.by:
            group_names, group_keys, group_rows = self._group(node.by, table, env)
            if len(node.columns) != 1:
                raise QNotSupportedError("exec ... by supports a single column")
            cells = []
            for rows in group_rows:
                subtable = table.take(rows)
                cells.append(
                    self.eval(node.columns[0].expr, _column_env(subtable, env))
                )
            keys = group_keys[0] if len(group_keys) == 1 else QList(group_keys)
            return QDict(keys, _collapse_cells(cells))
        if not node.columns:
            raise QTypeError("exec requires explicit columns")
        if len(node.columns) == 1:
            return self.eval(node.columns[0].expr, _column_env(table, env))
        names, data = self._eval_columns(node.columns, table, env)
        return QDict(QVector(QType.SYMBOL, names), QList(data))

    def _run_update(self, node: ast.Template, table: QTable, env: Env) -> QValue:
        if node.by:
            group_names, __, group_rows = self._group(node.by, table, env)
            result = table
            for spec in node.columns:
                name = spec.name or ast.infer_column_name(spec.expr)
                new_cells: dict[int, QValue] = {}
                for rows in group_rows:
                    subtable = result.take(rows)
                    value = self.eval(spec.expr, _column_env(subtable, env))
                    stretched = _stretch(value, len(rows))
                    for offset, row in enumerate(rows):
                        new_cells[row] = (
                            stretched.atom_at(offset)
                            if isinstance(stretched, (QVector, QList, QTable))
                            else stretched
                        )
                atoms = [new_cells[i] for i in range(len(result))]
                result = result.with_column(name, _collapse_cells(atoms))
            return result
        result = table
        col_env = _column_env(result, env)
        for spec in node.columns:
            name = spec.name or ast.infer_column_name(spec.expr)
            value = self.eval(spec.expr, col_env)
            result = result.with_column(name, _stretch(value, len(result)))
            col_env = _column_env(result, env)
        return result

    def _run_delete(self, node: ast.Template, table: QTable, env: Env) -> QValue:
        if node.columns:
            names = {
                spec.name or ast.infer_column_name(spec.expr)
                for spec in node.columns
            }
            kept = [c for c in table.columns if c not in names]
            return QTable(kept, [table.column(c) for c in kept])
        if node.where:
            # delete removes the rows the constraints *match*
            doomed: set[int] = set(range(len(table)))
            matched = self._apply_where_indices(table, node.where, env)
            kept_rows = [i for i in range(len(table)) if i not in matched]
            del doomed
            return table.take(kept_rows)
        return QTable(table.columns, [_empty_like(c) for c in table.data])

    def _apply_where_indices(
        self, table: QTable, conjuncts: Sequence[ast.Node], env: Env
    ) -> set[int]:
        """Original-row indices surviving all constraints (for delete)."""
        survivors = list(range(len(table)))
        current = table
        for conjunct in conjuncts:
            mask = self.eval(conjunct, _column_env(current, env))
            kept = _mask_to_indices(mask, len(current))
            survivors = [survivors[i] for i in kept]
            current = current.take(kept)
        return set(survivors)

    def _group(
        self, specs: Sequence[ast.ColumnSpec], table: QTable, env: Env
    ) -> tuple[list[str], list[QValue], list[list[int]]]:
        names = [spec.name or ast.infer_column_name(spec.expr) for spec in specs]
        col_env = _column_env(table, env)
        key_vectors = [
            _stretch(self.eval(spec.expr, col_env), len(table)) for spec in specs
        ]
        order: list[tuple] = []
        buckets: dict[tuple, list[int]] = {}
        for i in range(len(table)):
            key = tuple(
                _hashable_cell(vec, i) for vec in key_vectors
            )
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(i)
        # q returns by-groups in ascending key order (the keyed result
        # carries the sorted attribute), not first-appearance order
        order.sort(key=_group_sort_key)
        group_rows = [buckets[key] for key in order]
        first_rows = [rows[0] for rows in group_rows]
        group_keys = [take_value(vec, first_rows) for vec in key_vectors]
        return names, group_keys, group_rows

    def _eval_columns(
        self, specs: Sequence[ast.ColumnSpec], table: QTable, env: Env
    ) -> tuple[list[str], list[QValue]]:
        col_env = _column_env(table, env)
        names: list[str] = []
        values: list[QValue] = []
        for spec in specs:
            names.append(spec.name or ast.infer_column_name(spec.expr))
            values.append(self.eval(spec.expr, col_env))
        lengths = [length_of(v) for v in values if not isinstance(v, QAtom)]
        target = max(lengths) if lengths else 1
        return names, [_stretch(v, target) for v in values]

    # -- application ----------------------------------------------------------

    def apply(self, func: QValue, args: list[QValue]) -> QValue:
        if isinstance(func, QLambda):
            return self._apply_lambda(func, args)
        if isinstance(func, QBuiltin):
            if not args and func.rank == 1:
                args = [QList([])]  # f[] supplies the generic null
            if func.rank != len(args):
                # single-arg call of a dyad is a projection
                if len(args) < func.rank:
                    padding = [None] * (func.rank - len(args))
                    return QProjection(func, list(args) + padding)
                raise QRankError(
                    f"{func.name} expects {func.rank} arguments, got {len(args)}"
                )
            return func.fn(*args)
        if isinstance(func, _AdverbedFunction):
            return func.apply(args)
        if isinstance(func, QProjection):
            merged: list[QValue] = []
            supplied = iter(args)
            for slot in func.args:
                if slot is None:
                    merged.append(next(supplied, None))  # type: ignore[arg-type]
                else:
                    merged.append(slot)
            for extra in supplied:
                merged.append(extra)
            if any(item is None for item in merged):
                return QProjection(func.func, merged)
            return self.apply(func.func, merged)
        # Data application == indexing
        if isinstance(func, (QVector, QList, QTable, QDict, QKeyedTable)):
            if len(args) == 1:
                return bi.index_at(func, args[0])
            result: QValue = func
            for arg in args:
                result = bi.index_at(result, arg)
            return result
        raise QTypeError(f"cannot apply {type(func).__name__}")

    def _apply_lambda(self, func: QLambda, args: list[QValue]) -> QValue:
        if len(args) > len(func.params):
            raise QRankError(
                f"function of rank {len(func.params)} applied to {len(args)} arguments"
            )
        if not args:
            # f[] supplies the generic null (::) to every parameter, as q does
            args = [QList([]) for __ in func.params]
        if len(args) < len(func.params):
            fixed = list(args) + [None] * (len(func.params) - len(args))
            return QProjection(func, fixed)
        locals_ = dict(zip(func.params, args))
        env = Env(self.globals, locals_)
        result: QValue = QList([])
        try:
            for statement in func.body:
                result = self.eval(statement, env)
        except _ReturnSignal as signal:
            return signal.value
        return result

    # -- adverb machinery (shared with _AdverbedFunction) ----------------------

    def run_adverb(
        self, verb: QValue, adverb: str, args: list[QValue]
    ) -> QValue:
        if adverb == "'":
            return self._adverb_each(verb, args)
        if adverb == "/":
            return self._adverb_over(verb, args, scan=False)
        if adverb == "\\":
            return self._adverb_over(verb, args, scan=True)
        if adverb == "':":
            return self._adverb_each_prior(verb, args)
        if adverb == "/:":
            return self._adverb_each_right(verb, args)
        if adverb == "\\:":
            return self._adverb_each_left(verb, args)
        raise QNotSupportedError(f"adverb {adverb!r}")

    def _adverb_each(self, verb: QValue, args: list[QValue]) -> QValue:
        if len(args) == 1:
            value = args[0]
            if isinstance(value, QAtom):
                return self.apply(verb, [value])
            items = _item_list(value)
            return _collapse_cells([self.apply(verb, [item]) for item in items])
        if len(args) == 2:
            left_items = (
                _item_list(args[0]) if not isinstance(args[0], QAtom) else None
            )
            right_items = (
                _item_list(args[1]) if not isinstance(args[1], QAtom) else None
            )
            if left_items is None and right_items is None:
                return self.apply(verb, args)
            if left_items is None:
                assert right_items is not None
                return _collapse_cells(
                    [self.apply(verb, [args[0], r]) for r in right_items]
                )
            if right_items is None:
                return _collapse_cells(
                    [self.apply(verb, [l, args[1]]) for l in left_items]
                )
            if len(left_items) != len(right_items):
                raise QTypeError("each: argument lengths differ")
            return _collapse_cells(
                [
                    self.apply(verb, [l, r])
                    for l, r in zip(left_items, right_items)
                ]
            )
        raise QRankError("each supports rank 1 and 2")

    def _adverb_over(self, verb: QValue, args: list[QValue], scan: bool) -> QValue:
        if len(args) == 1:
            items = _item_list(args[0])
            if not items:
                return args[0]
            acc = items[0]
            trail = [acc]
            for item in items[1:]:
                acc = self.apply(verb, [acc, item])
                trail.append(acc)
            return _collapse_cells(trail) if scan else acc
        if len(args) == 2:
            acc = args[0]
            items = _item_list(args[1]) if not isinstance(args[1], QAtom) else [args[1]]
            trail = []
            for item in items:
                acc = self.apply(verb, [acc, item])
                trail.append(acc)
            return _collapse_cells(trail) if scan else acc
        raise QRankError("over supports rank 1 and 2")

    def _adverb_each_prior(self, verb: QValue, args: list[QValue]) -> QValue:
        value = args[-1]
        items = _item_list(value)
        out: list[QValue] = []
        for i, item in enumerate(items):
            if i == 0:
                if len(args) == 2:
                    out.append(self.apply(verb, [item, args[0]]))
                else:
                    out.append(item)
            else:
                out.append(self.apply(verb, [item, items[i - 1]]))
        return _collapse_cells(out)

    def _adverb_each_right(self, verb: QValue, args: list[QValue]) -> QValue:
        if len(args) != 2:
            raise QRankError("each-right is dyadic")
        items = _item_list(args[1]) if not isinstance(args[1], QAtom) else [args[1]]
        return _collapse_cells([self.apply(verb, [args[0], r]) for r in items])

    def _adverb_each_left(self, verb: QValue, args: list[QValue]) -> QValue:
        if len(args) != 2:
            raise QRankError("each-left is dyadic")
        items = _item_list(args[0]) if not isinstance(args[0], QAtom) else [args[0]]
        return _collapse_cells([self.apply(verb, [l, args[1]]) for l in items])


class _AdverbedFunction(QValue):
    """A verb bound to an adverb, e.g. the value of ``+/``."""

    __slots__ = ("interp", "verb", "adverb")

    def __init__(self, interp: Interpreter, verb: QValue, adverb: str):
        self.interp = interp
        self.verb = verb
        self.adverb = adverb

    @property
    def qcode(self) -> int:
        return 106

    def apply(self, args: list[QValue]) -> QValue:
        return self.interp.run_adverb(self.verb, self.adverb, args)

    def __repr__(self):
        return f"_AdverbedFunction({self.verb!r}, {self.adverb!r})"

    def __eq__(self, other):
        if not isinstance(other, QValue):
            return NotImplemented
        return self is other

    __hash__ = None


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _vector_conditional(
    condition: QValue, then_value: QValue, else_value: QValue
) -> QValue:
    """``?[c;a;b]`` — elementwise selection by a boolean list."""
    if isinstance(condition, QAtom):
        return then_value if _truthy(condition) else else_value
    if not isinstance(condition, QVector) or condition.qtype != QType.BOOLEAN:
        raise QTypeError("?[c;a;b] expects a boolean list condition")
    n = len(condition)

    def cell(value: QValue, i: int) -> QValue:
        if isinstance(value, QAtom):
            return value
        if length_of(value) != n:
            raise QLengthError("?[c;a;b] branch length mismatch")
        return value.atom_at(i)  # type: ignore[union-attr]

    picked = [
        cell(then_value if flag else else_value, i)
        for i, flag in enumerate(condition.items)
    ]
    return _collapse_cells(picked)


def _truthy(value: QValue) -> bool:
    if isinstance(value, QAtom):
        return not value.is_null and bool(value.value)
    if isinstance(value, (QVector, QList)):
        return length_of(value) > 0 and _truthy(value.atom_at(0))
    raise QTypeError("condition must be an atom")


def _as_table(value: QValue) -> QTable:
    if isinstance(value, QTable):
        return value
    if isinstance(value, QKeyedTable):
        return value.unkey()
    raise QTypeError(f"expected a table, got {type(value).__name__}")


def _symbol_list(value: QValue, verb: str) -> list[str]:
    if isinstance(value, QAtom) and value.qtype == QType.SYMBOL:
        return [value.value]
    if isinstance(value, QVector) and value.qtype == QType.SYMBOL:
        return list(value.items)
    raise QTypeError(f"{verb} expects symbol column names")


def _raw_items(value: QValue) -> list:
    if isinstance(value, QVector):
        return list(value.items)
    if isinstance(value, QAtom):
        return [value.value]
    raise QTypeError("expected a vector")


def _item_list(value: QValue) -> list[QValue]:
    if isinstance(value, QVector):
        return [QAtom(value.qtype, raw) for raw in value.items]
    if isinstance(value, QList):
        return list(value.items)
    if isinstance(value, QTable):
        return [value.row(i) for i in range(len(value))]
    if isinstance(value, QDict):
        return _item_list(value.values)
    raise QTypeError(f"cannot iterate {type(value).__name__}")


def _collapse_cells(cells: list[QValue]) -> QValue:
    if cells and all(isinstance(c, QAtom) for c in cells):
        return vector_of_atoms(cells)  # type: ignore[arg-type]
    return QList(cells)


def _stretch(value: QValue, target: int) -> QValue:
    """Broadcast an atom to a column of the requested length."""
    if isinstance(value, QAtom):
        return QVector(value.qtype, [value.value] * target)
    if length_of(value) == target:
        return value
    if length_of(value) == 1 and target != 1:
        if isinstance(value, QVector):
            return QVector(value.qtype, value.items * target)
        if isinstance(value, QList):
            return QList(value.items * target)
    raise QTypeError(
        f"column length {length_of(value)} does not match table length {target}"
    )


def _mask_to_indices(mask: QValue, table_len: int) -> list[int]:
    if isinstance(mask, QAtom):
        return list(range(table_len)) if _truthy(mask) else []
    if isinstance(mask, QVector) and mask.qtype == QType.BOOLEAN:
        if len(mask) != table_len:
            raise QTypeError("where clause mask length mismatch")
        return [i for i, flag in enumerate(mask.items) if flag]
    raise QTypeError("where clause must evaluate to booleans")


def _group_sort_key(key: tuple):
    """Sort by-group keys ascending with q's nulls-first convention.

    Each element of ``key`` is a ``(type_name, value)`` pair produced by
    :func:`_hashable_cell`; values within one grouping column share a type,
    so plain tuple comparison is safe apart from the null sentinels.
    """
    from repro.qlang.builtins import _sort_key as raw_sort_key
    from repro.qlang.qtypes import QType

    out = []
    for type_name, value in key:
        if type_name == "complex":
            out.append((1, value))
            continue
        if value == "0n" and type_name in ("FLOAT", "REAL", "DATETIME"):
            out.append((0, 0))  # the NaN placeholder from _hashable_cell
            continue
        qtype = QType[type_name] if type_name in QType.__members__ else None
        if qtype is not None:
            out.append(raw_sort_key(qtype, value))
        else:
            out.append((1, value))
    return tuple(out)


def _hashable_cell(vec: QValue, index: int):
    cell = vec.atom_at(index) if isinstance(vec, (QVector, QList, QTable)) else vec
    if isinstance(cell, QAtom):
        value = cell.value
        if isinstance(value, float) and value != value:
            value = "0n"
        return (cell.qtype.name, value)
    from repro.qlang.printer import format_value

    return ("complex", format_value(cell))


def _empty_like(col: QValue) -> QValue:
    if isinstance(col, QVector):
        return QVector(col.qtype, [])
    return QList([])


def _column_env(table: QTable, env: Env) -> Env:
    locals_ = dict(env.locals) if env.locals else {}
    for name, col in zip(table.columns, table.data):
        locals_[name] = col
    # expose the row index (q's `i` inside templates)
    locals_["i"] = long_vector(range(len(table)))
    return Env(env.globals, locals_)


def _amend(
    current: QValue,
    indices: list[QValue],
    value: QValue,
    op: str | None,
    interp: Interpreter,
) -> QValue:
    if len(indices) != 1:
        raise QNotSupportedError("deep amend with multiple indices")
    index = indices[0]
    if isinstance(current, QVector) and isinstance(index, QAtom):
        items = list(current.items)
        i = int(index.value)
        new_value = value
        if op is not None:
            new_value = interp._apply_dyad(op, current.atom_at(i), value)
        if not isinstance(new_value, QAtom):
            raise QTypeError("amend value must be an atom")
        items[i] = new_value.value
        return QVector(current.qtype, items)
    if isinstance(current, QVector) and isinstance(index, QVector):
        items = list(current.items)
        stretched = _stretch(value, len(index)) if isinstance(value, QAtom) else value
        for offset, i in enumerate(index.items):
            cell = (
                stretched.atom_at(offset)
                if isinstance(stretched, (QVector, QList))
                else stretched
            )
            if op is not None:
                cell = interp._apply_dyad(op, current.atom_at(int(i)), cell)
            assert isinstance(cell, QAtom)
            items[int(i)] = cell.value
        return QVector(current.qtype, items)
    if isinstance(current, QDict):
        keys = list(_item_list(current.keys))
        values = list(_item_list(current.values))
        for j, key in enumerate(keys):
            if q_match(key, index):
                values[j] = value if op is None else interp._apply_dyad(
                    op, values[j], value
                )
                break
        else:
            keys.append(index)
            values.append(value)
        return QDict(_collapse_cells(keys), _collapse_cells(values))
    raise QNotSupportedError(
        f"amend of {type(current).__name__} by {type(index).__name__}"
    )


def _xkey(columns: list[str], table: QValue) -> QValue:
    t = _as_table(table)
    for name in columns:
        if not t.has_column(name):
            raise QTypeError(f"xkey column {name!r} not in table")
    value_cols = [c for c in t.columns if c not in columns]
    key_table = QTable(columns, [t.column(c) for c in columns])
    value_table = QTable(value_cols, [t.column(c) for c in value_cols])
    return QKeyedTable(key_table, value_table)


# ---------------------------------------------------------------------------
# Verb registries
# ---------------------------------------------------------------------------


def _build_dyads() -> dict[str, Callable[[QValue, QValue], QValue]]:
    def wrap(atom_fn):
        return lambda a, b: bi.broadcast_dyad(atom_fn, a, b)

    def q_bang(a: QValue, b: QValue) -> QValue:
        # keys!values dict, or n!table keying
        if isinstance(a, QAtom) and a.qtype.is_integral and isinstance(
            b, (QTable, QKeyedTable)
        ):
            n = int(a.value)
            table = _as_table(b)
            if n == 0:
                return table
            return _xkey(table.columns[:n], table)
        if a.is_list_like or isinstance(a, QAtom):
            keys = a if a.is_list_like else enlist(a)
            values = b if b.is_list_like else enlist(b)
            return QDict(keys, values)
        raise QTypeError("! expects keys!values or n!table")

    def q_query(a: QValue, b: QValue) -> QValue:
        # list?item -> find;  n?m / n?list -> roll/deal (via interpreter RNG
        # wired in Interpreter.__init__ through a closure would be cleaner,
        # but find is the only deterministic part needed by workloads)
        if isinstance(a, (QVector, QList)):
            return bi.find(a, b)
        raise QNotSupportedError("?: roll/deal — use deterministic workloads")

    def q_dollar(a: QValue, b: QValue) -> QValue:
        return bi.cast(a, b)

    def q_at(a: QValue, b: QValue) -> QValue:
        return bi.index_at(a, b)

    def q_match_verb(a: QValue, b: QValue) -> QValue:
        return QAtom(QType.BOOLEAN, q_match(a, b))

    def q_take(a: QValue, b: QValue) -> QValue:
        return bi.take(a, b)

    def q_drop(a: QValue, b: QValue) -> QValue:
        return bi.drop(a, b)

    def q_concat(a: QValue, b: QValue) -> QValue:
        return bi.concat(a, b)

    return {
        "+": wrap(bi.add),
        "-": wrap(bi.subtract),
        "*": wrap(bi.multiply),
        "%": wrap(bi.divide),
        "&": wrap(bi.q_and),
        "|": wrap(bi.q_or),
        "^": wrap(bi.fill),
        "=": wrap(bi.q_equals),
        "<>": wrap(bi.q_not_equals),
        "<": wrap(bi.less),
        "<=": wrap(bi.less_eq),
        ">": wrap(bi.greater),
        ">=": wrap(bi.greater_eq),
        ",": q_concat,
        "#": q_take,
        "_": q_drop,
        "!": q_bang,
        "?": q_query,
        "$": q_dollar,
        "@": q_at,
        "~": q_match_verb,
        "xbar": wrap(bi.xbar),
    }


def _build_monads() -> dict[str, Callable[[QValue], QValue]]:
    def neg_monad(v: QValue) -> QValue:
        return bi.broadcast_monad(bi.neg, v)

    return {
        "-": neg_monad,
        "+": bi.flip,
        "*": bi.first,
        "#": bi.count,
        "_": lambda v: bi.broadcast_monad(bi.floor_, v),
        "?": bi.distinct,
        "|": bi.reverse,
        "&": bi.where,
        "=": bi.group,
        "<": bi.iasc,
        ">": bi.idesc,
        "~": lambda v: bi.broadcast_monad(bi.q_not, v),
        "^": bi.q_null,
        "!": bi.q_key,
        ".": bi.q_value,
        "$": bi.q_string,
        ",": enlist,
    }


def _build_keywords(interp: Interpreter) -> dict[str, QValue]:
    def monadic(name: str, fn) -> QBuiltin:
        return QBuiltin(name, fn, 1)

    def dyadic(name: str, fn) -> QBuiltin:
        return QBuiltin(name, fn, 2)

    def wrap_monad(atom_fn):
        return lambda v: bi.broadcast_monad(atom_fn, v)

    def wrap_dyad(atom_fn):
        return lambda a, b: bi.broadcast_dyad(atom_fn, a, b)

    def xasc(columns: QValue, table: QValue) -> QValue:
        return _sort_table(columns, table, descending=False)

    def xdesc(columns: QValue, table: QValue) -> QValue:
        return _sort_table(columns, table, descending=True)

    def _sort_table(columns: QValue, table: QValue, descending: bool) -> QValue:
        t = _as_table(table)
        names = _symbol_list(columns, "xasc")
        keys = []
        for i in range(len(t)):
            row_key = []
            for name in names:
                col = t.column(name)
                if isinstance(col, QVector):
                    row_key.append(bi._sort_key(col.qtype, col.items[i]))
                else:
                    row_key.append(("z", i))
            keys.append((tuple(row_key), i))
        keys.sort(key=lambda pair: pair[0], reverse=descending)
        return t.take([i for __, i in keys])

    def xcol(names: QValue, table: QValue) -> QValue:
        t = _as_table(table)
        if isinstance(names, QDict):
            mapping = {
                k.value: v.value
                for k, v in zip(_item_list(names.keys), _item_list(names.values))
                if isinstance(k, QAtom) and isinstance(v, QAtom)
            }
            new_names = [mapping.get(c, c) for c in t.columns]
            return QTable(new_names, t.data)
        new = _symbol_list(names, "xcol")
        renamed = new + t.columns[len(new):]
        return QTable(renamed, t.data)

    def xkey(columns: QValue, table: QValue) -> QValue:
        return _xkey(_symbol_list(columns, "xkey"), table)

    def lj(left: QValue, right: QValue) -> QValue:
        if not isinstance(right, QKeyedTable):
            raise QTypeError("lj expects a keyed table on the right")
        return joins.left_join(_as_table(left), right)

    def ij(left: QValue, right: QValue) -> QValue:
        if not isinstance(right, QKeyedTable):
            raise QTypeError("ij expects a keyed table on the right")
        return joins.inner_join(_as_table(left), right)

    def uj(left: QValue, right: QValue) -> QValue:
        return joins.union_join(_as_table(left), _as_table(right))

    def insert(target: QValue, rows: QValue) -> QValue:
        if not (isinstance(target, QAtom) and target.qtype == QType.SYMBOL):
            raise QTypeError("insert expects a global table name")
        table = interp.globals.get(target.value)
        if not isinstance(table, QTable):
            raise QNameError(f"no global table {target.value!r}")
        new_rows = _rows_value_to_table(rows, table)
        combined = joins.union_join(table, new_rows)
        interp.globals[target.value] = combined
        return long_vector(range(len(table), len(combined)))

    def upsert(target: QValue, rows: QValue) -> QValue:
        return insert(target, rows)

    def _separator_text(sep: QValue) -> str | None:
        if isinstance(sep, QAtom) and sep.qtype == QType.CHAR:
            return sep.value
        if isinstance(sep, QVector) and sep.qtype == QType.CHAR:
            return "".join(sep.items)
        return None

    def vs(sep: QValue, text: QValue) -> QValue:
        sep_text = _separator_text(sep)
        if sep_text is not None and isinstance(text, QVector):
            pieces = "".join(text.items).split(sep_text)
            return QList([QVector(QType.CHAR, list(p)) for p in pieces])
        raise QNotSupportedError("vs variant")

    def sv(sep: QValue, parts: QValue) -> QValue:
        sep_text = _separator_text(sep)
        if sep_text is not None and isinstance(parts, QList):
            texts = []
            for item in parts.items:
                if isinstance(item, QVector) and item.qtype == QType.CHAR:
                    texts.append("".join(item.items))
                else:
                    raise QTypeError("sv expects strings")
            return QVector(QType.CHAR, list(sep_text.join(texts)))
        raise QNotSupportedError("sv variant")

    def lower(value: QValue) -> QValue:
        return _case(value, str.lower)

    def upper(value: QValue) -> QValue:
        return _case(value, str.upper)

    def _case(value: QValue, fn) -> QValue:
        if isinstance(value, QAtom) and value.qtype == QType.SYMBOL:
            return QAtom(QType.SYMBOL, fn(value.value))
        if isinstance(value, QVector) and value.qtype == QType.CHAR:
            return QVector(QType.CHAR, [fn(c) for c in value.items])
        if isinstance(value, QVector) and value.qtype == QType.SYMBOL:
            return QVector(QType.SYMBOL, [fn(s) for s in value.items])
        raise QTypeError("lower/upper expects symbols or strings")

    def q_all(value: QValue) -> QValue:
        items = _item_list(value) if not isinstance(value, QAtom) else [value]
        return QAtom(
            QType.BOOLEAN,
            all(isinstance(i, QAtom) and bool(i.value) for i in items),
        )

    def q_any(value: QValue) -> QValue:
        items = _item_list(value) if not isinstance(value, QAtom) else [value]
        return QAtom(
            QType.BOOLEAN,
            any(isinstance(i, QAtom) and bool(i.value) for i in items),
        )

    def keys_fn(value: QValue) -> QValue:
        if isinstance(value, QKeyedTable):
            return QVector(QType.SYMBOL, value.key.columns)
        raise QTypeError("keys expects a keyed table")

    def fby(spec: QValue, groups: QValue) -> QValue:
        """``(agg; data) fby group`` — per-group aggregate, broadcast back
        to every row of the group (q's filter-by idiom)."""
        if not isinstance(spec, QList) or len(spec.items) != 2:
            raise QTypeError("fby expects (aggregate; data) on the left")
        fn_value, data = spec.items
        if not isinstance(groups, (QVector, QList)):
            raise QTypeError("fby group must be a list")
        if not isinstance(data, (QVector, QList)):
            raise QTypeError("fby data must be a list")
        if length_of(data) != length_of(groups):
            raise QLengthError("fby data and group lengths differ")
        buckets: dict = {}
        order: list = []
        group_items = _item_list(groups)
        for i, key_atom in enumerate(group_items):
            key = (
                (key_atom.qtype.name, key_atom.value)
                if isinstance(key_atom, QAtom)
                else ("complex", repr(key_atom))
            )
            if isinstance(key[1], float) and key[1] != key[1]:
                key = (key[0], "0n")
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(i)
        results: dict[int, QValue] = {}
        for key in order:
            rows = buckets[key]
            window = take_value(data, rows)
            value = interp.apply(fn_value, [window])
            for row in rows:
                results[row] = value
        return _collapse_cells([results[i] for i in range(len(group_items))])

    def differ_fn(value: QValue) -> QValue:
        """``differ`` — true where an item differs from its predecessor;
        the first item is always true."""
        if not isinstance(value, (QVector, QList)):
            raise QTypeError("differ expects a list")
        items = _item_list(value)
        out = []
        for i, item in enumerate(items):
            out.append(i == 0 or not q_match(item, items[i - 1]))
        from repro.qlang.values import bool_vector

        return bool_vector(out)

    def tables_fn(__: QValue) -> QValue:
        """``tables[]`` — names of global tables, sorted (as q does)."""
        names = sorted(
            name
            for name, value in interp.globals.items()
            if isinstance(value, (QTable, QKeyedTable))
        )
        return QVector(QType.SYMBOL, names)

    keywords: dict[str, QValue] = {
        "til": monadic("til", bi.til),
        "count": monadic("count", bi.count),
        "first": monadic("first", bi.first),
        "last": monadic("last", bi.last),
        "reverse": monadic("reverse", bi.reverse),
        "distinct": monadic("distinct", bi.distinct),
        "where": monadic("where", bi.where),
        "group": monadic("group", bi.group),
        "iasc": monadic("iasc", bi.iasc),
        "idesc": monadic("idesc", bi.idesc),
        "asc": monadic("asc", bi.asc),
        "desc": monadic("desc", bi.desc),
        "sums": monadic("sums", bi.sums),
        "prds": monadic("prds", bi.prds),
        "maxs": monadic("maxs", bi.maxs),
        "mins": monadic("mins", bi.mins),
        "deltas": monadic("deltas", bi.deltas),
        "ratios": monadic("ratios", bi.ratios),
        "fills": monadic("fills", bi.fills),
        "next": monadic("next", bi.next_),
        "prev": monadic("prev", bi.prev_),
        "neg": monadic("neg", wrap_monad(bi.neg)),
        "abs": monadic("abs", wrap_monad(bi.q_abs)),
        "sqrt": monadic("sqrt", wrap_monad(bi.sqrt)),
        "exp": monadic("exp", wrap_monad(bi.exp)),
        "log": monadic("log", wrap_monad(bi.log)),
        "floor": monadic("floor", wrap_monad(bi.floor_)),
        "ceiling": monadic("ceiling", wrap_monad(bi.ceiling)),
        "signum": monadic("signum", wrap_monad(bi.signum)),
        "not": monadic("not", wrap_monad(bi.q_not)),
        "null": monadic("null", bi.q_null),
        "raze": monadic("raze", bi.raze),
        "flip": monadic("flip", bi.flip),
        "key": monadic("key", bi.q_key),
        "keys": monadic("keys", keys_fn),
        "tables": monadic("tables", tables_fn),
        "fby": dyadic("fby", fby),
        "differ": monadic("differ", differ_fn),
        "value": monadic("value", bi.q_value),
        "cols": monadic("cols", bi.cols),
        "meta": monadic("meta", bi.meta),
        "type": monadic("type", bi.q_type),
        "string": monadic("string", bi.q_string),
        "enlist": monadic("enlist", enlist),
        "sum": monadic("sum", bi.q_sum),
        "avg": monadic("avg", bi.q_avg),
        "min": monadic("min", bi.q_min),
        "max": monadic("max", bi.q_max),
        "med": monadic("med", bi.q_med),
        "dev": monadic("dev", bi.q_dev),
        "var": monadic("var", bi.q_var),
        "prd": monadic("prd", bi.q_prd),
        "all": monadic("all", q_all),
        "any": monadic("any", q_any),
        "lower": monadic("lower", lower),
        "upper": monadic("upper", upper),
        "in": dyadic("in", bi.q_in),
        "within": dyadic("within", bi.within),
        "like": dyadic("like", bi.like),
        "except": dyadic("except", bi.except_),
        "inter": dyadic("inter", bi.inter),
        "union": dyadic("union", bi.union),
        "cross": dyadic("cross", bi.cross),
        "bin": dyadic("bin", bi.bin_),
        "binr": dyadic("binr", bi.bin_),
        "mod": dyadic("mod", wrap_dyad(bi.modulo)),
        "div": dyadic("div", wrap_dyad(bi.int_divide)),
        "and": dyadic("and", wrap_dyad(bi.q_and)),
        "or": dyadic("or", wrap_dyad(bi.q_or)),
        "xbar": dyadic("xbar", wrap_dyad(bi.xbar)),
        "xprev": dyadic("xprev", lambda n, v: bi.xprev(_as_atom(n), v)),
        "wavg": dyadic("wavg", bi.wavg),
        "wsum": dyadic("wsum", bi.wsum),
        "mavg": dyadic("mavg", lambda n, v: bi.mavg(_as_atom(n), v)),
        "msum": dyadic("msum", lambda n, v: bi.msum(_as_atom(n), v)),
        "mcount": dyadic("mcount", lambda n, v: bi.mcount(_as_atom(n), v)),
        "mmax": dyadic("mmax", lambda n, v: bi.mmax(_as_atom(n), v)),
        "mmin": dyadic("mmin", lambda n, v: bi.mmin(_as_atom(n), v)),
        "mdev": dyadic("mdev", lambda n, v: bi.mdev(_as_atom(n), v)),
        "sublist": dyadic("sublist", bi.sublist),
        "take": dyadic("take", bi.take),
        "cut": dyadic("cut", bi.cut),
        "xasc": dyadic("xasc", xasc),
        "xdesc": dyadic("xdesc", xdesc),
        "xcol": dyadic("xcol", xcol),
        "xkey": dyadic("xkey", xkey),
        "lj": dyadic("lj", lj),
        "ij": dyadic("ij", ij),
        "uj": dyadic("uj", uj),
        "insert": dyadic("insert", insert),
        "upsert": dyadic("upsert", upsert),
        "vs": dyadic("vs", vs),
        "sv": dyadic("sv", sv),
    }
    return keywords


def _as_atom(value: QValue) -> QAtom:
    if isinstance(value, QAtom):
        return value
    raise QTypeError("expected an atom argument")


def _rows_value_to_table(rows: QValue, template: QTable) -> QTable:
    if isinstance(rows, QTable):
        return rows
    if isinstance(rows, QDict):
        keys = _item_list(rows.keys)
        values = _item_list(rows.values)
        names = [k.value for k in keys if isinstance(k, QAtom)]
        data = [enlist(v) if isinstance(v, QAtom) else v for v in values]
        return QTable(names, data)
    if isinstance(rows, QList) and len(rows.items) == len(template.columns):
        data = [enlist(v) if isinstance(v, QAtom) else v for v in rows.items]
        return QTable(list(template.columns), data)
    raise QTypeError("insert expects a table, dict or row list")
