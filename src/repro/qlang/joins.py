"""Reference implementations of Q's join verbs.

These implement the semantics the paper's Example 2 relies on — most
importantly the *as-of join* ``aj``, "one of the most commonly used queries
by financial market analysts".  The reference interpreter uses these
directly; the side-by-side testing framework compares them against the SQL
translation Hyper-Q emits.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Sequence

from repro.errors import QLengthError, QTypeError
from repro.qlang.builtins import _sort_key
from repro.qlang.qtypes import QType
from repro.qlang.values import (
    QAtom,
    QKeyedTable,
    QList,
    QTable,
    QValue,
    QVector,
    take_value,
)


def _column_raws(table: QTable, name: str) -> list:
    col = table.column(name)
    if isinstance(col, QVector):
        return list(col.items)
    if isinstance(col, QList):
        return list(col.items)
    raise QTypeError(f"column {name!r} is not a list")


def _match_key(table: QTable, names: Sequence[str], row: int) -> tuple:
    key = []
    for name in names:
        col = table.column(name)
        if isinstance(col, QVector):
            key.append((col.qtype.name, _sort_key(col.qtype, col.items[row])))
        else:
            key.append(("general", repr(col.items[row])))
    return tuple(key)


def asof_join(
    columns: Sequence[str], left: QTable, right: QTable, use_right_time: bool = False
) -> QTable:
    """``aj[cols; t; q]`` — prevailing-quote style as-of join.

    The first ``len(columns)-1`` columns match exactly; the final column
    matches the *latest* right row whose value is <= the left value.  All
    left rows survive; unmatched right columns become typed nulls.  With
    ``use_right_time`` (q's ``aj0``) the time column in the result comes
    from the right table.
    """
    if not columns:
        raise QTypeError("aj needs at least one join column")
    eq_cols, asof_col = list(columns[:-1]), columns[-1]
    for name in columns:
        if not left.has_column(name) or not right.has_column(name):
            raise QTypeError(f"aj join column {name!r} missing from an input")

    # Bucket the right table by equality key, each bucket sorted by the
    # as-of column (kdb+ requires sorted inputs; we sort defensively).
    asof_raws_right = _column_raws(right, asof_col)
    asof_type_right = _asof_type(right, asof_col)
    buckets: dict[tuple, list[tuple, int]] = {}
    for i in range(len(right)):
        key = _match_key(right, eq_cols, i)
        buckets.setdefault(key, []).append(
            (_sort_key(asof_type_right, asof_raws_right[i]), i)
        )
    for bucket in buckets.values():
        bucket.sort(key=lambda pair: pair[0])

    asof_raws_left = _column_raws(left, asof_col)
    asof_type_left = _asof_type(left, asof_col)
    matches: list[int | None] = []
    for i in range(len(left)):
        bucket = buckets.get(_match_key(left, eq_cols, i))
        if not bucket:
            matches.append(None)
            continue
        probe = _sort_key(asof_type_left, asof_raws_left[i])
        keys = [pair[0] for pair in bucket]
        pos = bisect_right(keys, probe)
        matches.append(bucket[pos - 1][1] if pos else None)

    out_columns = list(left.columns)
    out_data = list(left.data)
    extra = [c for c in right.columns if c not in left.columns]
    if use_right_time:
        targets = extra + [asof_col]
    else:
        targets = extra
    for name in targets:
        right_col = right.column(name)
        picked = _pick(right_col, matches)
        if name in out_columns:
            out_data[out_columns.index(name)] = picked
        else:
            out_columns.append(name)
            out_data.append(picked)
    return QTable(out_columns, out_data)


def _asof_type(table: QTable, name: str) -> QType:
    col = table.column(name)
    return col.qtype if isinstance(col, QVector) else QType.LONG


def _pick(col: QValue, matches: Sequence[int | None]) -> QValue:
    if isinstance(col, QVector):
        null = col.qtype.null_value()
        return QVector(
            col.qtype,
            [col.items[m] if m is not None else null for m in matches],
        )
    if isinstance(col, QList):
        null_atom = QAtom(QType.LONG, QType.LONG.null_value())
        return QList(
            [col.items[m] if m is not None else null_atom for m in matches]
        )
    raise QTypeError("join column is not a list")


def left_join(left: QTable, right: QKeyedTable) -> QTable:
    """``lj`` — for each left row, look up the right keyed table."""
    key_cols = right.key_columns
    for name in key_cols:
        if not left.has_column(name):
            raise QTypeError(f"lj key column {name!r} missing from left table")
    index: dict[tuple, int] = {}
    for i in range(len(right.key)):
        index.setdefault(_match_key(right.key, key_cols, i), i)
    matches = [
        index.get(_match_key(left, key_cols, i)) for i in range(len(left))
    ]
    out_columns = list(left.columns)
    out_data = list(left.data)
    for name in right.value.columns:
        picked = _pick(right.value.column(name), matches)
        if name in out_columns:
            # matched rows take the right value; unmatched keep the left
            existing = out_data[out_columns.index(name)]
            merged = _merge_preferring_match(existing, picked, matches)
            out_data[out_columns.index(name)] = merged
        else:
            out_columns.append(name)
            out_data.append(picked)
    return QTable(out_columns, out_data)


def _merge_preferring_match(
    existing: QValue, picked: QValue, matches: Sequence[int | None]
) -> QValue:
    if isinstance(existing, QVector) and isinstance(picked, QVector):
        items = [
            p if m is not None else e
            for e, p, m in zip(existing.items, picked.items, matches)
        ]
        return QVector(picked.qtype, items)
    if isinstance(existing, QList) and isinstance(picked, QList):
        return QList(
            [
                p if m is not None else e
                for e, p, m in zip(existing.items, picked.items, matches)
            ]
        )
    raise QTypeError("lj column type mismatch")


def inner_join(left: QTable, right: QKeyedTable) -> QTable:
    """``ij`` — keep only left rows with a key match."""
    key_cols = right.key_columns
    index: dict[tuple, int] = {}
    for i in range(len(right.key)):
        index.setdefault(_match_key(right.key, key_cols, i), i)
    kept_left: list[int] = []
    kept_right: list[int] = []
    for i in range(len(left)):
        match = index.get(_match_key(left, key_cols, i))
        if match is not None:
            kept_left.append(i)
            kept_right.append(match)
    base = left.take(kept_left)
    out_columns = list(base.columns)
    out_data = list(base.data)
    for name in right.value.columns:
        col = take_value(right.value.column(name), kept_right)
        if name in out_columns:
            out_data[out_columns.index(name)] = col
        else:
            out_columns.append(name)
            out_data.append(col)
    return QTable(out_columns, out_data)


def equi_join(columns: Sequence[str], left: QTable, right: QTable) -> QTable:
    """``ej[cols; t1; t2]`` — inner equi-join keeping all combinations."""
    index: dict[tuple, list[int]] = {}
    for i in range(len(right)):
        index.setdefault(_match_key(right, columns, i), []).append(i)
    left_rows: list[int] = []
    right_rows: list[int] = []
    for i in range(len(left)):
        for j in index.get(_match_key(left, columns, i), []):
            left_rows.append(i)
            right_rows.append(j)
    base = left.take(left_rows)
    out_columns = list(base.columns)
    out_data = list(base.data)
    for name in right.columns:
        if name in columns:
            continue
        col = take_value(right.column(name), right_rows)
        if name in out_columns:
            out_data[out_columns.index(name)] = col
        else:
            out_columns.append(name)
            out_data.append(col)
    return QTable(out_columns, out_data)


def union_join(left: QTable, right: QTable) -> QTable:
    """``uj`` — append tables, unifying column sets with null fill."""
    out_columns = list(left.columns) + [
        c for c in right.columns if c not in left.columns
    ]
    data: list[QValue] = []
    n_left, n_right = len(left), len(right)
    for name in out_columns:
        if left.has_column(name) and right.has_column(name):
            from repro.qlang.builtins import concat

            data.append(concat(left.column(name), right.column(name)))
        elif left.has_column(name):
            col = left.column(name)
            data.append(_append_nulls(col, n_right))
        else:
            col = right.column(name)
            data.append(_prepend_nulls(col, n_left))
    return QTable(out_columns, data)


def _append_nulls(col: QValue, count: int) -> QValue:
    if isinstance(col, QVector):
        return QVector(col.qtype, col.items + [col.qtype.null_value()] * count)
    if isinstance(col, QList):
        null_atom = QAtom(QType.LONG, QType.LONG.null_value())
        return QList(col.items + [null_atom] * count)
    raise QTypeError("uj column is not a list")


def _prepend_nulls(col: QValue, count: int) -> QValue:
    if isinstance(col, QVector):
        return QVector(col.qtype, [col.qtype.null_value()] * count + col.items)
    if isinstance(col, QList):
        null_atom = QAtom(QType.LONG, QType.LONG.null_value())
        return QList([null_atom] * count + col.items)
    raise QTypeError("uj column is not a list")


def window_join(
    windows: tuple[list, list],
    columns: Sequence[str],
    left: QTable,
    right: QTable,
    aggregations: Sequence[tuple[str, str, Callable[[QValue], QValue]]],
) -> QTable:
    """``wj``-style window join.

    ``windows`` is a pair of per-left-row bounds on the time column;
    ``aggregations`` is a list of ``(output_name, right_column, agg_fn)``.
    The interpreter adapts q's ``wj[(b;e);cols;t;(q;(f;c)...)]`` surface to
    this call.
    """
    lows, highs = windows
    if len(lows) != len(left) or len(highs) != len(left):
        raise QLengthError("wj window bounds must match the left row count")
    eq_cols, time_col = list(columns[:-1]), columns[-1]
    time_type = _asof_type(right, time_col)
    time_raws = _column_raws(right, time_col)

    buckets: dict[tuple, list[tuple, int]] = {}
    for i in range(len(right)):
        key = _match_key(right, eq_cols, i)
        buckets.setdefault(key, []).append(
            (_sort_key(time_type, time_raws[i]), i)
        )
    for bucket in buckets.values():
        bucket.sort(key=lambda pair: pair[0])

    out_columns = list(left.columns)
    out_data = list(left.data)
    agg_results: dict[str, list[QValue]] = {name: [] for name, __, __ in aggregations}
    for i in range(len(left)):
        bucket = buckets.get(_match_key(left, eq_cols, i), [])
        lo_key = _sort_key(time_type, lows[i])
        hi_key = _sort_key(time_type, highs[i])
        rows = [idx for key, idx in bucket if lo_key <= key <= hi_key]
        for name, source_col, agg_fn in aggregations:
            window_values = take_value(right.column(source_col), rows)
            agg_results[name].append(agg_fn(window_values))
    for name, __, __ in aggregations:
        atoms = agg_results[name]
        from repro.qlang.values import vector_of_atoms

        column = vector_of_atoms([a for a in atoms if isinstance(a, QAtom)]) \
            if all(isinstance(a, QAtom) for a in atoms) else QList(atoms)
        if name in out_columns:
            out_data[out_columns.index(name)] = column
        else:
            out_columns.append(name)
            out_data.append(column)
    return QTable(out_columns, out_data)
