"""Console-style formatting of Q values.

Used by ``string``, by error messages, and by the example scripts to show
results the way a kdb+ console would (approximately — exact console quirks
like column padding widths are not part of the reproduction contract).
"""

from __future__ import annotations

import math

from repro.qlang.lexer import date_from_days
from repro.qlang.qtypes import QType
from repro.qlang.values import (
    QAtom,
    QDict,
    QKeyedTable,
    QLambda,
    QList,
    QTable,
    QValue,
    QVector,
)


def format_atom_raw(atom: QAtom) -> str:
    """Format an atom's payload without any quoting/backtick decoration."""
    qtype, raw = atom.qtype, atom.value
    if atom.is_null:
        return _NULL_DISPLAY.get(qtype, "0N")
    if qtype == QType.BOOLEAN:
        return "1" if raw else "0"
    if qtype == QType.SYMBOL or qtype == QType.CHAR:
        return str(raw)
    if qtype == QType.DATE:
        y, m, d = date_from_days(raw)
        return f"{y:04d}.{m:02d}.{d:02d}"
    if qtype == QType.MONTH:
        return f"{2000 + raw // 12:04d}.{raw % 12 + 1:02d}m"
    if qtype == QType.TIME:
        ms = raw % 1000
        s = raw // 1000
        return f"{s // 3600:02d}:{s % 3600 // 60:02d}:{s % 60:02d}.{ms:03d}"
    if qtype == QType.MINUTE:
        return f"{raw // 60:02d}:{raw % 60:02d}"
    if qtype == QType.SECOND:
        return f"{raw // 3600:02d}:{raw % 3600 // 60:02d}:{raw % 60:02d}"
    if qtype == QType.TIMESTAMP:
        days, nanos = divmod(raw, 86_400_000_000_000)
        y, m, d = date_from_days(days)
        s, frac = divmod(nanos, 1_000_000_000)
        return (
            f"{y:04d}.{m:02d}.{d:02d}D{s // 3600:02d}:{s % 3600 // 60:02d}:"
            f"{s % 60:02d}.{frac:09d}"
        )
    if qtype == QType.TIMESPAN:
        days, nanos = divmod(raw, 86_400_000_000_000)
        s, frac = divmod(nanos, 1_000_000_000)
        return (
            f"{days}D{s // 3600:02d}:{s % 3600 // 60:02d}:{s % 60:02d}."
            f"{frac:09d}"
        )
    if isinstance(raw, float):
        if math.isinf(raw):
            return "0w" if raw > 0 else "-0w"
        if raw == int(raw) and abs(raw) < 1e15:
            return f"{raw:g}"
        return f"{raw:g}"
    return str(raw)


_NULL_DISPLAY = {
    QType.LONG: "0N",
    QType.INT: "0Ni",
    QType.SHORT: "0Nh",
    QType.FLOAT: "0n",
    QType.REAL: "0Ne",
    QType.SYMBOL: "`",
    QType.CHAR: " ",
    QType.DATE: "0Nd",
    QType.TIME: "0Nt",
    QType.TIMESTAMP: "0Np",
    QType.MONTH: "0Nm",
    QType.MINUTE: "0Nu",
    QType.SECOND: "0Nv",
    QType.TIMESPAN: "0Nn",
    QType.DATETIME: "0Nz",
}

_TYPE_SUFFIX = {
    QType.BOOLEAN: "b",
    QType.SHORT: "h",
    QType.INT: "i",
    QType.REAL: "e",
}


def format_value(value: QValue, max_rows: int = 20) -> str:
    """Format any Q value in an approximate q-console style."""
    if isinstance(value, QAtom):
        return _format_atom(value)
    if isinstance(value, QVector):
        return _format_vector(value)
    if isinstance(value, QList):
        parts = [format_value(item, max_rows) for item in value.items]
        return "(" + ";".join(parts) + ")"
    if isinstance(value, QDict):
        key_txt = format_value(value.keys, max_rows)
        value_txt = format_value(value.values, max_rows)
        return f"{key_txt}!{value_txt}"
    if isinstance(value, QTable):
        return _format_table(value, max_rows)
    if isinstance(value, QKeyedTable):
        return (
            _format_table(value.key, max_rows)
            + "  |  "
            + _format_table(value.value, max_rows)
        )
    if isinstance(value, QLambda):
        return value.source or "{...}"
    return repr(value)


def _format_atom(atom: QAtom) -> str:
    text = format_atom_raw(atom)
    if atom.qtype == QType.SYMBOL and not atom.is_null:
        return f"`{text}"
    if atom.qtype == QType.CHAR:
        return f'"{text}"'
    suffix = _TYPE_SUFFIX.get(atom.qtype, "")
    if atom.qtype == QType.BOOLEAN:
        return text + "b"
    return text + suffix if not atom.is_null else text


def _format_vector(vector: QVector) -> str:
    if len(vector.items) == 1:
        # q renders singleton vectors with the enlist comma (",7") so the
        # text round-trips as a list, not an atom
        return "," + _format_atom(vector.atom_at(0))
    if vector.qtype == QType.CHAR:
        return '"' + "".join(vector.items) + '"'
    if vector.qtype == QType.SYMBOL:
        return "".join(f"`{s}" for s in vector.items) or "`$()"
    if vector.qtype == QType.BOOLEAN:
        return "".join("1" if b else "0" for b in vector.items) + "b"
    parts = [format_atom_raw(QAtom(vector.qtype, raw)) for raw in vector.items]
    suffix = _TYPE_SUFFIX.get(vector.qtype, "")
    if not parts:
        return f"`{vector.qtype.name.lower()}$()"
    return " ".join(parts) + suffix


def _format_table(table: QTable, max_rows: int) -> str:
    header = list(table.columns)
    rows: list[list[str]] = []
    shown = min(len(table), max_rows)
    for i in range(shown):
        row = []
        for col in table.data:
            cell = col.atom_at(i) if isinstance(col, QVector) else col.items[i]
            if isinstance(cell, QAtom):
                row.append(format_atom_raw(cell))
            else:
                row.append(format_value(cell))
        rows.append(row)
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
        for c in range(len(header))
    ]
    lines = [
        " ".join(h.ljust(w) for h, w in zip(header, widths)),
        "-" * (sum(widths) + len(widths) - 1),
    ]
    for row in rows:
        lines.append(" ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if len(table) > shown:
        lines.append("..")
    return "\n".join(lines)
