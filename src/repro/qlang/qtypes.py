"""The Q/kdb+ type system: type codes, typed nulls, infinities, promotion.

kdb+ identifies types by a small integer: a *positive* code denotes a typed
vector, the *negative* of the same code denotes an atom, ``0`` is a general
list, and codes >= 98 are compound structures (table, dictionary, lambda).
This module models the scalar portion of that scheme; compound values live
in :mod:`repro.qlang.values`.

Temporal encodings follow kdb+ conventions:

=========  =============================================
type       stored as
=========  =============================================
timestamp  nanoseconds since 2000.01.01D00:00:00
month      months since 2000.01m
date       days since 2000.01.01
timespan   nanoseconds
minute     minutes since midnight
second     seconds since midnight
time       milliseconds since midnight
=========  =============================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.errors import QTypeError

#: kdb+ epoch (2000.01.01) expressed as days since the Unix epoch.
KDB_EPOCH_UNIX_DAYS = 10957

NULL_SHORT = -(2**15)
NULL_INT = -(2**31)
NULL_LONG = -(2**63)
INF_SHORT = 2**15 - 1
INF_INT = 2**31 - 1
INF_LONG = 2**63 - 1


class QType(Enum):
    """Positive kdb+ vector type codes (atoms use the negated code)."""

    BOOLEAN = 1
    GUID = 2
    BYTE = 4
    SHORT = 5
    INT = 6
    LONG = 7
    REAL = 8
    FLOAT = 9
    CHAR = 10
    SYMBOL = 11
    TIMESTAMP = 12
    MONTH = 13
    DATE = 14
    DATETIME = 15
    TIMESPAN = 16
    MINUTE = 17
    SECOND = 18
    TIME = 19

    @property
    def code(self) -> int:
        return self.value

    @property
    def char(self) -> str:
        """Single-character type name as shown by ``meta`` in q."""
        return _TYPE_CHARS[self]

    @property
    def is_numeric(self) -> bool:
        return self in _NUMERIC_TYPES

    @property
    def is_integral(self) -> bool:
        return self in _INTEGRAL_TYPES

    @property
    def is_temporal(self) -> bool:
        return self in _TEMPORAL_TYPES

    @property
    def is_floating(self) -> bool:
        return self in (QType.REAL, QType.FLOAT, QType.DATETIME)

    def null_value(self):
        """The typed null for this type (``0N``, ``0n``, `` ` `` ...)."""
        return _NULLS[self]

    def is_null(self, raw) -> bool:
        """True when ``raw`` is this type's null sentinel."""
        null = _NULLS[self]
        if isinstance(null, float) and math.isnan(null):
            return isinstance(raw, float) and math.isnan(raw)
        return raw == null


_TYPE_CHARS = {
    QType.BOOLEAN: "b",
    QType.GUID: "g",
    QType.BYTE: "x",
    QType.SHORT: "h",
    QType.INT: "i",
    QType.LONG: "j",
    QType.REAL: "e",
    QType.FLOAT: "f",
    QType.CHAR: "c",
    QType.SYMBOL: "s",
    QType.TIMESTAMP: "p",
    QType.MONTH: "m",
    QType.DATE: "d",
    QType.DATETIME: "z",
    QType.TIMESPAN: "n",
    QType.MINUTE: "u",
    QType.SECOND: "v",
    QType.TIME: "t",
}

_NUMERIC_TYPES = {
    QType.BOOLEAN,
    QType.BYTE,
    QType.SHORT,
    QType.INT,
    QType.LONG,
    QType.REAL,
    QType.FLOAT,
}

_INTEGRAL_TYPES = {QType.BOOLEAN, QType.BYTE, QType.SHORT, QType.INT, QType.LONG}

_TEMPORAL_TYPES = {
    QType.TIMESTAMP,
    QType.MONTH,
    QType.DATE,
    QType.DATETIME,
    QType.TIMESPAN,
    QType.MINUTE,
    QType.SECOND,
    QType.TIME,
}

_NULLS = {
    QType.BOOLEAN: False,  # q has no boolean null; 0b is the conventional fill
    QType.GUID: "00000000-0000-0000-0000-000000000000",
    QType.BYTE: 0,
    QType.SHORT: NULL_SHORT,
    QType.INT: NULL_INT,
    QType.LONG: NULL_LONG,
    QType.REAL: float("nan"),
    QType.FLOAT: float("nan"),
    QType.CHAR: " ",
    QType.SYMBOL: "",
    QType.TIMESTAMP: NULL_LONG,
    QType.MONTH: NULL_INT,
    QType.DATE: NULL_INT,
    QType.DATETIME: float("nan"),
    QType.TIMESPAN: NULL_LONG,
    QType.MINUTE: NULL_INT,
    QType.SECOND: NULL_INT,
    QType.TIME: NULL_INT,
}

#: Numeric promotion order for dyadic arithmetic (wider wins).
_PROMOTION_ORDER = [
    QType.BOOLEAN,
    QType.BYTE,
    QType.SHORT,
    QType.INT,
    QType.LONG,
    QType.REAL,
    QType.FLOAT,
]


def promote(left: QType, right: QType) -> QType:
    """Result type of a dyadic arithmetic op on ``left`` and ``right``.

    Follows q's widening rules for the numeric tower; temporal types
    combine with integral types by staying temporal (e.g. ``date + int``
    is a date).  Raises :class:`QTypeError` on un-combinable types.
    """
    if left == right:
        return left
    if left.is_numeric and right.is_numeric:
        li = _PROMOTION_ORDER.index(left)
        ri = _PROMOTION_ORDER.index(right)
        return _PROMOTION_ORDER[max(li, ri)]
    if left.is_temporal and right.is_numeric:
        return left
    if left.is_numeric and right.is_temporal:
        return right
    # timespan combines with other temporals without changing their kind
    if left.is_temporal and right == QType.TIMESPAN:
        return left
    if left == QType.TIMESPAN and right.is_temporal:
        return right
    raise QTypeError(
        f"cannot combine operands of type {left.name.lower()} and {right.name.lower()}"
    )


@dataclass(frozen=True)
class TypeInfo:
    """Static description of a Q type used by binder and wire codecs."""

    qtype: QType
    wire_size: int  # bytes per element in QIPC
    sql_name: str  # PostgreSQL type the binder maps this Q type to


#: Q -> SQL type mapping used by the binder (Section 3.2.2 of the paper:
#: ints map to integer types, symbol maps to varchar, strings to text).
TYPE_INFO = {
    QType.BOOLEAN: TypeInfo(QType.BOOLEAN, 1, "boolean"),
    QType.GUID: TypeInfo(QType.GUID, 16, "uuid"),
    QType.BYTE: TypeInfo(QType.BYTE, 1, "smallint"),
    QType.SHORT: TypeInfo(QType.SHORT, 2, "smallint"),
    QType.INT: TypeInfo(QType.INT, 4, "integer"),
    QType.LONG: TypeInfo(QType.LONG, 8, "bigint"),
    QType.REAL: TypeInfo(QType.REAL, 4, "real"),
    QType.FLOAT: TypeInfo(QType.FLOAT, 8, "double precision"),
    QType.CHAR: TypeInfo(QType.CHAR, 1, "char(1)"),
    QType.SYMBOL: TypeInfo(QType.SYMBOL, 0, "varchar"),
    QType.TIMESTAMP: TypeInfo(QType.TIMESTAMP, 8, "timestamp"),
    QType.MONTH: TypeInfo(QType.MONTH, 4, "date"),
    QType.DATE: TypeInfo(QType.DATE, 4, "date"),
    QType.DATETIME: TypeInfo(QType.DATETIME, 8, "timestamp"),
    QType.TIMESPAN: TypeInfo(QType.TIMESPAN, 8, "interval"),
    QType.MINUTE: TypeInfo(QType.MINUTE, 4, "time"),
    QType.SECOND: TypeInfo(QType.SECOND, 4, "time"),
    QType.TIME: TypeInfo(QType.TIME, 4, "time"),
}


def sql_type_for(qtype: QType) -> str:
    """PostgreSQL type name the binder emits for a Q type."""
    return TYPE_INFO[qtype].sql_name


_BY_CHAR = {t.char: t for t in QType}


def type_from_char(char: str) -> QType:
    """Look up a QType by its single-character name (``j`` -> LONG)."""
    try:
        return _BY_CHAR[char]
    except KeyError:
        raise QTypeError(f"unknown type character {char!r}") from None
