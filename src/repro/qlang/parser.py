"""Lightweight recursive-descent parser for Q.

Design follows the paper (Section 3.2.1): the parser's *only* role is to
build an abstract representation of the query.  It performs no name
resolution and no type inference — a variable reference stays a
:class:`~repro.qlang.ast.Name` until the binder or interpreter resolves it.

The grammar peculiarities handled here:

* strict right-to-left evaluation with **no operator precedence**:
  ``2*3+4`` parses as ``2*(3+4)``;
* juxtaposition is application: ``count trades`` applies ``count``;
* adjacent numeric literals merge into one vector literal (``1 2 3``);
* ``,`` is the join verb *except* at the top level of template column and
  constraint lists, where it separates entries;
* select/exec/update/delete templates with ``by``/``from``/``where``;
* lambdas with explicit ``[a;b]`` or implicit ``x y z`` parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QSyntaxError
from repro.qlang import ast
from repro.qlang.ast import ColumnSpec, Node
from repro.qlang.lexer import Token, TokenKind, tokenize
from repro.qlang.qtypes import QType, promote
from repro.qlang.values import QAtom, QList, QValue, QVector, q_string

#: Named verbs that may be used infix between two nouns (``x in y``).
INFIX_NAMES = frozenset(
    {
        "in", "within", "like", "and", "or", "except", "inter", "union",
        "mod", "div", "xbar", "xprev", "xasc", "xdesc", "xcol", "xkey",
        "cross", "cut", "each", "over", "scan", "prior",
        "mavg", "msum", "mmax", "mmin", "mcount",
        "mdev", "sublist", "vs", "sv", "set", "insert", "upsert", "wavg",
        "wsum", "lj", "ij", "uj", "ej", "pj", "bin", "binr", "ss", "ssr",
        "take", "rotate", "fill", "fby",
    }
)

#: Tokens that always terminate an expression.
_HARD_STOPS = frozenset({TokenKind.SEMI, TokenKind.RPAREN, TokenKind.RBRACKET,
                         TokenKind.RBRACE, TokenKind.EOF})


@dataclass
class _Verb(Node):
    """Internal: an operator appearing as a stand-alone factor (``+/`` ...).

    Exposed through :class:`ast.AdverbApply`/``UnOp`` in the final tree; a
    bare verb used as a value becomes ``ast.Name`` of the operator text so
    downstream components have a single representation for callables.
    """

    op: str


class Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.index = 0

    # -- token stream helpers -------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def peek(self, offset: int = 1) -> Token:
        i = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != TokenKind.EOF:
            self.index += 1
        return token

    def expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            raise QSyntaxError(
                f"expected {text or kind.name} at position {token.pos}, "
                f"found {token.text!r}"
            )
        return self.advance()

    def _error(self, message: str) -> QSyntaxError:
        return QSyntaxError(f"{message} at position {self.current.pos} "
                            f"(near {self.current.text!r})")

    # -- entry points ---------------------------------------------------------

    def parse_program(self) -> ast.Statements:
        statements: list[Node] = []
        while self.current.kind != TokenKind.EOF:
            if self.current.kind == TokenKind.SEMI:
                self.advance()
                continue
            statements.append(self.parse_statement(frozenset()))
        return ast.Statements(statements)

    def parse_statement(self, stop: frozenset[str]) -> Node:
        token = self.current
        # Early return `:expr` (only meaningful inside lambdas, but the
        # parser does not police context — the interpreter does).
        if token.kind == TokenKind.OPERATOR and token.text == ":":
            self.advance()
            return ast.Return(self.parse_expr(stop), pos=token.pos)
        if token.kind == TokenKind.ADVERB and token.text == "'":
            self.advance()
            return ast.Signal(self.parse_expr(stop), pos=token.pos)
        return self.parse_expr(stop)

    # -- expressions ----------------------------------------------------------

    def _at_stop(self, stop: frozenset[str]) -> bool:
        token = self.current
        if token.kind in _HARD_STOPS:
            return True
        if token.kind == TokenKind.COMMA and "," in stop:
            return True
        if token.kind == TokenKind.KEYWORD and token.text in stop:
            return True
        return False

    def parse_expr(self, stop: frozenset[str]) -> Node:
        if self._at_stop(stop):
            raise self._error("expected an expression")
        first = self.parse_factor(stop)

        if isinstance(first, _Verb):
            # A verb at the head of an expression is a monadic application
            # (e.g. `-x`), or a naked verb value when nothing follows.
            if self._at_stop(stop):
                return ast.Name(first.op, pos=first.pos)
            operand = self.parse_expr(stop)
            return ast.UnOp(first.op, operand, pos=first.pos)

        return self._continue_expr(first, stop)

    def _continue_expr(self, first: Node, stop: frozenset[str]) -> Node:
        """Given a parsed noun, consume the remainder of the expression."""
        if self._at_stop(stop):
            return first

        token = self.current

        # Assignment: name [indices] ':' expr   or compound  name op ':' expr
        assign = self._try_parse_assignment(first, stop)
        if assign is not None:
            return assign

        # Dyadic operator (with optional glued adverbs): a + b
        if token.kind in (TokenKind.OPERATOR, TokenKind.COMMA):
            op = self.advance().text
            verb: Node | str = op
            while (
                self.current.kind == TokenKind.ADVERB and self.current.glued
            ):
                verb = ast.AdverbApply(verb, self.advance().text, pos=token.pos)
            if self._at_stop(stop):
                # trailing verb: projection `f[x;]`-ish; treat as partial
                return ast.Apply(
                    _verb_node(verb, token.pos), [first, None], pos=token.pos
                )
            right = self.parse_expr(stop)
            if isinstance(verb, str):
                return ast.BinOp(verb, first, right, pos=token.pos)
            return ast.Apply(verb, [first, right], pos=token.pos)

        # Infix named verb: x in y, t lj kt ...
        if token.kind == TokenKind.NAME and token.text in INFIX_NAMES:
            name = self.advance().text
            verb2: Node | str = name
            while self.current.kind == TokenKind.ADVERB and self.current.glued:
                verb2 = ast.AdverbApply(
                    ast.Name(name, pos=token.pos) if isinstance(verb2, str) else verb2,
                    self.advance().text,
                    pos=token.pos,
                )
            right = self.parse_expr(stop)
            if isinstance(verb2, str):
                return ast.BinOp(name, first, right, pos=token.pos)
            return ast.Apply(verb2, [first, right], pos=token.pos)

        # Adverbed application used dyadically after a noun: x +/ y handled
        # above; a bare adverb here modifies the *noun* (e.g. f' where f is
        # a variable holding a function).
        if token.kind == TokenKind.ADVERB:
            adverbed: Node = ast.AdverbApply(first, self.advance().text, pos=token.pos)
            adverbed = self._parse_postfix(adverbed, stop)
            return self._continue_expr(adverbed, stop)

        # Juxtaposition: noun noun == apply first to the rest — unless the
        # second factor is an adverbed function (`x f' y`), which is used
        # infix as a dyadic verb.
        if self._starts_noun(token):
            second = self.parse_factor(stop)
            if isinstance(second, ast.AdverbApply) and not self._at_stop(stop):
                right = self.parse_expr(stop)
                return ast.Apply(second, [first, right], pos=token.pos)
            if isinstance(second, _Verb):
                raise self._error("unexpected verb")
            rest = self._continue_expr(second, stop)
            return ast.Apply(first, [rest], pos=token.pos)

        return first

    def _try_parse_assignment(self, first: Node, stop: frozenset[str]) -> Node | None:
        token = self.current
        target, indices = _assignment_target(first)
        if target is None:
            return None
        # x:: expr  — global assignment
        if token.kind == TokenKind.OPERATOR and token.text == "::":
            self.advance()
            value = self.parse_expr(stop)
            return ast.Assign(target, value, global_scope=True,
                              indices=indices, pos=token.pos)
        # x: expr
        if token.kind == TokenKind.OPERATOR and token.text == ":":
            self.advance()
            value = self.parse_expr(stop)
            return ast.Assign(target, value, indices=indices, pos=token.pos)
        # x+: expr / x,:expr ...
        if (
            token.kind in (TokenKind.OPERATOR, TokenKind.COMMA)
            and token.text != ":"
            and self.peek().kind == TokenKind.OPERATOR
            and self.peek().text == ":"
            and self.peek().glued
        ):
            op = self.advance().text
            self.advance()  # ':'
            value = self.parse_expr(stop)
            return ast.Assign(target, value, op=op, indices=indices, pos=token.pos)
        return None

    @staticmethod
    def _starts_noun(token: Token) -> bool:
        if token.kind in (
            TokenKind.NUMBER,
            TokenKind.SYMBOL,
            TokenKind.STRING,
            TokenKind.NAME,
            TokenKind.LPAREN,
            TokenKind.LBRACE,
        ):
            return True
        if token.kind == TokenKind.KEYWORD and token.text in (
            "select",
            "exec",
            "update",
            "delete",
            "where",
        ):
            return True
        if token.kind == TokenKind.OPERATOR:
            return True  # verb used monadically within juxtaposition
        return False

    # -- factors --------------------------------------------------------------

    def parse_factor(self, stop: frozenset[str]) -> Node:
        token = self.current

        if token.kind == TokenKind.NUMBER:
            node: Node = ast.Literal(self._merge_number_run(), pos=token.pos)
            return self._parse_postfix(node, stop)

        if token.kind == TokenKind.SYMBOL:
            self.advance()
            value = token.value
            assert isinstance(value, QValue)
            return self._parse_postfix(ast.Literal(value, pos=token.pos), stop)

        if token.kind == TokenKind.STRING:
            self.advance()
            return self._parse_postfix(
                ast.Literal(q_string(str(token.value)), pos=token.pos), stop
            )

        if token.kind == TokenKind.NAME:
            self.advance()
            return self._parse_postfix(ast.Name(token.text, pos=token.pos), stop)

        if token.kind == TokenKind.KEYWORD and token.text in (
            "select",
            "exec",
            "update",
            "delete",
        ):
            return self.parse_template()

        # `where` doubles as an ordinary q keyword function outside the
        # template clause position (e.g. `where 101b`).
        if token.kind == TokenKind.KEYWORD and token.text == "where":
            self.advance()
            return self._parse_postfix(ast.Name("where", pos=token.pos), stop)

        if token.kind == TokenKind.LPAREN:
            return self._parse_postfix(self._parse_paren(), stop)

        if token.kind == TokenKind.LBRACE:
            return self._parse_postfix(self._parse_lambda(), stop)

        if token.kind in (TokenKind.OPERATOR, TokenKind.COMMA):
            self.advance()
            verb = _Verb(token.text, pos=token.pos)
            # $[c;t;f] conditional
            if token.text == "$" and self.current.kind == TokenKind.LBRACKET:
                branches = self._parse_bracket_args()
                return ast.Cond(
                    [b for b in branches if b is not None], pos=token.pos
                )
            # functional forms ?[...] ![...] @[...] .[...] and projections +[1;]
            if self.current.kind == TokenKind.LBRACKET:
                args = self._parse_bracket_args()
                node = ast.Apply(_verb_node(token.text, token.pos), args,
                                 pos=token.pos)
                return self._parse_postfix(node, stop)
            # verb with glued adverb: +/ etc.
            if self.current.kind == TokenKind.ADVERB and self.current.glued:
                verb_node: Node | str = token.text
                while self.current.kind == TokenKind.ADVERB and self.current.glued:
                    verb_node = ast.AdverbApply(
                        verb_node, self.advance().text, pos=token.pos
                    )
                assert isinstance(verb_node, ast.AdverbApply)
                return self._parse_postfix(verb_node, stop)
            return verb

        raise self._error("unexpected token")

    def _merge_number_run(self) -> QValue:
        """Merge adjacent numeric literal atoms into a vector literal."""
        atoms: list[QValue] = []
        while self.current.kind == TokenKind.NUMBER:
            value = self.current.value
            assert isinstance(value, QValue)
            atoms.append(value)
            self.advance()
            # A following literal must be separated by whitespace to merge.
            if self.current.kind != TokenKind.NUMBER or self.current.glued:
                break
        if len(atoms) == 1:
            return atoms[0]
        return _merge_atoms(atoms)

    def _parse_postfix(self, node: Node, stop: frozenset[str]) -> Node:
        """Bracket application and glued adverbs bind tighter than verbs."""
        while True:
            token = self.current
            if token.kind == TokenKind.LBRACKET:
                args = self._parse_bracket_args()
                node = ast.Apply(node, args, pos=token.pos)
            elif token.kind == TokenKind.ADVERB and token.glued:
                node = ast.AdverbApply(node, self.advance().text, pos=token.pos)
            else:
                return node

    def _parse_bracket_args(self) -> list[Node | None]:
        self.expect(TokenKind.LBRACKET)
        args: list[Node | None] = []
        while True:
            if self.current.kind == TokenKind.RBRACKET:
                if not args:
                    args = []  # f[] — niladic call
                self.advance()
                return args
            if self.current.kind == TokenKind.SEMI:
                args.append(None)
                self.advance()
                continue
            args.append(self.parse_statement(frozenset()))
            if self.current.kind == TokenKind.SEMI:
                self.advance()
                if self.current.kind == TokenKind.RBRACKET:
                    args.append(None)
            elif self.current.kind != TokenKind.RBRACKET:
                raise self._error("expected ';' or ']' in argument list")

    def _parse_paren(self) -> Node:
        lparen = self.expect(TokenKind.LPAREN)
        # table literal ([] ...) / ([k:...] ...)
        if self.current.kind == TokenKind.LBRACKET:
            return self._parse_table_literal(lparen.pos)
        if self.current.kind == TokenKind.RPAREN:
            self.advance()
            return ast.Literal(QList([]), pos=lparen.pos)
        items = [self.parse_statement(frozenset())]
        while self.current.kind == TokenKind.SEMI:
            self.advance()
            items.append(self.parse_statement(frozenset()))
        self.expect(TokenKind.RPAREN)
        if len(items) == 1:
            return items[0]
        return ast.ListExpr(items, pos=lparen.pos)

    def _parse_table_literal(self, pos: int) -> Node:
        self.expect(TokenKind.LBRACKET)
        key_columns: list[tuple[str, Node]] = []
        while self.current.kind != TokenKind.RBRACKET:
            key_columns.append(self._parse_named_column())
            if self.current.kind == TokenKind.SEMI:
                self.advance()
        self.expect(TokenKind.RBRACKET)
        columns: list[tuple[str, Node]] = []
        while self.current.kind != TokenKind.RPAREN:
            columns.append(self._parse_named_column())
            if self.current.kind == TokenKind.SEMI:
                self.advance()
        self.expect(TokenKind.RPAREN)
        return ast.TableExpr(key_columns, columns, pos=pos)

    def _parse_named_column(self) -> tuple[str, Node]:
        name_token = self.expect(TokenKind.NAME)
        self.expect(TokenKind.OPERATOR, ":")
        expr = self.parse_expr(frozenset())
        return name_token.text, expr

    def _parse_lambda(self) -> Node:
        lbrace = self.expect(TokenKind.LBRACE)
        params: list[str] = []
        explicit = False
        if self.current.kind == TokenKind.LBRACKET:
            explicit = True
            self.advance()
            while self.current.kind != TokenKind.RBRACKET:
                params.append(self.expect(TokenKind.NAME).text)
                if self.current.kind == TokenKind.SEMI:
                    self.advance()
            self.advance()
        body: list[Node] = []
        while self.current.kind != TokenKind.RBRACE:
            if self.current.kind == TokenKind.SEMI:
                self.advance()
                continue
            body.append(self.parse_statement(frozenset()))
        end = self.expect(TokenKind.RBRACE)
        if not explicit:
            params = _implicit_params(body)
        source = self.source[lbrace.pos : end.pos + 1]
        return ast.Lambda(params, body, source=source, pos=lbrace.pos)

    # -- templates ------------------------------------------------------------

    def parse_template(self) -> Node:
        keyword = self.advance()
        kind = keyword.text
        limit: Node | None = None
        if kind == "select" and self.current.kind == TokenKind.LBRACKET:
            args = self._parse_bracket_args()
            if len(args) != 1 or args[0] is None:
                raise self._error("select[n] expects a single row limit")
            limit = args[0]

        columns: list[ColumnSpec] = []
        by: list[ColumnSpec] = []

        column_stop = frozenset({",", "by", "from", "where"})
        if not (
            self.current.kind == TokenKind.KEYWORD
            and self.current.text in ("by", "from")
        ):
            columns = self._parse_column_specs(column_stop)

        if self.current.kind == TokenKind.KEYWORD and self.current.text == "by":
            self.advance()
            by = self._parse_column_specs(column_stop)

        self.expect(TokenKind.KEYWORD, "from")
        source = self.parse_expr(frozenset({"where", ","}))

        where: list[Node] = []
        if self.current.kind == TokenKind.KEYWORD and self.current.text == "where":
            self.advance()
            where.append(self.parse_expr(frozenset({","})))
            while self.current.kind == TokenKind.COMMA:
                self.advance()
                where.append(self.parse_expr(frozenset({","})))

        return ast.Template(
            kind, columns, by, source, where, limit=limit, pos=keyword.pos
        )

    def _parse_column_specs(self, stop: frozenset[str]) -> list[ColumnSpec]:
        specs = [self._parse_column_spec(stop)]
        while self.current.kind == TokenKind.COMMA:
            self.advance()
            specs.append(self._parse_column_spec(stop))
        return specs

    def _parse_column_spec(self, stop: frozenset[str]) -> ColumnSpec:
        token = self.current
        if (
            token.kind == TokenKind.NAME
            and self.peek().kind == TokenKind.OPERATOR
            and self.peek().text == ":"
        ):
            self.advance()
            self.advance()
            expr = self.parse_expr(stop)
            return ColumnSpec(token.text, expr)
        expr = self.parse_expr(stop)
        return ColumnSpec(None, expr)


def _verb_node(verb: Node | str, pos: int) -> Node:
    if isinstance(verb, str):
        return ast.Name(verb, pos=pos)
    return verb


def _assignment_target(node: Node) -> tuple[str | None, list[Node]]:
    """Recognize `x` or `x[i;...]` as an assignable target."""
    if isinstance(node, ast.Name):
        return node.name, []
    if isinstance(node, ast.Apply) and isinstance(node.func, ast.Name):
        if all(arg is not None for arg in node.args):
            return node.func.name, list(node.args)  # type: ignore[arg-type]
    return None, []


def _implicit_params(body: list[Node]) -> list[str]:
    """Infer implicit x/y/z parameters by scanning the body."""
    found: set[str] = set()

    def scan(node) -> None:
        if isinstance(node, ast.Name) and node.name in ("x", "y", "z"):
            found.add(node.name)
            return
        if isinstance(node, ast.Lambda):
            return  # nested lambda owns its own implicit params
        if isinstance(node, Node):
            for field_name in node.__dataclass_fields__:
                scan(getattr(node, field_name))
        elif isinstance(node, (list, tuple)):
            for item in node:
                scan(item)
        elif isinstance(node, ColumnSpec):
            scan(node.expr)

    for statement in body:
        scan(statement)
    if "z" in found:
        return ["x", "y", "z"]
    if "y" in found:
        return ["x", "y"]
    return ["x"]


def _merge_atoms(atoms: list[QValue]) -> QValue:
    """Combine a run of adjacent literals into one vector, promoting
    numeric types the way q does for mixed runs like ``1 2.5 3``."""
    if any(isinstance(a, QVector) for a in atoms):
        # e.g. a run containing a boolean vector literal: keep general list
        return QList(list(atoms))
    scalar_atoms = [a for a in atoms if isinstance(a, QAtom)]
    result_type = scalar_atoms[0].qtype
    for atom in scalar_atoms[1:]:
        result_type = promote(result_type, atom.qtype)
    items = []
    for atom in scalar_atoms:
        value = atom.value
        if result_type in (QType.FLOAT, QType.REAL) and isinstance(value, int):
            value = float(value)
        items.append(value)
    return QVector(result_type, items)


def parse(source: str) -> ast.Statements:
    """Parse a Q query message into a :class:`~repro.qlang.ast.Statements`."""
    return Parser(source).parse_program()


def parse_expression(source: str) -> Node:
    """Parse a single Q expression (convenience for tests)."""
    program = parse(source)
    if len(program.statements) != 1:
        raise QSyntaxError("expected a single expression")
    return program.statements[0]
