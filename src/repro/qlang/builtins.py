"""Q primitive verbs and keywords for the reference interpreter.

This module implements the *scalar and list* portion of the Q surface the
reproduction supports (DESIGN.md Section 6) with q semantics:

* pairwise operations broadcast atoms over lists and recurse into general
  lists (``1 + 1 2 3`` -> ``2 3 4``);
* arithmetic propagates typed nulls (``1 + 0N`` -> ``0N``);
* comparison uses **two-valued logic** — a null equals a null;
* aggregations skip nulls (``sum 1 0N 2`` -> ``3``) the way q does.

Functions here are pure: they never touch interpreter state.  Verbs that
need evaluation context (templates, adverbs, joins) live in
:mod:`repro.qlang.interp` and :mod:`repro.qlang.joins`.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import (
    QDomainError,
    QLengthError,
    QNotSupportedError,
    QTypeError,
)
from repro.qlang.qtypes import QType, promote
from repro.qlang.values import (
    QAtom,
    QDict,
    QKeyedTable,
    QList,
    QTable,
    QValue,
    QVector,
    bool_vector,
    enlist,
    length_of,
    long_vector,
    q_match,
    raw_equal,
    take_value,
    vector_of_atoms,
)

# ---------------------------------------------------------------------------
# Raw-level helpers
# ---------------------------------------------------------------------------


def is_null_raw(qtype: QType, raw) -> bool:
    return qtype.is_null(raw)


def _sort_key(qtype: QType, raw):
    """Total order on raw payloads with nulls first (q's ordering)."""
    if qtype.is_null(raw):
        return (0, 0)
    if isinstance(raw, float) and math.isnan(raw):
        return (0, 0)
    if isinstance(raw, bool):
        return (1, int(raw))
    if isinstance(raw, str):
        return (1, raw)
    return (1, raw)


def compare_raw(qtype_a: QType, a, qtype_b: QType, b) -> int:
    """Three-way comparison with nulls-first semantics."""
    ka, kb = _sort_key(qtype_a, a), _sort_key(qtype_b, b)
    if ka[0] != kb[0]:
        return -1 if ka[0] < kb[0] else 1
    if ka[0] == 0:
        return 0
    va, vb = ka[1], kb[1]
    if isinstance(va, str) != isinstance(vb, str):
        raise QTypeError("cannot compare symbol/string with numeric value")
    if va < vb:
        return -1
    if va > vb:
        return 1
    return 0


# ---------------------------------------------------------------------------
# Broadcasting combinators
# ---------------------------------------------------------------------------

AtomFn = Callable[[QAtom, QAtom], QValue]


def broadcast_dyad(op: AtomFn, a: QValue, b: QValue) -> QValue:
    """Apply an atom-level dyad with q's pairwise broadcasting rules."""
    if isinstance(a, QAtom) and isinstance(b, QAtom):
        return op(a, b)
    if isinstance(a, QAtom) and isinstance(b, (QVector, QList)):
        return vector_of_atoms([broadcast_dyad(op, a, item) for item in b])
    if isinstance(a, (QVector, QList)) and isinstance(b, QAtom):
        return vector_of_atoms([broadcast_dyad(op, item, b) for item in a])
    if isinstance(a, (QVector, QList)) and isinstance(b, (QVector, QList)):
        if len(a) != len(b):
            raise QLengthError(
                f"pairwise operation on lists of length {len(a)} and {len(b)}"
            )
        return vector_of_atoms(
            [broadcast_dyad(op, x, y) for x, y in zip(a, b)]
        )
    if isinstance(a, QDict):
        return QDict(a.keys, broadcast_dyad(op, a.values, b))
    if isinstance(b, QDict):
        return QDict(b.keys, broadcast_dyad(op, a, b.values))
    if isinstance(a, QTable) and isinstance(b, (QAtom, QVector, QList)):
        return QTable(
            a.columns, [broadcast_dyad(op, col, b) for col in a.data]
        )
    if isinstance(b, QTable) and isinstance(a, QAtom):
        return QTable(
            b.columns, [broadcast_dyad(op, a, col) for col in b.data]
        )
    raise QTypeError(
        f"cannot broadcast over {type(a).__name__} and {type(b).__name__}"
    )


def broadcast_monad(op: Callable[[QAtom], QValue], value: QValue) -> QValue:
    if isinstance(value, QAtom):
        return op(value)
    if isinstance(value, (QVector, QList)):
        return vector_of_atoms([broadcast_monad(op, item) for item in value])
    if isinstance(value, QDict):
        return QDict(value.keys, broadcast_monad(op, value.values))
    if isinstance(value, QTable):
        return QTable(
            value.columns, [broadcast_monad(op, col) for col in value.data]
        )
    raise QTypeError(f"cannot map over {type(value).__name__}")


# ---------------------------------------------------------------------------
# Arithmetic dyads
# ---------------------------------------------------------------------------


def _arith_atom(name: str, fn: Callable[[float, float], float]):
    def op(a: QAtom, b: QAtom) -> QAtom:
        result_type = _arith_result_type(name, a.qtype, b.qtype)
        if a.is_null or b.is_null:
            return QAtom(result_type, result_type.null_value())
        try:
            raw = fn(a.value, b.value)
        except ZeroDivisionError:
            if name == "%":
                raw = float("inf") if a.value > 0 else (
                    float("-inf") if a.value < 0 else float("nan")
                )
            else:
                return QAtom(result_type, result_type.null_value())
        if result_type.is_floating:
            raw = float(raw)
        elif result_type.is_integral or result_type.is_temporal:
            raw = int(raw)
        return QAtom(result_type, raw)

    return op


def _arith_result_type(name: str, left: QType, right: QType) -> QType:
    if name == "%":
        return QType.FLOAT
    if name == "-" and left == right and left.is_temporal:
        # difference of like temporals is an integral span
        return QType.LONG if left in (QType.TIMESTAMP, QType.TIMESPAN) else QType.INT
    result = promote(left, right)
    if name in ("*",) and result.is_temporal:
        raise QTypeError("cannot multiply temporal values")
    return result


add = _arith_atom("+", lambda x, y: x + y)
subtract = _arith_atom("-", lambda x, y: x - y)
multiply = _arith_atom("*", lambda x, y: x * y)
divide = _arith_atom("%", lambda x, y: x / y)


def _int_div(x, y):
    return math.floor(x / y)


int_divide = _arith_atom("div", _int_div)
modulo = _arith_atom("mod", lambda x, y: x - y * math.floor(x / y))


def q_and(a: QAtom, b: QAtom) -> QAtom:
    """``&`` — minimum (boolean AND on booleans)."""
    result_type = promote(a.qtype, b.qtype)
    if a.is_null or b.is_null:
        return QAtom(result_type, result_type.null_value())
    return QAtom(result_type, min(a.value, b.value))


def q_or(a: QAtom, b: QAtom) -> QAtom:
    """``|`` — maximum (boolean OR on booleans)."""
    result_type = promote(a.qtype, b.qtype)
    if a.is_null or b.is_null:
        return QAtom(result_type, result_type.null_value())
    return QAtom(result_type, max(a.value, b.value))


def xbar(a: QAtom, b: QAtom) -> QAtom:
    """``x xbar y`` — round y down to the nearest multiple of x."""
    if a.is_null or b.is_null or a.value == 0:
        return QAtom(b.qtype, b.qtype.null_value())
    bucket = math.floor(b.value / a.value) * a.value
    if b.qtype.is_integral or b.qtype.is_temporal:
        bucket = int(bucket)
    return QAtom(b.qtype, bucket)


def fill(a: QAtom, b: QAtom) -> QAtom:
    """``^`` — b unless b is null, else a."""
    return a if b.is_null else b


# ---------------------------------------------------------------------------
# Comparison dyads (two-valued logic: null = null is true)
# ---------------------------------------------------------------------------


def _cmp_atom(test: Callable[[int], bool]):
    def op(a: QAtom, b: QAtom) -> QAtom:
        return QAtom(
            QType.BOOLEAN, test(compare_raw(a.qtype, a.value, b.qtype, b.value))
        )

    return op


equals = _cmp_atom(lambda c: c == 0)
not_equals = _cmp_atom(lambda c: c != 0)
less = _cmp_atom(lambda c: c < 0)
less_eq = _cmp_atom(lambda c: c <= 0)
greater = _cmp_atom(lambda c: c > 0)
greater_eq = _cmp_atom(lambda c: c >= 0)


def q_equals(a: QAtom, b: QAtom) -> QAtom:
    """``=`` with q's rule that two nulls compare as equal."""
    a_null, b_null = a.is_null, b.is_null
    if a_null or b_null:
        return QAtom(QType.BOOLEAN, a_null and b_null)
    if a.qtype == b.qtype:
        return QAtom(QType.BOOLEAN, raw_equal(a.qtype, a.value, b.value))
    return QAtom(QType.BOOLEAN, a.value == b.value)


def q_not_equals(a: QAtom, b: QAtom) -> QAtom:
    return QAtom(QType.BOOLEAN, not q_equals(a, b).value)


# ---------------------------------------------------------------------------
# Monads
# ---------------------------------------------------------------------------


def _monad(fn, result_type: QType | None = None, keep_int: bool = False):
    def op(a: QAtom) -> QAtom:
        rtype = result_type or a.qtype
        if keep_int and a.qtype.is_integral:
            rtype = a.qtype
        if a.is_null:
            return QAtom(rtype, rtype.null_value())
        raw = fn(a.value)
        if rtype.is_floating:
            raw = float(raw)
        return QAtom(rtype, raw)

    return op


neg = _monad(lambda x: -x)
q_abs = _monad(abs)
sqrt = _monad(lambda x: math.sqrt(x) if x >= 0 else float("nan"), QType.FLOAT)
exp = _monad(math.exp, QType.FLOAT)
log = _monad(lambda x: math.log(x) if x > 0 else float("nan"), QType.FLOAT)
floor_ = _monad(math.floor, QType.LONG, keep_int=True)
ceiling = _monad(math.ceil, QType.LONG, keep_int=True)
signum = _monad(lambda x: (x > 0) - (x < 0), QType.INT)
reciprocal = _monad(lambda x: 1.0 / x if x else float("inf"), QType.FLOAT)


def q_not(a: QAtom) -> QAtom:
    if a.is_null:
        return QAtom(QType.BOOLEAN, False)
    return QAtom(QType.BOOLEAN, not a.value)


def q_null(a: QValue) -> QValue:
    """``null x`` — boolean mask of nulls."""
    def atom_null(atom: QAtom) -> QAtom:
        return QAtom(QType.BOOLEAN, atom.is_null)

    return broadcast_monad(atom_null, a)


# ---------------------------------------------------------------------------
# List verbs
# ---------------------------------------------------------------------------


def til(n: QAtom) -> QVector:
    if not isinstance(n, QAtom) or not n.qtype.is_integral:
        raise QTypeError("til expects an integer atom")
    return long_vector(range(n.value))


def count(value: QValue) -> QAtom:
    return QAtom(QType.LONG, length_of(value))


def first(value: QValue) -> QValue:
    if isinstance(value, (QVector, QList, QTable)) and len(value) > 0:
        return value.atom_at(0)
    if isinstance(value, QVector):
        return QAtom(value.qtype, value.qtype.null_value())
    if isinstance(value, QDict):
        return first(value.values)
    if isinstance(value, QAtom):
        return value
    if isinstance(value, QList):
        return QList([])
    raise QTypeError(f"first on {type(value).__name__}")


def last(value: QValue) -> QValue:
    if isinstance(value, (QVector, QList, QTable)) and len(value) > 0:
        return value.atom_at(len(value) - 1)
    if isinstance(value, QVector):
        return QAtom(value.qtype, value.qtype.null_value())
    if isinstance(value, QDict):
        return last(value.values)
    if isinstance(value, QAtom):
        return value
    raise QTypeError(f"last on {type(value).__name__}")


def reverse(value: QValue) -> QValue:
    if isinstance(value, QVector):
        return QVector(value.qtype, list(reversed(value.items)))
    if isinstance(value, QList):
        return QList(list(reversed(value.items)))
    if isinstance(value, QTable):
        return value.take(list(reversed(range(len(value)))))
    if isinstance(value, QDict):
        return QDict(reverse(value.keys), reverse(value.values))
    return value


def distinct(value: QValue) -> QValue:
    if isinstance(value, QVector):
        seen, out = [], []
        for raw in value.items:
            if not any(raw_equal(value.qtype, raw, s) for s in seen):
                seen.append(raw)
                out.append(raw)
        return QVector(value.qtype, out)
    if isinstance(value, QList):
        out_items: list[QValue] = []
        for item in value.items:
            if not any(q_match(item, s) for s in out_items):
                out_items.append(item)
        return QList(out_items)
    if isinstance(value, QTable):
        indices: list[int] = []
        seen_rows: list[QValue] = []
        for i in range(len(value)):
            row = value.row(i)
            if not any(q_match(row, s) for s in seen_rows):
                seen_rows.append(row)
                indices.append(i)
        return value.take(indices)
    raise QTypeError("distinct expects a list")


def where(value: QValue) -> QVector:
    """``where`` — indices of true entries (or replicated counts)."""
    if isinstance(value, QVector) and value.qtype == QType.BOOLEAN:
        return long_vector(i for i, raw in enumerate(value.items) if raw)
    if isinstance(value, QVector) and value.qtype.is_integral:
        out: list[int] = []
        for i, raw in enumerate(value.items):
            out.extend([i] * int(raw))
        return long_vector(out)
    if isinstance(value, QList):
        out2: list[int] = []
        for i, item in enumerate(value.items):
            if isinstance(item, QAtom) and item.value:
                out2.append(i)
        return long_vector(out2)
    raise QTypeError("where expects a boolean or integer list")


def iasc(value: QValue) -> QVector:
    if isinstance(value, QVector):
        keys = [_sort_key(value.qtype, raw) for raw in value.items]
        return long_vector(sorted(range(len(keys)), key=keys.__getitem__))
    if isinstance(value, QList):
        raise QNotSupportedError("iasc on general lists")
    raise QTypeError("iasc expects a list")


def idesc(value: QValue) -> QVector:
    order = iasc(value).items
    return long_vector(reversed(order))


def asc(value: QValue) -> QValue:
    return take_value(value, iasc(value).items)


def desc(value: QValue) -> QValue:
    return take_value(value, idesc(value).items)


def group(value: QValue) -> QDict:
    """``group`` — dict from distinct values to index lists."""
    if not isinstance(value, (QVector, QList)):
        raise QTypeError("group expects a list")
    keys: list[QValue] = []
    buckets: list[list[int]] = []
    for i in range(length_of(value)):
        item = value.atom_at(i) if isinstance(value, QVector) else value.items[i]
        placed = False
        for j, key in enumerate(keys):
            if q_match(key, item):
                buckets[j].append(i)
                placed = True
                break
        if not placed:
            keys.append(item)
            buckets.append([i])
    key_list = vector_of_atoms([k for k in keys if isinstance(k, QAtom)]) \
        if all(isinstance(k, QAtom) for k in keys) else QList(keys)
    return QDict(key_list, QList([long_vector(b) for b in buckets]))


def raze(value: QValue) -> QValue:
    if isinstance(value, QList):
        atoms: list[QValue] = []
        for item in value.items:
            if isinstance(item, QAtom):
                atoms.append(item)
            elif isinstance(item, (QVector, QList)):
                for sub in item:
                    atoms.append(sub)
            else:
                raise QTypeError("raze of non-list item")
        return vector_of_atoms(atoms)  # type: ignore[arg-type]
    if isinstance(value, QVector):
        return value
    return enlist(value) if isinstance(value, QAtom) else value


def flip(value: QValue) -> QValue:
    """``flip`` — dict-of-columns <-> table."""
    if isinstance(value, QDict):
        if not isinstance(value.keys, QVector) or value.keys.qtype != QType.SYMBOL:
            raise QTypeError("flip expects a dictionary with symbol keys")
        return QTable(list(value.keys.items), [v for v in _iter_items(value.values)])
    if isinstance(value, QTable):
        return QDict(
            QVector(QType.SYMBOL, value.columns), QList(list(value.data))
        )
    raise QTypeError(f"flip on {type(value).__name__}")


def _iter_items(value: QValue) -> list[QValue]:
    if isinstance(value, QList):
        return list(value.items)
    if isinstance(value, QVector):
        return [QAtom(value.qtype, raw) for raw in value.items]
    raise QTypeError("expected a list")


def q_key(value: QValue) -> QValue:
    if isinstance(value, QDict):
        return value.keys
    if isinstance(value, QKeyedTable):
        return value.key
    if isinstance(value, QVector):
        return long_vector(range(len(value)))
    raise QTypeError(f"key on {type(value).__name__}")


def q_value(value: QValue) -> QValue:
    if isinstance(value, QDict):
        return value.values
    if isinstance(value, QKeyedTable):
        return value.value
    raise QTypeError(f"value on {type(value).__name__}")


def cols(value: QValue) -> QVector:
    if isinstance(value, QTable):
        return QVector(QType.SYMBOL, value.columns)
    if isinstance(value, QKeyedTable):
        return QVector(QType.SYMBOL, value.key.columns + value.value.columns)
    raise QTypeError("cols expects a table")


def meta(value: QValue) -> QTable:
    """``meta t`` — table of column name, type char, and attributes."""
    if isinstance(value, QKeyedTable):
        value = value.unkey()
    if not isinstance(value, QTable):
        raise QTypeError("meta expects a table")
    names, chars = [], []
    for name, col in zip(value.columns, value.data):
        names.append(name)
        if isinstance(col, QVector):
            chars.append(col.qtype.char)
        else:
            chars.append(" ")
    return QTable(
        ["c", "t"], [QVector(QType.SYMBOL, names), QVector(QType.CHAR, chars)]
    )


def q_type(value: QValue) -> QAtom:
    return QAtom(QType.SHORT, value.qcode)


def q_string(value: QValue) -> QValue:
    """``string`` — convert to char vector(s)."""
    from repro.qlang.printer import format_atom_raw

    def atom_to_string(atom: QAtom) -> QVector:
        return QVector(QType.CHAR, list(format_atom_raw(atom)))

    if isinstance(value, QAtom):
        return atom_to_string(value)
    if isinstance(value, (QVector, QList)):
        return QList([q_string(item) for item in value])
    raise QTypeError(f"string on {type(value).__name__}")


def fills(value: QValue) -> QValue:
    """``fills`` — forward-fill nulls."""
    if not isinstance(value, QVector):
        raise QTypeError("fills expects a typed vector")
    out, prev = [], value.qtype.null_value()
    for raw in value.items:
        if not value.qtype.is_null(raw):
            prev = raw
        out.append(prev)
    return QVector(value.qtype, out)


def deltas(value: QValue) -> QValue:
    if not isinstance(value, QVector):
        raise QTypeError("deltas expects a typed vector")
    if not value.items:
        return QVector(value.qtype, [])
    out = [value.items[0]]
    for prev, cur in zip(value.items, value.items[1:]):
        if value.qtype.is_null(prev) or value.qtype.is_null(cur):
            out.append(value.qtype.null_value())
        else:
            out.append(cur - prev)
    return QVector(value.qtype, out)


def _running(fn, value: QValue, skip_null=True) -> QValue:
    if not isinstance(value, QVector):
        raise QTypeError("expects a typed vector")
    out = []
    acc = None
    for raw in value.items:
        if value.qtype.is_null(raw) and skip_null:
            out.append(acc if acc is not None else value.qtype.null_value())
            continue
        acc = raw if acc is None else fn(acc, raw)
        out.append(acc)
    return QVector(value.qtype, out)


def sums(value: QValue) -> QValue:
    return _running(lambda a, b: a + b, value)


def prds(value: QValue) -> QValue:
    return _running(lambda a, b: a * b, value)


def maxs(value: QValue) -> QValue:
    return _running(max, value)


def mins(value: QValue) -> QValue:
    return _running(min, value)


def ratios(value: QValue) -> QValue:
    if not isinstance(value, QVector):
        raise QTypeError("ratios expects a typed vector")
    if not value.items:
        return QVector(QType.FLOAT, [])
    out = [float(value.items[0])]
    for prev, cur in zip(value.items, value.items[1:]):
        out.append(float("nan") if not prev else cur / prev)
    return QVector(QType.FLOAT, out)


def next_(value: QValue) -> QValue:
    if not isinstance(value, QVector):
        raise QTypeError("next expects a typed vector")
    if not value.items:
        return value
    return QVector(value.qtype, value.items[1:] + [value.qtype.null_value()])


def prev_(value: QValue) -> QValue:
    if not isinstance(value, QVector):
        raise QTypeError("prev expects a typed vector")
    if not value.items:
        return value
    return QVector(value.qtype, [value.qtype.null_value()] + value.items[:-1])


def xprev(n: QAtom, value: QValue) -> QValue:
    if not isinstance(value, QVector):
        raise QTypeError("xprev expects a typed vector")
    shift = int(n.value)
    null = value.qtype.null_value()
    items = value.items
    out = [
        items[i - shift] if 0 <= i - shift < len(items) else null
        for i in range(len(items))
    ]
    return QVector(value.qtype, out)


# ---------------------------------------------------------------------------
# Aggregations (null-skipping, as in q)
# ---------------------------------------------------------------------------


def _non_null_raws(value: QValue) -> tuple[QType, list]:
    if isinstance(value, QVector):
        return value.qtype, [
            raw for raw in value.items if not value.qtype.is_null(raw)
        ]
    if isinstance(value, QList):
        atoms = [i for i in value.items if isinstance(i, QAtom) and not i.is_null]
        if not atoms:
            return QType.LONG, []
        qtype = atoms[0].qtype
        for a in atoms[1:]:
            qtype = promote(qtype, a.qtype)
        return qtype, [a.value for a in atoms]
    if isinstance(value, QAtom):
        return value.qtype, [] if value.is_null else [value.value]
    raise QTypeError(f"aggregate on {type(value).__name__}")


def q_sum(value: QValue) -> QAtom:
    qtype, raws = _non_null_raws(value)
    if qtype == QType.BOOLEAN:
        return QAtom(QType.LONG, sum(1 for r in raws if r))
    result_type = qtype if qtype.is_floating else QType.LONG
    if not raws:
        # q: sum of the empty list is 0, but sum of an all-null list is null
        if length_of(value) > 0:
            return QAtom(result_type, result_type.null_value())
        return QAtom(result_type, 0.0 if qtype.is_floating else 0)
    return QAtom(result_type, sum(raws))


def q_avg(value: QValue) -> QAtom:
    __, raws = _non_null_raws(value)
    if not raws:
        return QAtom(QType.FLOAT, float("nan"))
    return QAtom(QType.FLOAT, sum(float(r) for r in raws) / len(raws))


def q_min(value: QValue) -> QAtom:
    qtype, raws = _non_null_raws(value)
    if not raws:
        return QAtom(qtype, qtype.null_value())
    return QAtom(qtype, min(raws))


def q_max(value: QValue) -> QAtom:
    qtype, raws = _non_null_raws(value)
    if not raws:
        return QAtom(qtype, qtype.null_value())
    return QAtom(qtype, max(raws))


def q_med(value: QValue) -> QAtom:
    __, raws = _non_null_raws(value)
    if not raws:
        return QAtom(QType.FLOAT, float("nan"))
    ordered = sorted(float(r) for r in raws)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return QAtom(QType.FLOAT, ordered[mid])
    return QAtom(QType.FLOAT, (ordered[mid - 1] + ordered[mid]) / 2)


def q_var(value: QValue) -> QAtom:
    __, raws = _non_null_raws(value)
    if not raws:
        return QAtom(QType.FLOAT, float("nan"))
    mean = sum(float(r) for r in raws) / len(raws)
    return QAtom(
        QType.FLOAT, sum((float(r) - mean) ** 2 for r in raws) / len(raws)
    )


def q_dev(value: QValue) -> QAtom:
    variance = q_var(value).value
    return QAtom(
        QType.FLOAT,
        math.sqrt(variance) if not math.isnan(variance) else float("nan"),
    )


def q_prd(value: QValue) -> QAtom:
    qtype, raws = _non_null_raws(value)
    result = 1.0 if qtype.is_floating else 1
    for r in raws:
        result *= r
    return QAtom(qtype if qtype.is_floating else QType.LONG, result)


def wavg(weights: QValue, values: QValue) -> QAtom:
    """``wavg`` — weighted average, skipping pairs with a null."""
    pairs = _weight_pairs(weights, values)
    total_w = sum(w for w, __ in pairs)
    if not total_w:
        return QAtom(QType.FLOAT, float("nan"))
    return QAtom(QType.FLOAT, sum(w * v for w, v in pairs) / total_w)


def wsum(weights: QValue, values: QValue) -> QAtom:
    pairs = _weight_pairs(weights, values)
    return QAtom(QType.FLOAT, float(sum(w * v for w, v in pairs)))


def _weight_pairs(weights: QValue, values: QValue) -> list[tuple[float, float]]:
    if not isinstance(weights, QVector) or not isinstance(values, QVector):
        raise QTypeError("wavg/wsum expect two vectors")
    if len(weights) != len(values):
        raise QLengthError("wavg/wsum vectors differ in length")
    out = []
    for w, v in zip(weights.items, values.items):
        if weights.qtype.is_null(w) or values.qtype.is_null(v):
            continue
        out.append((float(w), float(v)))
    return out


# ---------------------------------------------------------------------------
# Moving-window verbs
# ---------------------------------------------------------------------------


def _moving(fn, n: QAtom, value: QValue) -> QValue:
    if not isinstance(value, QVector):
        raise QTypeError("moving verbs expect a typed vector")
    window = int(n.value)
    if window <= 0:
        raise QDomainError("window size must be positive")
    out = []
    for i in range(len(value.items)):
        lo = max(0, i - window + 1)
        chunk = [
            raw
            for raw in value.items[lo : i + 1]
            if not value.qtype.is_null(raw)
        ]
        out.append(fn(chunk))
    return out


def mavg(n: QAtom, value: QValue) -> QVector:
    out = _moving(
        lambda c: sum(float(x) for x in c) / len(c) if c else float("nan"),
        n,
        value,
    )
    return QVector(QType.FLOAT, out)


def msum(n: QAtom, value: QValue) -> QVector:
    assert isinstance(value, QVector)
    qtype = value.qtype if value.qtype.is_floating else QType.LONG
    out = _moving(lambda c: sum(c) if c else 0, n, value)
    return QVector(qtype, out)


def mcount(n: QAtom, value: QValue) -> QVector:
    out = _moving(len, n, value)
    return QVector(QType.LONG, out)


def mmax(n: QAtom, value: QValue) -> QVector:
    assert isinstance(value, QVector)
    null = value.qtype.null_value()
    out = _moving(lambda c: max(c) if c else null, n, value)
    return QVector(value.qtype, out)


def mmin(n: QAtom, value: QValue) -> QVector:
    assert isinstance(value, QVector)
    null = value.qtype.null_value()
    out = _moving(lambda c: min(c) if c else null, n, value)
    return QVector(value.qtype, out)


def mdev(n: QAtom, value: QValue) -> QVector:
    def dev(chunk):
        if not chunk:
            return float("nan")
        mean = sum(float(x) for x in chunk) / len(chunk)
        return math.sqrt(sum((float(x) - mean) ** 2 for x in chunk) / len(chunk))

    return QVector(QType.FLOAT, _moving(dev, n, value))


# ---------------------------------------------------------------------------
# Membership / search dyads
# ---------------------------------------------------------------------------


def q_in(a: QValue, b: QValue) -> QValue:
    """``in`` — membership of left items in the right list."""
    if not isinstance(b, (QVector, QList)):
        b = enlist(b)

    def member(atom: QValue) -> bool:
        for candidate in b:  # type: ignore[union-attr]
            if q_match(atom, candidate):
                return True
        return False

    if isinstance(a, QAtom):
        return QAtom(QType.BOOLEAN, member(a))
    if isinstance(a, (QVector, QList)):
        return bool_vector(member(item) for item in a)
    raise QTypeError(f"in on {type(a).__name__}")


def find(a: QValue, b: QValue) -> QValue:
    """``?`` (find) — position of b's items in list a; count(a) if absent."""
    if not isinstance(a, (QVector, QList)):
        raise QTypeError("find expects a list on the left")
    items = list(a)
    n = len(items)

    def position(needle: QValue) -> int:
        for i, item in enumerate(items):
            if q_match(item, needle):
                return i
        return n

    if isinstance(b, QAtom):
        return QAtom(QType.LONG, position(b))
    if isinstance(b, (QVector, QList)):
        return long_vector(position(item) for item in b)
    raise QTypeError(f"find of {type(b).__name__}")


def within(a: QValue, b: QValue) -> QValue:
    """``within`` — inclusive range membership."""
    if not isinstance(b, (QVector, QList)) or length_of(b) != 2:
        raise QTypeError("within expects a 2-item bound list on the right")
    lo = b.atom_at(0)
    hi = b.atom_at(1)

    def check(atom: QAtom) -> QAtom:
        in_range = (
            compare_raw(atom.qtype, atom.value, lo.qtype, lo.value) >= 0
            and compare_raw(atom.qtype, atom.value, hi.qtype, hi.value) <= 0
        )
        return QAtom(QType.BOOLEAN, in_range)

    return broadcast_monad(check, a)


def like(a: QValue, pattern: QValue) -> QValue:
    """``like`` — glob match of symbols/strings against a pattern."""
    import fnmatch

    if isinstance(pattern, QVector) and pattern.qtype == QType.CHAR:
        pat = "".join(pattern.items)
    elif isinstance(pattern, QAtom) and pattern.qtype == QType.SYMBOL:
        pat = pattern.value
    else:
        raise QTypeError("like expects a string or symbol pattern")

    def check(atom: QAtom) -> QAtom:
        text = atom.value if isinstance(atom.value, str) else str(atom.value)
        return QAtom(QType.BOOLEAN, fnmatch.fnmatchcase(text, pat))

    if isinstance(a, QVector) and a.qtype == QType.CHAR:
        return QAtom(QType.BOOLEAN, fnmatch.fnmatchcase("".join(a.items), pat))
    return broadcast_monad(check, a)


def except_(a: QValue, b: QValue) -> QValue:
    if not isinstance(a, (QVector, QList)):
        raise QTypeError("except expects a list on the left")
    if not isinstance(b, (QVector, QList)):
        b = enlist(b)
    mask = q_in(a, b)
    assert isinstance(mask, QVector)
    keep = [i for i, flag in enumerate(mask.items) if not flag]
    return take_value(a, keep)


def inter(a: QValue, b: QValue) -> QValue:
    if not isinstance(a, (QVector, QList)):
        raise QTypeError("inter expects a list on the left")
    mask = q_in(a, b)
    assert isinstance(mask, QVector)
    keep = [i for i, flag in enumerate(mask.items) if flag]
    return take_value(a, keep)


def union(a: QValue, b: QValue) -> QValue:
    joined = concat(a, b)
    return distinct(joined)


def cross(a: QValue, b: QValue) -> QValue:
    if not isinstance(a, (QVector, QList)) or not isinstance(b, (QVector, QList)):
        raise QTypeError("cross expects two lists")
    pairs = [QList([x, y]) for x in a for y in b]
    return QList(pairs)


def bin_(a: QValue, b: QValue) -> QValue:
    """``bin`` — index of the last element of sorted a that is <= b."""
    if not isinstance(a, QVector):
        raise QTypeError("bin expects a sorted vector on the left")

    def locate(atom: QAtom) -> QAtom:
        lo, hi, ans = 0, len(a.items) - 1, -1
        while lo <= hi:
            mid = (lo + hi) // 2
            if compare_raw(a.qtype, a.items[mid], atom.qtype, atom.value) <= 0:
                ans = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return QAtom(QType.LONG, ans)

    return broadcast_monad(locate, b)


# ---------------------------------------------------------------------------
# Structural dyads: take, drop, concat, cut, sublist
# ---------------------------------------------------------------------------


def take(n: QValue, value: QValue) -> QValue:
    """``#`` — take n items (cyclic when overtaking, from the end if n<0)."""
    if isinstance(n, (QVector, QList)):
        raise QNotSupportedError("reshape (list#) is not supported")
    assert isinstance(n, QAtom)
    if n.qtype == QType.SYMBOL or (
        isinstance(n, QAtom) and isinstance(n.value, str)
    ):
        raise QTypeError("take expects an integer count")
    count_ = int(n.value)
    if isinstance(value, QAtom):
        value = enlist(value)
    size = length_of(value)
    if count_ >= 0:
        if size == 0:
            indices = []
        else:
            indices = [i % size for i in range(count_)]
    else:
        count_ = -count_
        if size == 0:
            indices = []
        else:
            indices = [(size - count_ + i) % size for i in range(count_)]
    return take_value(value, indices)


def drop(n: QValue, value: QValue) -> QValue:
    """``_`` — drop n items from the front (end if n<0)."""
    if isinstance(n, (QVector, QList)):
        return cut(n, value)
    assert isinstance(n, QAtom)
    count_ = int(n.value)
    size = length_of(value)
    if count_ >= 0:
        indices = list(range(min(count_, size), size))
    else:
        indices = list(range(0, max(0, size + count_)))
    return take_value(value, indices)


def cut(positions: QValue, value: QValue) -> QList:
    """``_`` with a list left argument — cut at positions."""
    if not isinstance(positions, QVector):
        raise QTypeError("cut expects an integer vector of positions")
    size = length_of(value)
    bounds = [int(p) for p in positions.items] + [size]
    pieces = []
    for lo, hi in zip(bounds, bounds[1:]):
        pieces.append(take_value(value, list(range(lo, hi))))
    return QList(pieces)


def sublist(n: QValue, value: QValue) -> QValue:
    """``sublist`` — like take but never cycles."""
    if isinstance(n, QVector) and len(n) == 2:
        start, cnt = int(n.items[0]), int(n.items[1])
        size = length_of(value)
        return take_value(value, list(range(start, min(start + cnt, size))))
    assert isinstance(n, QAtom)
    count_ = int(n.value)
    size = length_of(value)
    if count_ >= 0:
        return take_value(value, list(range(min(count_, size))))
    return take_value(value, list(range(max(0, size + count_), size)))


def concat(a: QValue, b: QValue) -> QValue:
    """``,`` — join."""
    if isinstance(a, QTable) and isinstance(b, QTable):
        if a.columns != b.columns:
            raise QTypeError("cannot append tables with mismatched columns")
        return QTable(
            a.columns, [concat(x, y) for x, y in zip(a.data, b.data)]
        )
    if isinstance(a, QDict) and isinstance(b, QDict):
        # right entries overwrite left (upsert semantics)
        keys = list(_iter_items(a.keys))
        values = list(_iter_items(a.values))
        for k, v in zip(_iter_items(b.keys), _iter_items(b.values)):
            for i, existing in enumerate(keys):
                if q_match(existing, k):
                    values[i] = v
                    break
            else:
                keys.append(k)
                values.append(v)
        return QDict(_collapse(keys), _collapse(values))
    left = _as_item_list(a)
    right = _as_item_list(b)
    return _collapse(left + right)


def _as_item_list(value: QValue) -> list[QValue]:
    if isinstance(value, QAtom):
        return [value]
    if isinstance(value, QVector):
        return [QAtom(value.qtype, raw) for raw in value.items]
    if isinstance(value, QList):
        return list(value.items)
    return [value]


def _collapse(items: list[QValue]) -> QValue:
    if all(isinstance(i, QAtom) for i in items):
        return vector_of_atoms(items)  # type: ignore[arg-type]
    return QList(items)


# ---------------------------------------------------------------------------
# Casting ($)
# ---------------------------------------------------------------------------

_CAST_NAMES = {
    "boolean": QType.BOOLEAN,
    "byte": QType.BYTE,
    "short": QType.SHORT,
    "int": QType.INT,
    "long": QType.LONG,
    "real": QType.REAL,
    "float": QType.FLOAT,
    "char": QType.CHAR,
    "symbol": QType.SYMBOL,
    "timestamp": QType.TIMESTAMP,
    "month": QType.MONTH,
    "date": QType.DATE,
    "datetime": QType.DATETIME,
    "timespan": QType.TIMESPAN,
    "minute": QType.MINUTE,
    "second": QType.SECOND,
    "time": QType.TIME,
}


def cast(target: QValue, value: QValue) -> QValue:
    """``$`` — cast; the left operand names the target type."""
    if isinstance(target, QAtom) and target.qtype == QType.SYMBOL:
        name = target.value
        if name == "":
            return _tok_to_symbol(value)
        qtype = _CAST_NAMES.get(name)
        if qtype is None:
            raise QDomainError(f"unknown cast target `{name}")
        return _cast_to(qtype, value)
    if isinstance(target, QAtom) and target.qtype == QType.CHAR:
        from repro.qlang.qtypes import type_from_char

        return _cast_to(type_from_char(target.value), value)
    raise QTypeError("cast expects a symbol or char type name on the left")


def _tok_to_symbol(value: QValue) -> QValue:
    def conv(atom_or_str):
        if isinstance(atom_or_str, QVector) and atom_or_str.qtype == QType.CHAR:
            return QAtom(QType.SYMBOL, "".join(atom_or_str.items))
        raise QTypeError("`$ expects strings")

    if isinstance(value, QVector) and value.qtype == QType.CHAR:
        return conv(value)
    if isinstance(value, QList):
        return vector_of_atoms([conv(item) for item in value.items])
    raise QTypeError("`$ expects a string or list of strings")


def _cast_to(qtype: QType, value: QValue) -> QValue:
    def conv(atom: QAtom) -> QAtom:
        if atom.is_null:
            return QAtom(qtype, qtype.null_value())
        raw = atom.value
        if qtype == QType.SYMBOL:
            return QAtom(qtype, str(raw))
        if qtype == QType.BOOLEAN:
            return QAtom(qtype, bool(raw))
        if qtype.is_floating:
            return QAtom(qtype, float(raw))
        if qtype.is_integral or qtype.is_temporal:
            if isinstance(raw, str):
                raise QTypeError(f"cannot cast symbol to {qtype.name.lower()}")
            if atom.qtype == QType.TIMESTAMP and qtype == QType.DATE:
                return QAtom(qtype, int(raw // 86_400_000_000_000))
            if atom.qtype == QType.DATE and qtype == QType.TIMESTAMP:
                return QAtom(qtype, int(raw) * 86_400_000_000_000)
            if atom.qtype == QType.TIMESTAMP and qtype == QType.TIME:
                return QAtom(qtype, int((raw % 86_400_000_000_000) // 1_000_000))
            if atom.qtype == QType.TIME and qtype == QType.MINUTE:
                return QAtom(qtype, int(raw // 60_000))
            if atom.qtype == QType.TIME and qtype == QType.SECOND:
                return QAtom(qtype, int(raw // 1_000))
            return QAtom(qtype, int(raw))
        if qtype == QType.CHAR:
            return QAtom(qtype, str(raw)[:1] or " ")
        raise QNotSupportedError(f"cast to {qtype.name.lower()}")

    if isinstance(value, QList) and not value.items:
        # casting the empty general list yields a typed empty vector
        return QVector(qtype, [])
    if isinstance(value, QVector) and value.qtype == QType.CHAR and qtype != QType.CHAR:
        # string -> value parse, e.g. `long$"42"
        text = "".join(value.items)
        if qtype.is_floating:
            return QAtom(qtype, float(text))
        if qtype == QType.SYMBOL:
            return QAtom(qtype, text)
        return QAtom(qtype, int(text))
    return broadcast_monad(conv, value)


# ---------------------------------------------------------------------------
# Indexing / application helpers shared with the interpreter
# ---------------------------------------------------------------------------


def index_at(container: QValue, index: QValue) -> QValue:
    """``@`` / bracket indexing with q's out-of-range null semantics."""
    if isinstance(container, QDict):
        if isinstance(index, (QVector, QList)):
            results = [container.lookup(item) for item in _iter_items(index)]
            return _collapse(results)
        return container.lookup(index)
    if isinstance(container, QKeyedTable):
        return _keyed_lookup(container, index)
    if isinstance(container, QTable):
        if isinstance(index, QAtom) and index.qtype == QType.SYMBOL:
            return container.column(index.value)
        if isinstance(index, QVector) and index.qtype == QType.SYMBOL:
            return QTable(
                list(index.items),
                [container.column(c) for c in index.items],
            )
        if isinstance(index, QAtom) and index.qtype.is_integral:
            i = int(index.value)
            if 0 <= i < len(container):
                return container.row(i)
            return null_row(container)
        if isinstance(index, QVector) and index.qtype.is_integral:
            return container.take([int(i) for i in index.items])
    if isinstance(container, (QVector, QList)):
        if isinstance(index, QAtom) and index.qtype.is_integral:
            i = int(index.value)
            if isinstance(container, QVector):
                if 0 <= i < len(container):
                    return container.atom_at(i)
                return QAtom(container.qtype, container.qtype.null_value())
            if 0 <= i < len(container):
                return container.items[i]
            raise QDomainError(f"index {i} out of range")
        if isinstance(index, (QVector, QList)):
            picks = [index_at(container, item) for item in _iter_items(index)]
            return _collapse(picks)
    raise QTypeError(
        f"cannot index {type(container).__name__} with {type(index).__name__}"
    )


def null_row(table: QTable) -> QDict:
    """A symbol->null dictionary shaped like one row of ``table``."""
    keys = QVector(QType.SYMBOL, table.columns)
    values: list[QValue] = []
    for col in table.data:
        if isinstance(col, QVector):
            values.append(QAtom(col.qtype, col.qtype.null_value()))
        else:
            values.append(QAtom(QType.LONG, QType.LONG.null_value()))
    return QDict(keys, QList(values))


def _keyed_lookup(table: QKeyedTable, index: QValue) -> QValue:
    key_table = table.key
    if isinstance(index, QAtom) and len(key_table.columns) == 1:
        for i in range(len(key_table)):
            if q_match(index_at(key_table.data[0], QAtom(QType.LONG, i)), index):
                return table.value.row(i)
        return null_row(table.value)
    raise QNotSupportedError("keyed table lookup with compound keys")
