"""Tokenizer for the Q language.

Q's lexical grammar is unusual in several ways that this module handles
explicitly:

* numeric literals carry type suffixes (``1i``, ``1h``, ``1f``, ``0Nj``),
  and boolean vectors are written as digit runs (``101b``);
* temporal literals have dedicated shapes (``2016.06.26``, ``09:30:00.123``,
  ``2016.06.26D09:30:00.000000000``);
* symbols are backtick-prefixed and runs of adjacent symbols form a symbol
  vector (`` `a`b`c ``);
* ``/`` and ``\\`` are *adverbs* when glued to the preceding token but start
  a comment / system command when preceded by whitespace;
* ``-`` glued to a number at the start of an expression is a sign, but is
  the subtraction verb when it follows a noun.

The lexer is deliberately lightweight (Section 3.2.1 of the paper): it does
no name resolution and no typing — those belong to the binder.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import QSyntaxError
from repro.qlang.qtypes import (
    INF_LONG,
    NULL_INT,
    NULL_LONG,
    NULL_SHORT,
    QType,
)
from repro.qlang.values import QAtom, QVector


class TokenKind(Enum):
    NUMBER = auto()  # value: QAtom (numeric or temporal)
    SYMBOL = auto()  # value: QAtom(symbol) or QVector(symbol)
    STRING = auto()  # value: str
    NAME = auto()  # identifier
    KEYWORD = auto()  # select / exec / update / delete / by / from / where
    OPERATOR = auto()  # + - * % etc.
    ADVERB = auto()  # ' /: \: ': / \
    LPAREN = auto()
    RPAREN = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    LBRACE = auto()
    RBRACE = auto()
    SEMI = auto()
    COMMA = auto()  # the ',' verb; template parser treats it as separator
    EOF = auto()


#: Template keywords recognized by the parser (lower-case only, as in q).
TEMPLATE_KEYWORDS = {"select", "exec", "update", "delete", "by", "from", "where"}

#: Verb characters.  ``:`` is assignment/amend, handled by the parser.
OPERATOR_CHARS = "+-*%&|^=<>,#_?@.!$~:"

#: Multi-character operators, longest first.
MULTI_OPERATORS = ["<>", "<=", ">=", "::"]

#: Adverbs, longest first.  Bare ``/`` and ``\`` are adverbs only when glued
#: to the previous token.
ADVERBS = ["/:", "\\:", "':", "'", "/", "\\"]

_NAME_RE = re.compile(r"[A-Za-z][A-Za-z0-9_]*(?:\.[A-Za-z][A-Za-z0-9_]*)*")
_SYMBOL_RE = re.compile(r"`(?:[A-Za-z0-9_.:][A-Za-z0-9_.:/]*)?")

_TIMESTAMP_RE = re.compile(
    r"\d{4}\.\d{2}\.\d{2}D\d{2}:\d{2}:\d{2}(?:\.\d{1,9})?"
)
_DATE_RE = re.compile(r"\d{4}\.\d{2}\.\d{2}")
_MONTH_RE = re.compile(r"\d{4}\.\d{2}m")
_TIME_RE = re.compile(r"\d{2}:\d{2}(?::\d{2}(?:\.\d{1,3})?)?")
_NUMBER_RE = re.compile(
    r"-?(?:0[NnWw][jihefpdtznuvm]?|\d+\.\d*(?:[eE][-+]?\d+)?[ef]?|"
    r"\.\d+(?:[eE][-+]?\d+)?[ef]?|\d+(?:[eE][-+]?\d+)?[bjihef]?)"
)
_BOOL_VECTOR_RE = re.compile(r"[01]{2,}b")


@dataclass
class Token:
    kind: TokenKind
    text: str
    pos: int
    value: object = None
    #: True when the token is directly adjacent to the previous one
    #: (no intervening whitespace) — needed for adverb/comment rules.
    glued: bool = False

    def __repr__(self):
        return f"Token({self.kind.name}, {self.text!r})"


_DAYS_IN_MONTH = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def days_from_2000(year: int, month: int, day: int) -> int:
    """Days between 2000.01.01 and the given date (kdb+ date encoding)."""
    total = 0
    if year >= 2000:
        for y in range(2000, year):
            total += 366 if _is_leap(y) else 365
    else:
        for y in range(year, 2000):
            total -= 366 if _is_leap(y) else 365
    for m in range(1, month):
        total += _DAYS_IN_MONTH[m - 1]
        if m == 2 and _is_leap(year):
            total += 1
    return total + (day - 1)


def date_from_days(days: int) -> tuple[int, int, int]:
    """Inverse of :func:`days_from_2000`."""
    year = 2000
    remaining = days
    while True:
        year_len = 366 if _is_leap(year) else 365
        if remaining >= year_len:
            remaining -= year_len
            year += 1
        elif remaining < 0:
            year -= 1
            remaining += 366 if _is_leap(year) else 365
        else:
            break
    month = 1
    while True:
        month_len = _DAYS_IN_MONTH[month - 1] + (
            1 if month == 2 and _is_leap(year) else 0
        )
        if remaining >= month_len:
            remaining -= month_len
            month += 1
        else:
            break
    return year, month, remaining + 1


def _parse_temporal(text: str) -> QAtom:
    """Parse a matched temporal literal into its kdb+ integer encoding."""
    if "D" in text and "." in text[:10]:
        date_part, time_part = text.split("D", 1)
        y, m, d = (int(p) for p in date_part.split("."))
        nanos = _time_to_nanos(time_part)
        days = days_from_2000(y, m, d)
        return QAtom(QType.TIMESTAMP, days * 86_400_000_000_000 + nanos)
    if text.endswith("m"):
        y, m = (int(p) for p in text[:-1].split("."))
        return QAtom(QType.MONTH, (y - 2000) * 12 + (m - 1))
    if "." in text and ":" not in text:
        y, m, d = (int(p) for p in text.split("."))
        return QAtom(QType.DATE, days_from_2000(y, m, d))
    parts = text.split(":")
    if len(parts) == 2:
        return QAtom(QType.MINUTE, int(parts[0]) * 60 + int(parts[1]))
    seconds_txt = parts[2]
    if "." in seconds_txt:
        sec, frac = seconds_txt.split(".")
        millis = int(frac.ljust(3, "0")[:3])
        total = (int(parts[0]) * 3600 + int(parts[1]) * 60 + int(sec)) * 1000 + millis
        return QAtom(QType.TIME, total)
    return QAtom(
        QType.SECOND, int(parts[0]) * 3600 + int(parts[1]) * 60 + int(seconds_txt)
    )


def _time_to_nanos(text: str) -> int:
    h, m, rest = text.split(":")
    if "." in rest:
        sec, frac = rest.split(".")
        nanos = int(frac.ljust(9, "0")[:9])
    else:
        sec, nanos = rest, 0
    return (int(h) * 3600 + int(m) * 60 + int(sec)) * 1_000_000_000 + nanos


_NULL_BY_SUFFIX = {
    "j": QAtom(QType.LONG, NULL_LONG),
    "": QAtom(QType.LONG, NULL_LONG),
    "i": QAtom(QType.INT, NULL_INT),
    "h": QAtom(QType.SHORT, NULL_SHORT),
    "e": QAtom(QType.REAL, float("nan")),
    "f": QAtom(QType.FLOAT, float("nan")),
    "p": QAtom(QType.TIMESTAMP, NULL_LONG),
    "d": QAtom(QType.DATE, NULL_INT),
    "t": QAtom(QType.TIME, NULL_INT),
    "z": QAtom(QType.DATETIME, float("nan")),
    "n": QAtom(QType.TIMESPAN, NULL_LONG),
    "u": QAtom(QType.MINUTE, NULL_INT),
    "v": QAtom(QType.SECOND, NULL_INT),
    "m": QAtom(QType.MONTH, NULL_INT),
}

_INT_SUFFIX_TYPES = {
    "j": QType.LONG,
    "i": QType.INT,
    "h": QType.SHORT,
    "e": QType.REAL,
    "f": QType.FLOAT,
}


def _parse_number(text: str) -> QAtom:
    sign = 1
    body = text
    if body.startswith("-"):
        sign = -1
        body = body[1:]
    if body[0] == "0" and len(body) >= 2 and body[1] in "NnWw":
        suffix = body[2:] if len(body) > 2 else ""
        if body[1] == "n" and not suffix:
            return QAtom(QType.FLOAT, float("nan"))
        if body[1] == "w" and not suffix:
            return QAtom(QType.FLOAT, sign * float("inf"))
        if body[1] == "N":
            atom = _NULL_BY_SUFFIX.get(suffix)
            if atom is None:
                raise QSyntaxError(f"bad null literal {text!r}")
            return atom
        # 0W / -0W infinities
        if suffix in ("", "j"):
            return QAtom(QType.LONG, sign * INF_LONG)
        if suffix == "f":
            return QAtom(QType.FLOAT, sign * float("inf"))
        return QAtom(QType.LONG, sign * INF_LONG)
    if body.endswith("b"):
        return QAtom(QType.BOOLEAN, body[:-1] != "0")
    suffix = ""
    if body[-1] in "jihef" and not body[-1].isdigit():
        suffix = body[-1]
        body = body[:-1]
    is_float = "." in body or "e" in body or "E" in body or suffix in ("e", "f")
    if is_float:
        qtype = QType.REAL if suffix == "e" else QType.FLOAT
        return QAtom(qtype, sign * float(body))
    qtype = _INT_SUFFIX_TYPES.get(suffix, QType.LONG)
    if qtype in (QType.REAL, QType.FLOAT):
        return QAtom(qtype, sign * float(body))
    return QAtom(qtype, sign * int(body))


class Lexer:
    """Streaming tokenizer producing :class:`Token` objects."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.tokens: list[Token] = []

    def tokenize(self) -> list[Token]:
        while self.pos < len(self.source):
            glued = self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                break
            self._next_token(glued)
        self.tokens.append(Token(TokenKind.EOF, "", self.pos))
        return self.tokens

    # -- helpers ------------------------------------------------------------

    def _skip_whitespace_and_comments(self) -> bool:
        """Advance past whitespace/comments; return True if the next token
        is glued (no whitespace separated it from the previous one)."""
        glued = True
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            if ch in " \t\r":
                glued = False
                self.pos += 1
            elif ch == "\n":
                glued = False
                self.pos += 1
            elif ch == "/" and not glued:
                # whitespace-preceded slash: comment to end of line
                while self.pos < len(src) and src[self.pos] != "\n":
                    self.pos += 1
            elif ch == "/" and self.pos == 0:
                while self.pos < len(src) and src[self.pos] != "\n":
                    self.pos += 1
            else:
                break
        return glued and self.pos != 0

    def _next_token(self, glued: bool) -> None:
        src = self.source
        start = self.pos
        ch = src[start]

        if ch == "`":
            self._lex_symbols(start, glued)
            return
        if ch == '"':
            self._lex_string(start, glued)
            return

        simple = {
            "(": TokenKind.LPAREN,
            ")": TokenKind.RPAREN,
            "[": TokenKind.LBRACKET,
            "]": TokenKind.RBRACKET,
            "{": TokenKind.LBRACE,
            "}": TokenKind.RBRACE,
            ";": TokenKind.SEMI,
        }
        if ch in simple:
            self.pos += 1
            self._emit(simple[ch], ch, start, glued)
            return

        if ch.isdigit() or (
            ch == "." and start + 1 < len(src) and src[start + 1].isdigit()
        ):
            self._lex_number_or_temporal(start, glued)
            return
        if ch == "-" and self._minus_is_sign(glued) and start + 1 < len(src) and (
            src[start + 1].isdigit() or src[start + 1] == "."
        ):
            self._lex_number_or_temporal(start, glued)
            return

        if ch.isalpha():
            match = _NAME_RE.match(src, start)
            text = match.group(0)
            self.pos = match.end()
            kind = (
                TokenKind.KEYWORD if text in TEMPLATE_KEYWORDS else TokenKind.NAME
            )
            self._emit(kind, text, start, glued)
            return

        for adverb in ADVERBS:
            if src.startswith(adverb, start):
                if adverb in ("/", "\\") and not glued:
                    break  # handled as comment/system cmd by whitespace rule
                self.pos = start + len(adverb)
                self._emit(TokenKind.ADVERB, adverb, start, glued)
                return

        for op in MULTI_OPERATORS:
            if src.startswith(op, start):
                self.pos = start + len(op)
                self._emit(TokenKind.OPERATOR, op, start, glued)
                return

        if ch == ",":
            self.pos += 1
            self._emit(TokenKind.COMMA, ",", start, glued)
            return
        if ch in OPERATOR_CHARS:
            self.pos += 1
            self._emit(TokenKind.OPERATOR, ch, start, glued)
            return

        raise QSyntaxError(
            f"unexpected character {ch!r} at position {start}", signal="parse"
        )

    def _minus_is_sign(self, glued: bool) -> bool:
        """q's disambiguation rule: ``-`` glued to a digit is a numeric sign
        unless it is *also* glued to a preceding noun-ish token.  ``x-5`` is
        subtraction; ``x -5`` applies x to the literal -5; ``signum -5``
        negates the literal."""
        if not self.tokens:
            return True
        if not glued:
            return True
        prev = self.tokens[-1]
        return prev.kind not in (
            TokenKind.NAME,
            TokenKind.NUMBER,
            TokenKind.SYMBOL,
            TokenKind.STRING,
            TokenKind.RPAREN,
            TokenKind.RBRACKET,
        )

    def _lex_symbols(self, start: int, glued: bool) -> None:
        names = []
        src = self.source
        while self.pos < len(src) and src[self.pos] == "`":
            match = _SYMBOL_RE.match(src, self.pos)
            names.append(match.group(0)[1:])
            self.pos = match.end()
        text = src[start : self.pos]
        if len(names) == 1:
            value: object = QAtom(QType.SYMBOL, names[0])
        else:
            value = QVector(QType.SYMBOL, names)
        self._emit(TokenKind.SYMBOL, text, start, glued, value)

    def _lex_string(self, start: int, glued: bool) -> None:
        src = self.source
        self.pos += 1
        chars: list[str] = []
        while self.pos < len(src):
            ch = src[self.pos]
            if ch == "\\" and self.pos + 1 < len(src):
                escape = src[self.pos + 1]
                mapping = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}
                chars.append(mapping.get(escape, escape))
                self.pos += 2
            elif ch == '"':
                self.pos += 1
                text = src[start : self.pos]
                self._emit(TokenKind.STRING, text, start, glued, "".join(chars))
                return
            else:
                chars.append(ch)
                self.pos += 1
        raise QSyntaxError("unterminated string literal", signal="parse")

    def _lex_number_or_temporal(self, start: int, glued: bool) -> None:
        src = self.source
        for regex in (_TIMESTAMP_RE, _MONTH_RE, _DATE_RE, _TIME_RE):
            match = regex.match(src, start if src[start] != "-" else start + 1)
            if match and match.start() == (start if src[start] != "-" else start + 1):
                text = src[start : match.end()]
                atom = _parse_temporal(match.group(0))
                if text.startswith("-"):
                    atom = QAtom(atom.qtype, -atom.value)
                self.pos = match.end()
                self._emit(TokenKind.NUMBER, text, start, glued, atom)
                return
        bool_match = _BOOL_VECTOR_RE.match(src, start)
        if bool_match:
            bits = bool_match.group(0)[:-1]
            self.pos = bool_match.end()
            self._emit(
                TokenKind.NUMBER,
                bool_match.group(0),
                start,
                glued,
                QVector(QType.BOOLEAN, [b == "1" for b in bits]),
            )
            return
        match = _NUMBER_RE.match(src, start)
        if not match:
            raise QSyntaxError(f"bad numeric literal at position {start}")
        self.pos = match.end()
        text = match.group(0)
        self._emit(TokenKind.NUMBER, text, start, glued, _parse_number(text))

    def _emit(self, kind, text, start, glued, value=None) -> None:
        self.tokens.append(Token(kind, text, start, value, glued))


def tokenize(source: str) -> list[Token]:
    """Tokenize Q source text into a list of tokens ending with EOF."""
    return Lexer(source).tokenize()
