"""Shared socket plumbing for the server components."""

from __future__ import annotations

import socket
import threading

from repro.errors import ProtocolError

#: how often the accept loop wakes to notice a stop() request; a poll
#: interval, not a client-visible timeout (HQ004 wants it named)
ACCEPT_POLL_INTERVAL = 0.2


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise (connection closed mid-message)."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


#: how much BufferedSocketReader asks the kernel for per recv(); large
#: enough to drain hundreds of small DataRow frames per syscall
DEFAULT_RECV_SIZE = 64 * 1024


class BufferedSocketReader:
    """Exact-length reads served from large ``recv()`` chunks.

    The per-message ``recv_exact(1)`` / ``recv_exact(4)`` pattern costs
    three syscalls per protocol frame; on a 100k-row result that is
    300k syscalls for a few megabytes of data.  This reader drains the
    socket in :data:`DEFAULT_RECV_SIZE` chunks into a reusable
    ``bytearray`` and slices complete frames out of it, so many frames
    ride on one syscall.

    Timeout semantics are unchanged from bare ``recv``: the reader never
    touches the socket while buffered bytes satisfy a request, and a
    ``socket.timeout`` raised mid-fill leaves already-received bytes in
    the buffer (the caller owns connection disposal, exactly as with
    ``recv_exact``).
    """

    __slots__ = ("_sock", "_buf", "_pos", "recv_size")

    def __init__(self, sock: socket.socket, recv_size: int = DEFAULT_RECV_SIZE):
        self._sock = sock
        self._buf = bytearray()
        self._pos = 0
        self.recv_size = recv_size

    def buffered(self) -> int:
        """Bytes available without touching the socket."""
        return len(self._buf) - self._pos

    def _compact(self) -> None:
        if self._pos:
            del self._buf[: self._pos]
            self._pos = 0

    def _grow(self, hint: int) -> None:
        """One recv() into the buffer (at least ``hint`` bytes wanted)."""
        self._compact()
        chunk = self._sock.recv(max(self.recv_size, hint))
        if not chunk:
            raise ConnectionError("peer closed the connection")
        self._buf += chunk

    def take(self, n: int) -> bytes:
        """Exactly ``n`` bytes, blocking on the socket only when the
        buffer cannot satisfy the request."""
        while self.buffered() < n:
            self._grow(n - self.buffered())
        start = self._pos
        self._pos = start + n
        return bytes(self._buf[start : self._pos])

    #: drop-in replacement for functools.partial(recv_exact, sock)
    recv_exact = take

    def take_until(self, delimiter: bytes, limit: int = 1024) -> bytes:
        """Bytes up to and including ``delimiter`` (for the QIPC hello,
        which is NUL-terminated rather than length-prefixed)."""
        while True:
            index = self._buf.find(delimiter, self._pos)
            if index != -1:
                end = index + len(delimiter)
                chunk = bytes(self._buf[self._pos : end])
                self._pos = end
                return chunk
            if self.buffered() > limit:
                raise ConnectionError(
                    f"delimiter not found in the first {limit} bytes"
                )
            self._grow(1)


class TcpServer:
    """A minimal threaded accept loop; subclasses implement handle()."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self._requested_port = port
        self._sock: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self._running = threading.Event()
        self._conn_threads: list[threading.Thread] = []
        self._open_conns: set[socket.socket] = set()
        self._conn_lock = threading.Lock()

    @property
    def port(self) -> int:
        if self._sock is None:
            raise RuntimeError("server not started")
        return self._sock.getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "TcpServer":
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((self.host, self._requested_port))
        self._sock.listen(16)
        self._sock.settimeout(ACCEPT_POLL_INTERVAL)
        self._running.set()
        self._thread = threading.Thread(
            target=self._accept_loop, name=type(self).__name__, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running.clear()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        # sever live connections so clients see the death immediately
        with self._conn_lock:
            open_conns = list(self._open_conns)
        for conn in open_conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._conn_threads:
            thread.join(timeout=1.0)
        self._conn_threads.clear()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while self._running.is_set():
            try:
                conn, __ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self._safe_handle, args=(conn,), daemon=True
            )
            thread.start()
            self._conn_threads.append(thread)

    def _safe_handle(self, conn: socket.socket) -> None:
        with self._conn_lock:
            self._open_conns.add(conn)
        try:
            self.handle(conn)
        except (ConnectionError, ProtocolError, OSError):
            pass
        finally:
            with self._conn_lock:
                self._open_conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def handle(self, conn: socket.socket) -> None:
        raise NotImplementedError
