"""Shared socket plumbing for the server components."""

from __future__ import annotations

import socket

from repro.errors import ProtocolError


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise (connection closed mid-message)."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


#: how much BufferedSocketReader asks the kernel for per recv(); large
#: enough to drain hundreds of small DataRow frames per syscall
DEFAULT_RECV_SIZE = 64 * 1024


class BufferedSocketReader:
    """Exact-length reads served from large ``recv()`` chunks.

    The per-message ``recv_exact(1)`` / ``recv_exact(4)`` pattern costs
    three syscalls per protocol frame; on a 100k-row result that is
    300k syscalls for a few megabytes of data.  This reader drains the
    socket in :data:`DEFAULT_RECV_SIZE` chunks into a reusable
    ``bytearray`` and slices complete frames out of it, so many frames
    ride on one syscall.

    Timeout semantics are unchanged from bare ``recv``: the reader never
    touches the socket while buffered bytes satisfy a request, and a
    ``socket.timeout`` raised mid-fill leaves already-received bytes in
    the buffer (the caller owns connection disposal, exactly as with
    ``recv_exact``).

    The reader also works *detached* from any socket (:meth:`detached`):
    the event-loop connection core reads whatever the kernel has ready,
    pushes it in with :meth:`feed`, and carves complete frames back out
    with the non-blocking :meth:`peek` / :meth:`poll` / :meth:`poll_until`
    — the feed-bytes/poll-frame half of the same buffer, never touching a
    socket.
    """

    __slots__ = ("_sock", "_buf", "_pos", "recv_size")

    def __init__(
        self,
        sock: socket.socket | None,
        recv_size: int = DEFAULT_RECV_SIZE,
    ):
        self._sock = sock
        self._buf = bytearray()
        self._pos = 0
        self.recv_size = recv_size

    @classmethod
    def detached(cls, recv_size: int = DEFAULT_RECV_SIZE) -> "BufferedSocketReader":
        """A reader with no socket: bytes arrive only via :meth:`feed`."""
        return cls(None, recv_size)

    def buffered(self) -> int:
        """Bytes available without touching the socket."""
        return len(self._buf) - self._pos

    def _compact(self) -> None:
        if self._pos:
            del self._buf[: self._pos]
            self._pos = 0

    def _grow(self, hint: int) -> None:
        """One recv() into the buffer (at least ``hint`` bytes wanted)."""
        if self._sock is None:
            raise ProtocolError(
                "detached reader has no socket to block on — use "
                "feed()/poll() from the event loop"
            )
        self._compact()
        chunk = self._sock.recv(max(self.recv_size, hint))
        if not chunk:
            raise ConnectionError("peer closed the connection")
        self._buf += chunk

    # -- non-blocking half (the event-loop connection core) ----------------

    def feed(self, data: bytes) -> None:
        """Append bytes received elsewhere (the reactor's recv)."""
        if data:
            self._compact()
            self._buf += data

    def peek(self, n: int) -> bytes | None:
        """The next ``n`` bytes without consuming them, or None if fewer
        are buffered.  Never touches the socket."""
        if self.buffered() < n:
            return None
        return bytes(self._buf[self._pos : self._pos + n])

    def poll(self, n: int) -> bytes | None:
        """Exactly ``n`` bytes if buffered, else None.  Never blocks."""
        if self.buffered() < n:
            return None
        start = self._pos
        self._pos = start + n
        return bytes(self._buf[start : self._pos])

    def poll_until(self, delimiter: bytes, limit: int = 1024) -> bytes | None:
        """Bytes up to and including ``delimiter`` if buffered, else None.

        Raises :class:`ConnectionError` once more than ``limit`` bytes are
        buffered with no delimiter in sight (a peer that will never send
        a valid hello must not grow the buffer forever).
        """
        index = self._buf.find(delimiter, self._pos)
        if index == -1:
            if self.buffered() > limit:
                raise ConnectionError(
                    f"delimiter not found in the first {limit} bytes"
                )
            return None
        end = index + len(delimiter)
        chunk = bytes(self._buf[self._pos : end])
        self._pos = end
        return chunk

    def take(self, n: int) -> bytes:
        """Exactly ``n`` bytes, blocking on the socket only when the
        buffer cannot satisfy the request."""
        while self.buffered() < n:
            self._grow(n - self.buffered())
        start = self._pos
        self._pos = start + n
        return bytes(self._buf[start : self._pos])

    #: drop-in replacement for functools.partial(recv_exact, sock)
    recv_exact = take

    def take_until(self, delimiter: bytes, limit: int = 1024) -> bytes:
        """Bytes up to and including ``delimiter`` (for the QIPC hello,
        which is NUL-terminated rather than length-prefixed)."""
        while True:
            index = self._buf.find(delimiter, self._pos)
            if index != -1:
                end = index + len(delimiter)
                chunk = bytes(self._buf[self._pos : end])
                self._pos = end
                return chunk
            if self.buffered() > limit:
                raise ConnectionError(
                    f"delimiter not found in the first {limit} bytes"
                )
            self._grow(1)
