"""The Endpoint: Hyper-Q's kdb+-side plugin (paper Section 3.1).

A QIPC socket server that impersonates kdb+: it performs the
``user:password<N>\\0`` handshake, reads sync/async query messages, hands
the raw query text to a per-connection handler, and ships results (or
kdb+-style error responses) back as QIPC objects.

"Hyper-Q takes over kdb+ server by listening to incoming messages on the
port used by the original kdb+ server.  Q applications run unchanged."

Each connection is one :class:`repro.core.fsm.Fsm`-driven
:class:`QipcProtocol` on the reactor (the paper's Erlang-actor shape):
the loop thread parses frames out of a detached
:class:`~repro.server.common.BufferedSocketReader` and query execution
runs on the server's worker pool, so thousands of idle connections cost
no threads and a slow query never blocks the accept/read loop.  Per-
request deadlines are enforced twice: cooperatively on the worker (as
before) and by a reactor timer that answers the client the moment the
deadline passes, even if the worker is still stuck.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

from repro.core.fsm import Fsm
from repro.errors import (
    AuthenticationError,
    ProtocolError,
    QError,
    ReproError,
)
from repro.obs import get_logger, metrics
from repro.qipc.decode import decode_value
from repro.qipc.encode import encode_error, encode_value
from repro.qipc.handshake import Authenticator, AllowAll, parse_hello, server_ack
from repro.qipc.messages import (
    MessageType,
    QipcMessage,
    frame,
    poll_message,
)
from repro.qlang.qtypes import QType
from repro.qlang.values import QList, QValue, QVector
from repro.server.common import BufferedSocketReader
from repro.server.reactor import Protocol, ReactorServer
from repro.wlm.deadline import Deadline, request_scope

#: server-level telemetry, labelled server=qipc (the PG-wire server
#: reports the same families with server=pgwire)
ACTIVE_SESSIONS = metrics.gauge(
    "server_active_sessions", "Connections currently being served"
)
QUERIES_TOTAL = metrics.counter(
    "server_queries_total", "Queries served, by message kind"
)
ERRORS_TOTAL = metrics.counter(
    "server_errors_total", "Query errors, by exception class"
)
QUERY_SECONDS = metrics.histogram(
    "server_query_seconds", "End-to-end per-query latency at the server"
)

_log = get_logger("server.endpoint")

#: a handler receives query text and returns a QValue (or None)
QueryHandler = Callable[[str], QValue | None]

#: a handler factory builds one handler per connection (session isolation)
HandlerFactory = Callable[[], "ConnectionHandler"]

#: the QIPC hello must fit in this many bytes (kdb+ closes otherwise)
HELLO_LIMIT = 1024


class ConnectionHandler:
    """Per-connection query processing; close() runs at disconnect."""

    def execute(self, query: str) -> QValue | None:
        raise NotImplementedError

    def close(self) -> None:
        return None


class _CallableHandler(ConnectionHandler):
    def __init__(self, fn: QueryHandler):
        self.fn = fn

    def execute(self, query: str) -> QValue | None:
        return self.fn(query)


class _Job:
    """One in-flight query: the message, its deadline, its loop timer."""

    __slots__ = ("message", "deadline", "timer", "responded")

    def __init__(self, message: QipcMessage, deadline: Deadline | None):
        self.message = message
        self.deadline = deadline
        self.timer = None
        #: True once a response (result, error, or deadline error) has
        #: been written — a late worker result is then discarded
        self.responded = False


class QipcProtocol(Protocol):
    """One QIPC connection as a reactor-driven state machine.

    States mirror the connection lifecycle: ``hello`` (handshake bytes
    pending) -> ``ready`` (idle between queries) <-> ``executing`` (one
    query on the worker pool) -> ``closed``.  Frames arriving while a
    query executes queue in the inbox; responses stay strictly FIFO per
    connection, exactly like the old thread-per-connection loop.
    """

    def __init__(self, server: "QipcEndpoint"):
        self.server = server
        self.reader = BufferedSocketReader.detached(
            server.server_config.recv_size
        )
        self.handler: ConnectionHandler | None = None
        self._inbox: deque[QipcMessage] = deque()
        self._job: _Job | None = None
        self._authed = False
        fsm = Fsm("qipc-conn", "hello")
        fsm.add_state("ready", on_enter=lambda f, p: self._maybe_dispatch())
        fsm.add_state("executing")
        fsm.add_state("closed")
        fsm.add_transition("hello", "authenticated", "ready")
        fsm.add_transition(
            "ready", "message", "executing",
            action=lambda f, message: self._dispatch(message),
        )
        fsm.add_transition("executing", "finished", "ready")
        for state in ("hello", "ready", "executing"):
            fsm.add_transition(state, "disconnect", "closed")
        self.fsm = fsm

    # -- loop-thread event handlers ----------------------------------------

    def data_received(self, data: bytes) -> None:
        self.reader.feed(data)
        if self.fsm.state == "hello" and not self._handshake():
            return
        if self.fsm.state == "closed":
            return
        while True:
            message = poll_message(
                self.reader, self.server.server_config.max_message_bytes
            )
            if message is None:
                break
            self._inbox.append(message)
        self._maybe_dispatch()

    def _handshake(self) -> bool:
        """Consume the hello if complete; False while bytes are pending
        or the connection was rejected."""
        hello = self.reader.poll_until(b"\x00", limit=HELLO_LIMIT)
        if hello is None:
            return False
        try:
            credentials = parse_hello(hello)
            self.server.authenticator.authenticate(credentials)
        except AuthenticationError:
            self.transport.close()  # close without an ack, as kdb+ does
            return False
        except ProtocolError as exc:
            _log.warning("bad_hello", message=str(exc))
            self.transport.close()
            return False
        self.transport.write(server_ack(credentials.capability))
        self.handler = self.server.handler_factory()
        self._authed = True
        ACTIVE_SESSIONS.inc(server="qipc")
        self.fsm.fire("authenticated")
        return True

    def _maybe_dispatch(self) -> None:
        if self._inbox and self.fsm.can_fire("message"):
            self.fsm.fire("message", self._inbox.popleft())

    def _dispatch(self, message: QipcMessage) -> None:
        """ready -> executing: hand the query to the worker pool and arm
        the deadline timer on the loop."""
        job = _Job(message, self.server.request_deadline())
        self._job = job
        if job.deadline is not None:
            job.timer = self.transport.reactor.call_later(
                max(job.deadline.remaining(), 0.0),
                lambda: self._deadline_fired(job),
            )
        self.server.workers.submit(lambda: self._run_job(job))

    def _deadline_fired(self, job: _Job) -> None:
        """Loop timer: the deadline passed with the worker still busy.

        Answer the client now (the old socket-timeout behaviour, without
        a socket timeout); the worker's own cooperative checks raise
        shortly after and that late result is discarded.  The FSM stays
        in ``executing`` until the worker actually returns, preserving
        strict per-connection serialization of handler state.
        """
        if job is not self._job or job.responded or self.transport.closed:
            return
        job.responded = True
        ERRORS_TOTAL.inc(error="DeadlineExceededError", server="qipc")
        _log.warning("deadline_fired", where="server.loop")
        if job.message.msg_type == MessageType.SYNC:
            self.transport.write(
                frame(
                    QipcMessage(
                        MessageType.RESPONSE, encode_error("wlm-deadline")
                    )
                )
            )

    def _job_done(self, job: _Job, response: bytes | None,
                  fatal: bool) -> None:
        """Worker completion, back on the loop thread."""
        if job.timer is not None:
            job.timer.cancel()
        if self._job is job:
            self._job = None
        if self.fsm.state == "closed" or self.transport.closed:
            self._close_handler()
            return
        if response is not None and not job.responded:
            self.transport.write(response)
        job.responded = True
        if fatal:
            self.transport.close()
            return
        # fire (not can_fire-guarded): a synchronous worker completes
        # inside the dispatch transition, and the FSM's event queue is
        # exactly the re-entrance mechanism that makes that safe
        self.fsm.fire("finished")

    def connection_lost(self, exc: Exception | None) -> None:
        if self.fsm.can_fire("disconnect"):
            self.fsm.fire("disconnect")
        if self._authed:
            self._authed = False
            ACTIVE_SESSIONS.dec(server="qipc")
        if self._job is None:
            self._close_handler()
        # else: the in-flight worker's _job_done runs the close, so the
        # handler is never closed while a query is still using it

    def _close_handler(self) -> None:
        handler, self.handler = self.handler, None
        if handler is None:
            return

        def run() -> None:
            try:
                handler.close()
            except Exception as exc:
                # session teardown runs backend SQL (temp-table drops,
                # promotion); a pooled/network backend failing here must
                # not kill its worker thread
                ERRORS_TOTAL.inc(error=type(exc).__name__, server="qipc")
                _log.warning("handler_close_error", message=str(exc))

        self.server.workers.submit(run)

    # -- worker thread -----------------------------------------------------

    def _run_job(self, job: _Job) -> None:
        message = job.message
        started = time.perf_counter()
        response: bytes | None = None
        fatal = False
        is_sync = message.msg_type == MessageType.SYNC
        try:
            try:
                query = _extract_query(message.payload)
                if job.deadline is not None:
                    # nested scopes inherit the earlier deadline, so the
                    # session's own _wlm_scope sees exactly this expiry
                    with request_scope(job.deadline):
                        result = self.handler.execute(query)
                else:
                    result = self.handler.execute(query)
            except QError as exc:
                ERRORS_TOTAL.inc(error=type(exc).__name__, server="qipc")
                _log.warning(
                    "query_error", signal=exc.signal, message=str(exc)
                )
                if is_sync:
                    response = frame(
                        QipcMessage(
                            MessageType.RESPONSE, encode_error(exc.signal)
                        )
                    )
            except ReproError as exc:
                ERRORS_TOTAL.inc(error=type(exc).__name__, server="qipc")
                _log.warning("query_error", message=str(exc))
                if is_sync:
                    response = frame(
                        QipcMessage(
                            MessageType.RESPONSE,
                            encode_error(str(exc)[:200]),
                        )
                    )
            except Exception as exc:
                # a non-Repro crash dropped the whole connection in the
                # threaded server; keep that contract
                ERRORS_TOTAL.inc(error=type(exc).__name__, server="qipc")
                _log.warning(
                    "query_crash", error=type(exc).__name__,
                    message=str(exc)[:200],
                )
                fatal = True
            else:
                if is_sync:
                    response = frame(
                        QipcMessage(
                            MessageType.RESPONSE,
                            encode_value(
                                result if result is not None else QList([])
                            ),
                        )
                    )
        finally:
            QUERIES_TOTAL.inc(
                kind=message.msg_type.name.lower(), server="qipc"
            )
            QUERY_SECONDS.observe(time.perf_counter() - started, server="qipc")
        self.transport.reactor.call_soon_threadsafe(
            lambda: self._job_done(job, response, fatal)
        )


class QipcEndpoint(ReactorServer):
    """Generic QIPC server; Hyper-Q and the mini-kdb+ demo both use it."""

    label = "qipc"

    def __init__(
        self,
        handler_factory: HandlerFactory,
        authenticator: Authenticator | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        server_config=None,
    ):
        super().__init__(host, port, server_config)
        self.handler_factory = handler_factory
        self.authenticator = authenticator or AllowAll()

    @classmethod
    def from_function(
        cls,
        fn: QueryHandler,
        authenticator: Authenticator | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> "QipcEndpoint":
        """Endpoint whose every connection shares one query function."""
        return cls(lambda: _CallableHandler(fn), authenticator, host, port)

    def build_protocol(self) -> QipcProtocol:
        return QipcProtocol(self)

    def request_deadline(self) -> Deadline | None:
        """The per-request deadline the loop should enforce with a timer;
        None disables the timer (the generic endpoint has no WLM)."""
        return None


def _extract_query(payload: bytes) -> str:
    """Queries arrive as char vectors (raw text), per the paper."""
    value = decode_value(payload)
    if isinstance(value, QVector) and value.qtype == QType.CHAR:
        return "".join(value.items)
    raise QError("query message must be a string", signal="type")
